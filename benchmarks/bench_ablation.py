"""Benchmark regenerating experiment ``ablation``.

Ablations over scan placement, box semantics, and completion divisor.

Run with ``pytest benchmarks/ --benchmark-only``; the regenerated result
tables are printed (use ``-s`` to see them) and the reproduction verdict
is asserted, so this bench doubles as the paper-claim regression gate.
"""

from repro.runtime import run_one


def test_ablation(benchmark):
    result = benchmark.pedantic(
        run_one,
        args=("ablation",),
        kwargs={"quick": True, "seed": 0},
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    assert result.metrics.get("reproduced") is True, result.render()
