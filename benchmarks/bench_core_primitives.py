"""Microbenchmarks of the library's hot primitives.

These track the performance of the pieces every experiment leans on: the
symbolic simulator's box-feed loop, the worst-case profile constructor,
the vectorized square-profile trace machine, the renewal DP, and the
Monte-Carlo sampler.  Useful to catch pathological regressions (e.g. the
cursor accidentally materializing subtrees).
"""

import numpy as np

from repro.algorithms.library import MM_SCAN
from repro.algorithms.traces import synthetic_trace
from repro.analysis.recurrence import expected_scan_boxes, solve_recurrence
from repro.machine.square_machine import run_trace_on_boxes
from repro.profiles.distributions import UniformPowers
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.symbolic import SymbolicSimulator
from repro.util.rng import as_generator


def test_worst_case_profile_construction(benchmark):
    profile = benchmark(worst_case_profile, 8, 4, 4**6)
    assert len(profile) == (8**7 - 1) // 7


def test_symbolic_simulator_worst_case_run(benchmark):
    profile = worst_case_profile(8, 4, 4**5)

    def run():
        sim = SymbolicSimulator(MM_SCAN, 4**5)
        return sim.run(profile)

    rec = benchmark(run)
    assert rec.completed


def test_symbolic_simulator_iid_run(benchmark):
    dist = UniformPowers(4, 1, 6)

    def run():
        sim = SymbolicSimulator(MM_SCAN, 4**7)
        return sim.run_to_completion(dist.sampler(rng=0))

    rec = benchmark(run)
    assert rec.completed


def test_square_machine_throughput(benchmark):
    trace = synthetic_trace(MM_SCAN, 4**4)
    profile = worst_case_profile(8, 4, 4**4)

    rec = benchmark(run_trace_on_boxes, trace, profile)
    assert rec.completed


def test_renewal_dp(benchmark):
    dist = UniformPowers(4, 1, 6)
    value = benchmark(expected_scan_boxes, 4**7, dist)
    assert value > 0


def test_recurrence_solver_deep(benchmark):
    dist = UniformPowers(4, 1, 6)
    sol = benchmark(solve_recurrence, MM_SCAN, 4**9, dist)
    assert sol.cost_ratio > 0


def test_iid_sampling_throughput(benchmark):
    dist = UniformPowers(4, 1, 8)

    def draw():
        return dist.sample(100_000, rng=0)

    out = benchmark(draw)
    assert out.size == 100_000


def test_mm_scan_kernel_with_trace(benchmark):
    gen = as_generator(0)
    a = gen.standard_normal((32, 32))
    b = gen.standard_normal((32, 32))
    from repro.algorithms.mm import mm_scan

    run = benchmark(mm_scan, a, b)
    assert run.trace is not None


def test_floyd_warshall_kernel(benchmark):
    gen = as_generator(0)
    d = gen.uniform(1, 10, (32, 32))
    np.fill_diagonal(d, 0.0)
    from repro.algorithms.gep import floyd_warshall

    run = benchmark(floyd_warshall, d, 4)
    assert run.trace is not None


def test_squarify_large_profile(benchmark):
    from repro.profiles.generators import random_walk_profile
    from repro.profiles.reduction import squarify

    profile = random_walk_profile(64, 50_000, min_size=2, max_size=512, rng=0)
    boxes = benchmark(squarify, profile)
    assert boxes.total_time == profile.duration
