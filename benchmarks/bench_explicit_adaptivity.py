"""Benchmark regenerating experiment ``oracle``.

Explicit adaptation (Barve-Vitter style) vs smoothed obliviousness on the
same adversary: the adaptive executor flattens the ratio that costs the
oblivious algorithm Theta(log n); shuffling matches it obliviously.

Run with ``pytest benchmarks/ --benchmark-only``; the regenerated result
tables are printed (use ``-s`` to see them) and the reproduction verdict
is asserted, so this bench doubles as the paper-claim regression gate.
"""

from repro.runtime import run_one


def test_explicit_adaptivity(benchmark):
    result = benchmark.pedantic(
        run_one,
        args=("oracle",),
        kwargs={"quick": True, "seed": 0},
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    assert result.metrics.get("reproduced") is True, result.render()
