"""Benchmark regenerating experiment ``iid``.

Theorem 1: i.i.d. boxes give O(1) expected adaptivity ratio for any Sigma.

Run with ``pytest benchmarks/ --benchmark-only``; the regenerated result
tables are printed (use ``-s`` to see them) and the reproduction verdict
is asserted, so this bench doubles as the paper-claim regression gate.
"""

from repro.runtime import run_one


def test_iid_theorem1(benchmark):
    result = benchmark.pedantic(
        run_one,
        args=("iid",),
        kwargs={"quick": True, "seed": 0},
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    assert result.metrics.get("reproduced") is True, result.render()
