"""Benchmark regenerating experiment ``orderpert``.

Robustness: box-order perturbations keep the profile worst-case.

Run with ``pytest benchmarks/ --benchmark-only``; the regenerated result
tables are printed (use ``-s`` to see them) and the reproduction verdict
is asserted, so this bench doubles as the paper-claim regression gate.
"""

from repro.runtime import run_one


def test_order_perturbation(benchmark):
    result = benchmark.pedantic(
        run_one,
        args=("orderpert",),
        kwargs={"quick": True, "seed": 0},
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    assert result.metrics.get("reproduced") is True, result.render()
