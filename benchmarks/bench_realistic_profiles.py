"""Benchmark regenerating experiment ``realistic``.

The introduction's motivating fluctuation patterns (winner-take-all with
periodic flushes, random-walk contention), squarified and scored: natural
profiles stay adaptive; only the tailored adversary extracts the log.

Run with ``pytest benchmarks/ --benchmark-only``; the regenerated result
tables are printed (use ``-s`` to see them) and the reproduction verdict
is asserted, so this bench doubles as the paper-claim regression gate.
"""

from repro.runtime import run_one


def test_realistic_profiles(benchmark):
    result = benchmark.pedantic(
        run_one,
        args=("realistic",),
        kwargs={"quick": True, "seed": 0},
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    assert result.metrics.get("reproduced") is True, result.render()
