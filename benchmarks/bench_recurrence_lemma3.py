"""Benchmark regenerating experiment ``lemma3``.

Lemma 3: exact f(n) recurrence, q-identity, scan Wald bound.

Run with ``pytest benchmarks/ --benchmark-only``; the regenerated result
tables are printed (use ``-s`` to see them) and the reproduction verdict
is asserted, so this bench doubles as the paper-claim regression gate.
"""

from repro.runtime import run_one


def test_recurrence_lemma3(benchmark):
    result = benchmark.pedantic(
        run_one,
        args=("lemma3",),
        kwargs={"quick": True, "seed": 0},
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    assert result.metrics.get("reproduced") is True, result.render()
