#!/usr/bin/env python3
"""Tour of the exact machinery: Lemma 3's solver, the proof's feedback
structure, and closed-form predictions.

No simulation in this example — everything is computed exactly:

1. solve the Lemma-3 recurrence for MM-SCAN under several box-size
   distributions and print the per-level table (`f`, `f'`, `q`, `m_n`,
   expected ratio);
2. verify the closed-form point-mass prediction
   ``ratio(t) = 1 + (b/(a−b))(1 − (b/a)^t)`` digit-for-digit against the
   solver;
3. exhibit the proof's semi-inductive *negative feedback loop*: levels
   where Equation 7's downward pressure fails all sit below a small
   normalized cost, so the Equation-9 threshold argument goes through;
4. print the Equation-8 scan-correction products.

Run:  python examples/exact_solver_tour.py
"""

from repro.algorithms import MM_SCAN, STRASSEN
from repro.analysis import (
    feedback_report,
    feedback_threshold,
    point_mass_limit_ratio,
    point_mass_ratio_exact,
    solve_recurrence,
)
from repro.profiles import Empirical, PointMass, UniformPowers, worst_case_profile
from repro.util.tables import format_table


def main() -> None:
    spec = MM_SCAN
    n = 4**8

    # -- 1. the solver ------------------------------------------------------
    dists = [
        PointMass(16),
        UniformPowers(4, 1, 5),
        Empirical.of_profile(worst_case_profile(8, 4, 4**4), name="empirical(M)"),
    ]
    for dist in dists:
        sol = solve_recurrence(spec, n, dist)
        rows = [
            (rec.n, rec.f, rec.f_prime, rec.q, rec.m_n, rec.cost_ratio)
            for rec in sol.levels
        ]
        print(
            format_table(
                ["n", "f(n)", "f'(n)", "q", "m_n", "E[ratio]"],
                rows,
                title=f"\nLemma-3 recurrence for Sigma = {dist.name}",
            )
        )
        print(f"Eq-8 product: {sol.eq8_product():.4f}   "
              f"feedback threshold: {feedback_threshold(sol):.4f}")

    # -- 2. closed form vs solver --------------------------------------------
    print("\npoint-mass closed form  1 + (b/(a-b))(1 - (b/a)^t)  vs solver:")
    rows = []
    for algo in (MM_SCAN, STRASSEN):
        for k in (4, 6, 8):
            predicted = point_mass_ratio_exact(algo, 16, 4**k)
            solved = solve_recurrence(algo, 4**k, PointMass(16)).cost_ratio
            rows.append((algo.name, f"4^{k}", predicted, solved,
                         abs(predicted - solved) < 1e-12))
    print(format_table(["algorithm", "n", "closed form", "solver", "equal"], rows,
                       precision=10))
    print(
        f"limits: MM-SCAN -> {point_mass_limit_ratio(MM_SCAN):.4f}, "
        f"Strassen -> {point_mass_limit_ratio(STRASSEN):.4f}"
    )

    # -- 3. the feedback loop, visible ---------------------------------------
    dist = UniformPowers(4, 1, 5)
    sol = solve_recurrence(spec, n, dist)
    rows = [
        (rec.n, rec.cost_ratio, rec.eq7_lhs, rec.eq7_rhs, rec.pressure_holds)
        for rec in feedback_report(sol)
    ]
    print(
        format_table(
            ["n", "cost ratio (Eq 9)", "Eq7 lhs", "Eq7 rhs", "pressure holds"],
            rows,
            title="\nthe negative feedback loop (Sigma = uniform-powers)",
        )
    )
    print(
        "Downward pressure (Eq 7) may fail only at cheap levels — every "
        "level at risk of violating adaptivity has it, which is the "
        "engine of the main theorem's proof."
    )


if __name__ == "__main__":
    main()
