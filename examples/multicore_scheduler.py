#!/usr/bin/env python3
"""Multicore cache-sharing scenario — the introduction's motivation.

The paper's introduction describes the memory reality of shared-cache
machines: a process's share slowly grows (winner-take-all residency) and
then crashes when the system flushes the cache or a co-tenant bursts.
This example builds those *realistic* step profiles, reduces them to
square profiles with the inscribed-box construction of [5], and measures
how MM-SCAN, MM-INPLACE, and Strassen fare on them — including how many
back-to-back multiplies each completes on the same resources.

Run:  python examples/multicore_scheduler.py
"""

import itertools

from repro import MM_INPLACE, MM_SCAN, STRASSEN, squarify
from repro.profiles import random_walk_profile, winner_take_all_profile
from repro.simulation import SymbolicSimulator, run_repeated
from repro.util.tables import format_table


def scenario_profiles(n: int):
    """Realistic step profiles scaled to a size-``n`` problem."""
    return {
        "winner-take-all + flush": winner_take_all_profile(
            max_size=n, flush_floor=max(4, n // 64), cycles=24
        ),
        "noisy co-tenant walk": random_walk_profile(
            start=n // 4,
            steps=12 * n,
            min_size=4,
            max_size=n,
            up_probability=0.55,
            crash_probability=0.002,
            crash_factor=0.3,
            rng=7,
        ),
    }


def main() -> None:
    n = 4**5
    specs = [MM_SCAN, MM_INPLACE, STRASSEN]

    for name, step_profile in scenario_profiles(n).items():
        boxes = squarify(step_profile)
        print(f"\n=== scenario: {name} ===")
        print(
            f"steps: {step_profile.duration}, squarified into {len(boxes)} boxes "
            f"(sizes {boxes.min_size()}..{boxes.max_size()})"
        )
        print(f"shape: {boxes.sparkline(width=64)}")

        rows = []
        for spec in specs:
            # one-shot run: ratio over the consumed prefix (cycled if the
            # scenario is shorter than one multiply needs)
            sim = SymbolicSimulator(spec, n, model="recursive")
            stream = itertools.chain(iter(boxes), itertools.cycle(boxes.boxes.tolist()))
            rec = sim.run_to_completion(stream)
            # repeated mode: how many multiplies fit in the scenario
            rep = run_repeated(spec, n, boxes, model="recursive")
            rows.append(
                (
                    spec.name,
                    spec.regime,
                    round(rec.adaptivity_ratio, 3),
                    rec.boxes_used,
                    rep.completions,
                )
            )
        print()
        print(
            format_table(
                ["algorithm", "regime", "adaptivity ratio", "boxes used",
                 "multiplies completed"],
                rows,
            )
        )

    print(
        "\nOn realistic (non-adversarial) fluctuation patterns the gap "
        "algorithms behave like the adaptive ones — the paper's point that "
        "worst-case profiles must be tailored to the recursion to bite."
    )


if __name__ == "__main__":
    main()
