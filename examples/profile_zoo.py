#!/usr/bin/env python3
"""Profile zoo: every profile family in the library, visualized and scored.

Renders each memory-profile family as a terminal sparkline and scores it
against MM-SCAN: adaptivity ratio over the consumed prefix, and the ratio
of progress made to the theoretical maximum the boxes allowed.  A compact
tour of the profile API for new users.

Run:  python examples/profile_zoo.py
"""

import itertools

from repro import MM_SCAN
from repro.profiles import (
    Empirical,
    GeometricPowers,
    ParetoPowers,
    SquareProfile,
    UniformPowers,
    order_perturbed_profile,
    random_start_shift,
    random_walk_profile,
    sawtooth_profile,
    shuffle,
    size_perturbation,
    squarify,
    uniform_multipliers,
    worst_case_profile,
)
from repro.simulation import SymbolicSimulator
from repro.util.tables import format_table


def zoo(n: int) -> dict[str, SquareProfile]:
    wc = worst_case_profile(8, 4, n)
    return {
        "constant DAM boxes": SquareProfile.constant(n // 16, 4096),
        "worst-case M_{8,4}(n)": wc,
        "  .. shuffled": shuffle(wc, rng=0),
        "  .. size-perturbed": size_perturbation(wc, uniform_multipliers(4.0), rng=1),
        "  .. start-shifted": random_start_shift(wc, rng=2),
        "  .. order-perturbed": order_perturbed_profile(8, 4, n, rng=3),
        "iid uniform-powers": UniformPowers(4, 1, 5).sample_profile(4096, rng=4),
        "iid geometric (small-biased)": GeometricPowers(4, 1, 5, 0.5).sample_profile(
            4096, rng=5
        ),
        "iid heavy-tailed": ParetoPowers(4, 1, 6, 0.5).sample_profile(4096, rng=6),
        "iid empirical-of-worst-case": Empirical.of_profile(wc).sample_profile(
            4096, rng=7
        ),
        "squarified sawtooth": squarify(sawtooth_profile(4, n // 2, teeth=6)),
        "squarified random walk": squarify(
            random_walk_profile(n // 8, 8 * n, min_size=4, max_size=n, rng=8)
        ),
    }


def main() -> None:
    n = 4**5
    spec = MM_SCAN
    rows = []
    print(f"profile zoo scored against {spec.name} at n = {n}\n")
    for name, profile in zoo(n).items():
        print(f"{name:32s} {profile.sparkline(width=56)}")
        sim = SymbolicSimulator(spec, n, model="recursive")
        stream = itertools.chain(iter(profile), itertools.cycle(profile.boxes.tolist()))
        rec = sim.run_to_completion(stream)
        rows.append(
            (
                name,
                len(profile),
                int(profile.max_size()),
                rec.boxes_used,
                round(rec.adaptivity_ratio, 3),
            )
        )
    print()
    print(
        format_table(
            ["profile", "boxes", "max box", "boxes used", "adaptivity ratio"],
            rows,
        )
    )
    print(
        "\nOnly the profiles that track the recursion (the worst case and "
        "its weak perturbations) push the ratio up; randomness in the "
        "*ordering* flattens it."
    )


if __name__ == "__main__":
    main()
