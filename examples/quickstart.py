#!/usr/bin/env python3
"""Quickstart: the paper's story in forty lines.

1. Build the adversarial profile M_{8,4}(n) (Figure 1).
2. Run MM-SCAN on it — the adaptivity ratio is log_4(n) + 1 (Theorem 2's
   worst-case gap).
3. Shuffle the *same boxes* and run again — the ratio collapses to a
   small constant (Theorem 1: random order closes the gap).
4. Compute the exact expected ratio for the i.i.d. version from the
   Lemma-3 recurrence and confirm it agrees.

Run:  python examples/quickstart.py
"""

import itertools

from repro import MM_SCAN, Empirical, shuffle, worst_case_profile
from repro.analysis import expected_cost_ratio
from repro.simulation import SymbolicSimulator


def main() -> None:
    n = 4**5  # problem size in blocks (a power of b = 4)
    spec = MM_SCAN  # the canonical (8, 4, 1)-regular algorithm

    # -- 1. the adversary --------------------------------------------------
    profile = worst_case_profile(spec.a, spec.b, n)
    print(f"M_{{8,4}}({n}): {len(profile)} boxes, duration {profile.total_time}")
    print(f"profile shape: {profile.sparkline(width=64)}")

    # -- 2. adversarial order: the logarithmic gap ------------------------
    record = SymbolicSimulator(spec, n).run(profile)
    print(
        f"\nadversarial order : ratio = {record.adaptivity_ratio:.2f} "
        f"(= log_4 n + 1 = {record.adaptivity_ratio:.0f}), "
        f"{record.boxes_used} boxes, completed = {record.completed}"
    )

    # -- 3. the same boxes, shuffled ---------------------------------------
    shuffled = shuffle(profile, rng=0)
    empirical = Empirical.of_profile(profile)
    stream = itertools.chain(iter(shuffled), empirical.sampler(rng=1))
    record = SymbolicSimulator(spec, n).run_to_completion(stream)
    print(
        f"shuffled order    : ratio = {record.adaptivity_ratio:.2f} "
        f"({record.boxes_used} boxes)"
    )

    # -- 4. the exact expectation (no simulation) -------------------------
    exact = expected_cost_ratio(spec, n, empirical)
    print(f"i.i.d. exact      : ratio = {exact:.2f} (Lemma-3 recurrence)")

    print(
        "\nSame resources, different ordering: the log gap is a scheduling "
        "phenomenon, not a resource one."
    )


if __name__ == "__main__":
    main()
