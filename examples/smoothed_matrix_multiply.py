#!/usr/bin/env python3
"""End-to-end on *real* matrix multiplies: traces, machines, smoothing.

This example leaves the symbolic model entirely: it runs genuine
instrumented matrix multiplications (MM-SCAN and MM-INPLACE computing real
products), replays their block traces on the square-profile machine under
(a) the adversarial profile and (b) its shuffled version, and reports the
realized I/O behaviour — the paper's theory, visible on an actual
computation.  It also shows the classic DAM law (I/Os ~ N^1.5 / sqrt(M))
for calibration.

Run:  python examples/smoothed_matrix_multiply.py
"""

import itertools

import numpy as np

from repro.algorithms import mm_inplace, mm_scan
from repro.algorithms.mm import mm_scan_trace_adversary
from repro.machine import run_trace_on_boxes, simulate_dam
from repro.profiles import shuffle
from repro.util.rng import as_generator
from repro.util.tables import format_table


def main() -> None:
    gen = as_generator(0)
    dim = 32
    a = gen.standard_normal((dim, dim))
    b = gen.standard_normal((dim, dim))

    print(f"multiplying two {dim}x{dim} matrices with instrumented kernels...")
    scan_run = mm_scan(a, b, base_n=2)
    inplace_run = mm_inplace(a, b, base_n=2)
    assert np.allclose(scan_run.product, a @ b)
    assert np.allclose(inplace_run.product, a @ b)
    print(f"  MM-SCAN    trace: {scan_run.trace}")
    print(f"  MM-INPLACE trace: {inplace_run.trace}")

    # --- DAM calibration: I/Os vs cache size ------------------------------
    rows = []
    for m in (32, 64, 128, 256, 512):
        io_scan = simulate_dam(scan_run.trace, m, policy="lru").io_count
        io_inplace = simulate_dam(inplace_run.trace, m, policy="lru").io_count
        rows.append((m, io_scan, io_inplace))
    print("\nDAM baseline (fixed cache, LRU): I/Os shrink ~ 1/sqrt(M)")
    print(format_table(["cache (blocks)", "MM-SCAN I/Os", "MM-INPLACE I/Os"], rows))

    # --- adversarial vs shuffled boxes on the real traces ------------------
    # The adversary is *matched to the real trace's geometry*: boxes sized
    # to the concrete working sets of the execution's leaves and scans —
    # the literal Section-3 construction.
    adversary = mm_scan_trace_adversary(dim, base_n=2)
    shuffled = shuffle(adversary, rng=1)

    rows = []
    for label, trace in (("MM-SCAN", scan_run.trace), ("MM-INPLACE", inplace_run.trace)):
        work = trace.distinct_blocks()
        for pname, profile in (("adversarial", adversary), ("shuffled", shuffled)):
            stream = itertools.chain(iter(profile), itertools.cycle(profile.boxes.tolist()))
            rec = run_trace_on_boxes(trace, stream)
            # potential spent per unit of work: the smaller, the better the
            # boxes were used
            potential = float(
                (np.minimum(rec.box_sizes, work).astype(float) ** 1.5).sum()
            )
            rows.append(
                (
                    label,
                    pname,
                    rec.boxes_used,
                    round(potential / work**1.5, 3),
                    rec.completed,
                )
            )
    print("\nreal traces against the trace-matched adversary vs its shuffle")
    print(
        format_table(
            ["kernel", "box order", "boxes used", "potential / work^1.5", "done"],
            rows,
        )
    )
    print(
        "\nThe scan kernel burns far more potential under the adversarial "
        "ordering than under the shuffled one; the in-place kernel barely "
        "notices — exactly the separation the theory predicts."
    )


if __name__ == "__main__":
    main()
