"""Legacy shim so `pip install -e .` works offline (no wheel package,
no build isolation). All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
