"""repro — cache-adaptive analysis toolkit.

A from-scratch reproduction of *"Closing the Gap Between Cache-oblivious
and Cache-adaptive Analysis"* (Bender et al., SPAA 2020): simulators for
the cache-adaptive model, ``(a,b,c)``-regular algorithm machinery, memory
profiles (including the adversarial worst case and its smoothings), exact
expected-stopping-time solvers, and the experiment registry that
regenerates every claim of the paper.

Quick start::

    from repro import MM_SCAN, worst_case_profile, SymbolicSimulator

    profile = worst_case_profile(8, 4, 4**6)
    sim = SymbolicSimulator(MM_SCAN, 4**6)
    record = sim.run(profile)
    print(record.adaptivity_ratio)   # ~ log_4(n): the worst-case gap

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from repro.errors import (
    DistributionError,
    ExperimentError,
    MachineError,
    ProfileError,
    ReproError,
    SimulationError,
    SpecError,
    TraceError,
)
from repro.algorithms import (
    BINARY_ADAPTIVE,
    FLOYD_WARSHALL,
    GEP,
    LCS,
    MERGE_SORT,
    MM_INPLACE,
    MM_SCAN,
    NAMED_SPECS,
    SQRT_SCAN,
    STRASSEN,
    ExecutionCursor,
    RegularSpec,
    ScanPlacement,
    Trace,
    TraceRecorder,
    get_spec,
    synthetic_trace,
)
from repro.profiles import (
    BoxDistribution,
    Empirical,
    GeometricPowers,
    MemoryProfile,
    Mixture,
    ParetoPowers,
    PointMass,
    SquareProfile,
    UniformPowers,
    UniformRange,
    order_perturbed_profile,
    random_start_shift,
    shuffle,
    size_perturbation,
    squarify,
    uniform_multipliers,
    worst_case_profile,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SpecError",
    "ProfileError",
    "DistributionError",
    "SimulationError",
    "TraceError",
    "MachineError",
    "ExperimentError",
    # algorithms
    "RegularSpec",
    "ScanPlacement",
    "ExecutionCursor",
    "Trace",
    "TraceRecorder",
    "synthetic_trace",
    "get_spec",
    "NAMED_SPECS",
    "MM_SCAN",
    "MM_INPLACE",
    "STRASSEN",
    "GEP",
    "FLOYD_WARSHALL",
    "LCS",
    "MERGE_SORT",
    "BINARY_ADAPTIVE",
    "SQRT_SCAN",
    # profiles
    "MemoryProfile",
    "SquareProfile",
    "BoxDistribution",
    "PointMass",
    "UniformPowers",
    "GeometricPowers",
    "ParetoPowers",
    "UniformRange",
    "Empirical",
    "Mixture",
    "worst_case_profile",
    "order_perturbed_profile",
    "size_perturbation",
    "random_start_shift",
    "shuffle",
    "squarify",
    "uniform_multipliers",
    # runtime (lazy)
    "RunArtifact",
    "RunManifest",
    "ExperimentRunner",
    # blessed façade (lazy; see docs/API.md)
    "api",
]


def __getattr__(name):  # pragma: no cover - thin lazy-import shim
    """Lazily expose the simulation/analysis layers to avoid import cycles
    during package initialization."""
    if name == "api":
        import importlib

        return importlib.import_module("repro.api")
    if name in ("SymbolicSimulator", "RunRecord", "run_boxes", "run_repeated"):
        from repro import simulation

        return getattr(simulation, name)
    if name in ("adaptivity_ratio", "expected_boxes", "expected_cost_ratio"):
        from repro import analysis

        return getattr(analysis, name)
    if name in ("RunArtifact", "RunManifest", "ExperimentRunner"):
        from repro import runtime

        return getattr(runtime, name)
    if name == "run_one":
        import warnings

        from repro import runtime

        warnings.warn(
            "top-level repro.run_one is deprecated; use repro.api.run, or "
            "repro.api.execute with a repro.api.RunRequest for the typed "
            "v2 response (docs/API.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        return runtime.run_one
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
