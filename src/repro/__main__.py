"""Module entry point: ``python -m repro``.

The ``__name__`` guard is load-bearing: spawn-context multiprocessing
workers (the serve daemon's pool) re-import the parent's main module,
and must not re-run the CLI when they do.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
