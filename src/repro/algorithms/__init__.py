"""``(a,b,c)``-regular algorithm specs, execution cursors, real kernels
(matrix multiply, GEP/Floyd–Warshall, LCS, merge sort), traces, and the
scan-hiding transform."""

from repro.algorithms.cursor import BoxOutcome, ExecutionCursor
from repro.algorithms.gep import (
    GEPRun,
    floyd_warshall,
    floyd_warshall_reference,
    gep_inplace,
    gep_scan,
)
from repro.algorithms.layouts import Layout, Morton, RowMajor, get_layout
from repro.algorithms.lcs import LCSRun, lcs_length, lcs_reference
from repro.algorithms.library import (
    BINARY_ADAPTIVE,
    FLOYD_WARSHALL,
    GEP,
    LCS,
    MERGE_SORT,
    MM_INPLACE,
    MM_SCAN,
    NAMED_SPECS,
    SQRT_SCAN,
    STRASSEN,
    get_spec,
)
from repro.algorithms.mm import (
    MMRun,
    mm_inplace,
    mm_scan,
    mm_scan_trace_adversary,
    strassen,
)
from repro.algorithms.randomized import (
    coin_flip_placement,
    random_slot_placement,
    random_split_placement,
)
from repro.algorithms.scan_hiding import (
    hidden_work_per_leaf,
    overhead_factor,
    transform as scan_hiding_transform,
)
from repro.algorithms.sorting import SortRun, merge_sort
from repro.algorithms.spec import RegularSpec, ScanPlacement
from repro.algorithms.trace_store import (
    TRACE_FORMAT_VERSION,
    load_stored_trace,
    load_trace,
    save_trace,
    store_trace,
    stored_trace_path,
    trace_digest,
)
from repro.algorithms.traces import Trace, TraceRecorder, synthetic_trace

__all__ = [
    "BoxOutcome",
    "ExecutionCursor",
    "GEPRun",
    "floyd_warshall",
    "floyd_warshall_reference",
    "gep_inplace",
    "gep_scan",
    "Layout",
    "Morton",
    "RowMajor",
    "get_layout",
    "LCSRun",
    "lcs_length",
    "lcs_reference",
    "BINARY_ADAPTIVE",
    "FLOYD_WARSHALL",
    "GEP",
    "LCS",
    "MERGE_SORT",
    "MM_INPLACE",
    "MM_SCAN",
    "NAMED_SPECS",
    "SQRT_SCAN",
    "STRASSEN",
    "get_spec",
    "MMRun",
    "mm_inplace",
    "mm_scan",
    "mm_scan_trace_adversary",
    "strassen",
    "coin_flip_placement",
    "random_slot_placement",
    "random_split_placement",
    "hidden_work_per_leaf",
    "overhead_factor",
    "scan_hiding_transform",
    "SortRun",
    "merge_sort",
    "RegularSpec",
    "ScanPlacement",
    "Trace",
    "TraceRecorder",
    "synthetic_trace",
    "TRACE_FORMAT_VERSION",
    "trace_digest",
    "save_trace",
    "load_trace",
    "store_trace",
    "stored_trace_path",
    "load_stored_trace",
]
