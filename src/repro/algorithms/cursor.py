"""Execution cursor: a lazy program counter over the recursion tree.

The symbolic simulator never materializes the recursion tree of an
``(a,b,c)``-regular algorithm (it can have ``a**30`` leaves); instead,
:class:`ExecutionCursor` tracks the current position as a stack of frames
from the root to the active node, and answers the aggregate questions the
cache-adaptive semantics needs in ``O(depth)`` arithmetic:

* "complete execution through the end of the size-``s`` ancestor; how many
  base-case leaves and scan accesses did that cover?"
* "advance ``k`` accesses inside the current scan";
* "how far into the canonical linearization of the execution are we?"
  (:meth:`access_index` — the total order used by the No-Catch-up lemma).

Node event order is derived from the spec's scan placement: a size-``m``
node executes ``piece_0, child_0, piece_1, ..., child_{a-1}, piece_a``
where the pieces partition its scan (all in ``piece_a`` for the canonical
END placement).  Base-case nodes are atomic leaf events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError, SpecError
from repro.algorithms.spec import RegularSpec

__all__ = ["BoxOutcome", "ExecutionCursor"]


@dataclass(frozen=True)
class BoxOutcome:
    """What one box accomplished.

    ``leaves`` — base-case subproblems completed inside the box;
    ``scan_accesses`` — scan accesses performed inside the box;
    ``completed_size`` — size of the largest problem whose *end* this box
    reached by the ancestor-completion rule (None for pure scan boxes);
    ``done`` — True iff the root problem finished during this box.
    """

    leaves: int
    scan_accesses: int
    completed_size: Optional[int]
    done: bool


class _Frame:
    """One recursion level: node size, its event list, the index of the
    current event, and progress within the current event when it is a
    scan piece.  Events live on the frame (not keyed by size) so that
    randomized algorithms can lay out each node's scan independently.
    ``node`` is the node's preorder index in the recursion tree — the
    address randomized placements draw their pieces at."""

    __slots__ = ("size", "events", "event_idx", "scan_done", "node")

    def __init__(
        self,
        size: int,
        events: list,
        event_idx: int = 0,
        scan_done: int = 0,
        node: int = 0,
    ):
        self.size = size
        self.events = events
        self.event_idx = event_idx
        self.scan_done = scan_done
        self.node = node

    def clone(self) -> "_Frame":
        return _Frame(self.size, self.events, self.event_idx, self.scan_done, self.node)


# Event encodings: ("child", child_index) | ("scan", length) | ("leaf",)
_CHILD, _SCAN, _LEAF = "child", "scan", "leaf"
_LEAF_EVENTS: list[tuple] = [(_LEAF,)]


class ExecutionCursor:
    """Position of an ``(a,b,c)``-regular execution on a size-``n`` problem.

    A fresh cursor stands at the first access; :meth:`is_done` becomes
    True once the root problem (including its trailing scan) completes.
    The two feed methods implement the box semantics of the simplified
    caching model (Section 4) and a greedy variant; see
    :mod:`repro.simulation.symbolic` for the driver.
    """

    def __init__(
        self,
        spec: RegularSpec,
        n: int,
        scan_randomizer=None,
        warm_from: "Optional[ExecutionCursor]" = None,
    ):
        """``scan_randomizer``, when given, is either

        * an *addressable* placement (``addressable = True`` attribute,
          called as ``(size, node_index) -> pieces``): each node's pieces
          are a pure function of its preorder index, so replays, resets
          and chunked closed forms all see the same layout; or
        * a legacy positional callable ``(size) -> pieces``, consulted
          once per node as the execution first enters it (draws depend on
          visit order; scalar path only).

        Either returns ``a + 1`` non-negative ints summing to
        ``spec.scan_length(size)``, modelling *randomized* algorithms
        that decide at runtime where to run each node's scan (the
        paper's concluding open question).  Without it, the spec's
        static placement applies.

        ``warm_from`` shares the closed-form lookup tables of an
        existing cursor for the same ``(spec, n, scan_randomizer)`` —
        resets and repeated Monte-Carlo trials skip the table warm-up.
        """
        spec.validate_problem_size(n)
        self.spec = spec
        self.n = n
        self._randomizer = scan_randomizer
        self._addressable = bool(getattr(scan_randomizer, "addressable", False))
        if warm_from is not None:
            if (
                warm_from.spec != spec
                or warm_from.n != n
                or warm_from._randomizer is not scan_randomizer
            ):
                raise SimulationError(
                    "warm_from cursor must share spec, n, and scan_randomizer"
                )
            self._events_cache = warm_from._events_cache
            self._depth_cache = warm_from._depth_cache
            self._child_run_cache = warm_from._child_run_cache
            self._subtree_cache = warm_from._subtree_cache
            self._suffix_cache = warm_from._suffix_cache
            self._node_count_cache = warm_from._node_count_cache
        else:
            self._events_cache: dict[int, list[tuple]] = {}
            # Closed-form (feed_*_run) lookup tables; see _outermost_depth,
            # _child_run_end and _subtree_totals.
            self._depth_cache: dict[int, Optional[int]] = {}
            self._child_run_cache: dict[int, list[int]] = {}
            self._subtree_cache: dict[int, tuple[int, int]] = {}
            self._suffix_cache: dict[int, tuple[list[int], list[int]]] = {}
            self._node_count_cache: dict[int, int] = {}
        self._stack: list[_Frame] = [self._make_frame(n, 0)]
        self._normalize()

    # -- structural helpers -------------------------------------------------
    def _build_events(self, size: int, pieces) -> list[tuple]:
        ev: list[tuple] = []
        for i in range(self.spec.a):
            if pieces[i]:
                ev.append((_SCAN, pieces[i]))
            ev.append((_CHILD, i))
        if pieces[self.spec.a]:
            ev.append((_SCAN, pieces[self.spec.a]))
        return ev

    def _events_for(self, size: int, node: int) -> list[tuple]:
        """Event list for a fresh node (cached per size for static
        placements, drawn by node index for addressable placements,
        freshly drawn in visit order for legacy positional ones)."""
        if size <= self.spec.base_size:
            return _LEAF_EVENTS
        if self._randomizer is not None:
            if self._addressable:
                pieces = self._randomizer(size, node)
            else:
                pieces = self._randomizer(size)
            total = self.spec.scan_length(size)
            if len(pieces) != self.spec.a + 1 or sum(pieces) != total or any(
                p < 0 for p in pieces
            ):
                raise SimulationError(
                    f"scan randomizer returned invalid pieces {pieces} for "
                    f"size {size} (need {self.spec.a + 1} non-negative ints "
                    f"summing to {total})"
                )
            return self._build_events(size, pieces)
        ev = self._events_cache.get(size)
        if ev is None:
            ev = self._build_events(size, self.spec.scan_pieces(size))
            self._events_cache[size] = ev
        return ev

    def _make_frame(self, size: int, node: int) -> _Frame:
        return _Frame(size, self._events_for(size, node), node=node)

    def _node_count(self, size: int) -> int:
        """Number of nodes in a size-``size`` subtree — the preorder
        stride between consecutive siblings."""
        cnt = self._node_count_cache.get(size)
        if cnt is None:
            if size <= self.spec.base_size:
                cnt = 1
            else:
                cnt = 1 + self.spec.a * self._node_count(size // self.spec.b)
            self._node_count_cache[size] = cnt
        return cnt

    def _child_node(self, fr: _Frame, child_index: int, child_size: int) -> int:
        """Preorder index of child ``child_index`` of the frame's node."""
        return fr.node + 1 + child_index * self._node_count(child_size)

    def _normalize(self) -> None:
        """Advance past finished events and descend into pending children
        until the top frame's current event is a pending leaf or scan (or
        the execution is done)."""
        stack = self._stack
        while stack:
            fr = stack[-1]
            events = fr.events
            if fr.event_idx >= len(events):
                stack.pop()
                if stack:
                    stack[-1].event_idx += 1
                    stack[-1].scan_done = 0
                continue
            ev = events[fr.event_idx]
            kind = ev[0]
            if kind == _CHILD:
                child = self.spec.child_size(fr.size)
                stack.append(
                    self._make_frame(child, self._child_node(fr, ev[1], child))
                )
                continue
            if kind == _SCAN and fr.scan_done >= ev[1]:
                fr.event_idx += 1
                fr.scan_done = 0
                continue
            return  # pending leaf or partially-done scan

    # -- inspection --------------------------------------------------------
    @property
    def is_done(self) -> bool:
        return not self._stack

    def depth(self) -> int:
        """Current stack depth (root = 1); 0 when done."""
        return len(self._stack)

    def current_node_size(self) -> int:
        """Size of the innermost active node."""
        if self.is_done:
            raise SimulationError("execution already complete")
        return self._stack[-1].size

    def at_scan(self) -> bool:
        """True iff the cursor stands inside a scan piece."""
        if self.is_done:
            return False
        fr = self._stack[-1]
        return fr.events[fr.event_idx][0] == _SCAN

    def scan_remaining(self) -> int:
        """Accesses left in the current scan piece (0 if not at a scan)."""
        if self.is_done:
            return 0
        fr = self._stack[-1]
        ev = fr.events[fr.event_idx]
        return ev[1] - fr.scan_done if ev[0] == _SCAN else 0

    def access_index(self) -> int:
        """Completed accesses in the canonical linearization (leaves count
        ``base_size`` accesses, scans their length).  Strictly increases
        with execution progress; the total length is
        ``spec.subtree_accesses(n)``."""
        spec = self.spec
        if self.is_done:
            return spec.subtree_accesses(self.n)
        pos = 0
        for i, fr in enumerate(self._stack):
            events = fr.events
            child_size = fr.size // spec.b if fr.size > spec.base_size else 0
            for ev in events[: fr.event_idx]:
                if ev[0] == _CHILD:
                    pos += spec.subtree_accesses(child_size)
                elif ev[0] == _SCAN:
                    pos += ev[1]
                else:  # completed leaf events never linger (frame pops)
                    pos += spec.base_size
            if i == len(self._stack) - 1 and fr.event_idx < len(events):
                if events[fr.event_idx][0] == _SCAN:
                    pos += fr.scan_done
        return pos

    def snapshot(self) -> "ExecutionCursor":
        """Deep copy of the cursor (shares the immutable spec/cache)."""
        dup = ExecutionCursor.__new__(ExecutionCursor)
        dup.spec = self.spec
        dup.n = self.n
        dup._randomizer = self._randomizer
        dup._addressable = self._addressable
        dup._events_cache = self._events_cache
        dup._depth_cache = self._depth_cache
        dup._child_run_cache = self._child_run_cache
        dup._subtree_cache = self._subtree_cache
        dup._suffix_cache = self._suffix_cache
        dup._node_count_cache = self._node_count_cache
        dup._stack = [fr.clone() for fr in self._stack]
        return dup

    # -- positioning --------------------------------------------------------
    def seek(self, access_index: int) -> None:
        """Reposition the cursor at the given linearized access index.

        ``access_index`` must be in ``[0, spec.subtree_accesses(n)]``; the
        largest value positions the cursor at completion.  Used to sample
        uniformly random execution positions (Lemma 1's potential is a max
        over all positions).
        """
        spec = self.spec
        total = spec.subtree_accesses(self.n)
        if not 0 <= access_index <= total:
            raise SimulationError(
                f"access index {access_index} outside [0, {total}]"
            )
        if access_index == total:
            self._stack = []
            return
        self._stack = [self._make_frame(self.n, 0)]
        remaining = access_index
        while True:
            fr = self._stack[-1]
            events = fr.events
            if events[fr.event_idx][0] == _LEAF:
                # position inside a leaf: the leaf is atomic; stand at it
                return
            advanced = False
            while fr.event_idx < len(events):
                ev = events[fr.event_idx]
                if ev[0] == _CHILD:
                    child = spec.child_size(fr.size)
                    cost = spec.subtree_accesses(child)
                    if remaining >= cost:
                        remaining -= cost
                        fr.event_idx += 1
                        continue
                    self._stack.append(
                        self._make_frame(child, self._child_node(fr, ev[1], child))
                    )
                    advanced = True
                    break
                if ev[0] == _SCAN:
                    if remaining >= ev[1]:
                        remaining -= ev[1]
                        fr.event_idx += 1
                        continue
                    fr.scan_done = remaining
                    return
                # leaf event inside a non-base node cannot occur
                raise SimulationError("malformed event list")
            if not advanced:
                # consumed every event of this frame with remainder 0
                self._normalize()
                return

    # -- aggregate completion ----------------------------------------------
    def _remaining_in_subtree(self, frame_idx: int) -> tuple[int, int]:
        """Leaves and scan accesses left from the cursor to the end of the
        node at ``frame_idx`` (inclusive of deeper pending work)."""
        spec = self.spec
        leaves = 0
        scans = 0
        stack = self._stack
        for i in range(len(stack) - 1, frame_idx - 1, -1):
            fr = stack[i]
            events = fr.events
            start = fr.event_idx
            if i == len(stack) - 1:
                if start < len(events):
                    ev = events[start]
                    if ev[0] == _LEAF:
                        leaves += 1
                    elif ev[0] == _SCAN:
                        scans += ev[1] - fr.scan_done
                    start += 1
            else:
                start += 1  # current child event is covered by deeper frames
            child = fr.size // spec.b if fr.size > spec.base_size else 0
            for ev in events[start:]:
                if ev[0] == _CHILD:
                    leaves += spec.leaves(child)
                    scans += spec.subtree_scan_total(child)
                elif ev[0] == _SCAN:
                    scans += ev[1]
        return leaves, scans

    def remaining_leaves(self) -> int:
        """Base cases left before the root completes."""
        if self.is_done:
            return 0
        return self._remaining_in_subtree(0)[0]

    def complete_through(self, frame_idx: int) -> tuple[int, int]:
        """Finish everything up to the end of the node at ``frame_idx``.

        Returns ``(leaves, scan_accesses)`` covered.  Afterwards the
        cursor stands at the next event after that node (or is done).
        """
        if self.is_done:
            raise SimulationError("execution already complete")
        if not 0 <= frame_idx < len(self._stack):
            raise SimulationError(f"frame index {frame_idx} out of range")
        leaves, scans = self._remaining_in_subtree(frame_idx)
        del self._stack[frame_idx:]
        if self._stack:
            self._stack[-1].event_idx += 1
            self._stack[-1].scan_done = 0
        self._normalize()
        return leaves, scans

    def advance_scan(self, k: int) -> int:
        """Advance up to ``k`` accesses in the current scan piece; returns
        the number actually advanced."""
        if k < 0:
            raise SimulationError(f"k must be >= 0, got {k}")
        if self.is_done or not self.at_scan():
            raise SimulationError("cursor is not at a scan")
        fr = self._stack[-1]
        ev = fr.events[fr.event_idx]
        step = min(k, ev[1] - fr.scan_done)
        fr.scan_done += step
        self._normalize()
        return step

    def complete_leaf(self) -> None:
        """Complete the pending base-case leaf under the cursor."""
        if self.is_done or self.at_scan():
            raise SimulationError("cursor is not at a leaf")
        fr = self._stack[-1]
        fr.event_idx += 1
        self._normalize()

    # -- box semantics --------------------------------------------------------
    def _outermost_frame_with_size_at_most(self, s: int) -> Optional[int]:
        """Index of the outermost stack frame whose node size is <= s
        (frame sizes strictly decrease root-to-leaf), or None."""
        for i, fr in enumerate(self._stack):
            if fr.size <= s:
                return i
        return None

    def feed_simplified(self, s: int, completion_divisor: int = 1) -> BoxOutcome:
        """Apply one box of size ``s`` under the simplified caching model.

        * Box begins inside the scan of a problem it cannot complete:
          advance ``min(s, rest of that scan piece)`` and stop (any
          sufficiently large box can stream a scan).
        * Otherwise: complete to the end of the largest containing
          problem the box can complete, including its trailing scan, and
          go no further.

        ``completion_divisor`` (κ >= 1) sets which problems a size-``s``
        box can complete: those of size at most ``s // κ``.  κ = 1 is the
        generous normalization Section 4 adopts for the positive results
        (a size-``s`` box completes the size-``s`` problem containing it).
        Real caches hide a constant — a problem of size ``m`` touches
        ``Θ(m)`` distinct blocks with a constant above 1, so per Lemma 1 a
        box only completes problems *sufficiently small* in ``Θ(s)``; the
        paper's negative (robustness) results depend on that constant.
        κ = b is the natural conservative choice for reproducing them.
        Regardless of κ, a box of at least ``base_size`` completes the
        pending base-case leaf (boxes are assumed to be sufficiently
        large constants, so leaves are never a barrier).

        Boxes too small to do any of the above make no progress and yield
        a zero outcome.
        """
        if self.is_done:
            raise SimulationError("execution already complete")
        if s < 1:
            raise SimulationError(f"box size must be >= 1, got {s}")
        if completion_divisor < 1:
            raise SimulationError(
                f"completion_divisor must be >= 1, got {completion_divisor}"
            )
        s_eff = s // completion_divisor
        fr = self._stack[-1]
        if self.at_scan() and fr.size > s_eff:
            k = self.advance_scan(s)
            return BoxOutcome(0, k, None, self.is_done)
        idx = self._outermost_frame_with_size_at_most(s_eff)
        if idx is None:
            if s >= self.spec.base_size and not self.at_scan():
                # The pending leaf is always completable by a
                # constant-sized box.
                self.complete_leaf()
                return BoxOutcome(1, 0, self.spec.base_size, self.is_done)
            return BoxOutcome(0, 0, None, False)
        completed_size = self._stack[idx].size
        leaves, scans = self.complete_through(idx)
        return BoxOutcome(leaves, scans, completed_size, self.is_done)

    # -- closed-form lookup tables (static placements only) ---------------
    def _outermost_depth(self, s: int) -> Optional[int]:
        """Index of the outermost stack frame whose size is <= ``s``, as a
        cached table lookup.

        Equivalent to :meth:`_outermost_frame_with_size_at_most` because
        stack sizes are always the fixed chain ``n, n//b, n//b//b, ...``
        (every frame's child has size ``child_size(parent)``), so the
        answer depends only on ``s`` and the current depth — not on which
        nodes the frames happen to be.
        """
        d = self._depth_cache.get(s, -1)
        if d == -1:
            size = self.n
            b = self.spec.b
            base = self.spec.base_size
            i = 0
            while True:
                if size <= s:
                    d: Optional[int] = i
                    break
                if size <= base:  # deepest possible frame still too big
                    d = None
                    break
                size //= b
                i += 1
            self._depth_cache[s] = d
        if d is None or d >= len(self._stack):
            return None
        return d

    def _child_run_end(self, frame: _Frame) -> int:
        """First event index at or after the frame's current event that is
        not a ``child`` event (cached per node size — event lists are
        shared per size for static placements; addressable placements lay
        each node out independently, so theirs is scanned per frame)."""
        if self._addressable:
            events = frame.events
            end = len(events)
            j = frame.event_idx
            while j < end and events[j][0] == _CHILD:
                j += 1
            return j
        tbl = self._child_run_cache.get(frame.size)
        if tbl is None:
            events = frame.events
            end = len(events)
            tbl = [0] * (end + 1)
            tbl[end] = end
            for j in range(end - 1, -1, -1):
                tbl[j] = tbl[j + 1] if events[j][0] == _CHILD else j
            self._child_run_cache[frame.size] = tbl
        return tbl[frame.event_idx]

    def _subtree_totals(self, size: int) -> tuple[int, int]:
        """``(leaves, scan_accesses)`` of a whole fresh subtree — the
        placement-independent totals a sibling-completing box covers."""
        totals = self._subtree_cache.get(size)
        if totals is None:
            totals = (self.spec.leaves(size), self.spec.subtree_scan_total(size))
            self._subtree_cache[size] = totals
        return totals

    def _event_suffix_totals(self, frame: _Frame) -> tuple[list[int], list[int]]:
        """Per-size tables ``(leaves, scans)`` of everything from event
        ``j`` on in a node of this size: ``tables[0][j]``/``tables[1][j]``
        cover ``events[j:]`` with child events counted as whole fresh
        subtrees.  Valid because static placements share one event list
        per size, and all frame sizes come from the chain ``n, n//b, ...``
        so a size identifies its event list."""
        tbl = self._suffix_cache.get(frame.size)
        if tbl is None:
            spec = self.spec
            events = frame.events
            if frame.size > spec.base_size:
                child_leaves, child_scans = self._subtree_totals(
                    frame.size // spec.b
                )
            else:
                child_leaves = child_scans = 0
            m = len(events)
            suf_leaves = [0] * (m + 1)
            suf_scans = [0] * (m + 1)
            for j in range(m - 1, -1, -1):
                ev = events[j]
                kind = ev[0]
                if kind == _CHILD:
                    suf_leaves[j] = suf_leaves[j + 1] + child_leaves
                    suf_scans[j] = suf_scans[j + 1] + child_scans
                elif kind == _SCAN:
                    suf_leaves[j] = suf_leaves[j + 1]
                    suf_scans[j] = suf_scans[j + 1] + ev[1]
                else:
                    suf_leaves[j] = suf_leaves[j + 1] + 1
                    suf_scans[j] = suf_scans[j + 1]
            tbl = (suf_leaves, suf_scans)
            self._suffix_cache[frame.size] = tbl
        return tbl

    def _complete_through_cached(self, frame_idx: int) -> tuple[int, int]:
        """:meth:`complete_through` computed with the suffix tables —
        O(depth) instead of O(depth * events), same result and state.
        Addressable placements have per-node event lists, so the per-size
        suffix tables do not apply; the direct walk is used instead."""
        if self._addressable:
            return self.complete_through(frame_idx)
        stack = self._stack
        leaves = 0
        scans = 0
        top = len(stack) - 1
        for i in range(frame_idx, top + 1):
            fr = stack[i]
            start = fr.event_idx
            if i == top:
                if start < len(fr.events):
                    ev = fr.events[start]
                    if ev[0] == _LEAF:
                        leaves += 1
                    elif ev[0] == _SCAN:
                        scans += ev[1] - fr.scan_done
                    start += 1
            else:
                start += 1  # current child event is covered by deeper frames
            suf_leaves, suf_scans = self._event_suffix_totals(fr)
            leaves += suf_leaves[start]
            scans += suf_scans[start]
        del stack[frame_idx:]
        if stack:
            stack[-1].event_idx += 1
            stack[-1].scan_done = 0
        self._normalize()
        return leaves, scans

    def feed_simplified_run(
        self, s: int, count: int, completion_divisor: int = 1
    ) -> tuple[int, int, int]:
        """Consume up to ``count`` boxes of identical size ``s`` in closed
        form under the simplified model; returns ``(consumed, leaves,
        scan_accesses)``.

        Exactly equivalent to ``consumed`` sequential
        :meth:`feed_simplified` calls — the batched aggregate and the
        final cursor state are identical (asserted differentially in
        ``tests/simulation/test_fastpath.py``) — but a run streaming a
        scan becomes one division, ``k`` boxes each completing one fresh
        size-``<= s//κ`` sibling become one multiply, and ``k`` boxes
        each completing one pending leaf become one addition.  Consumes
        a maximal closed-form prefix: call again with the remaining
        count while the cursor is not done.

        Requires a static or *addressable* scan placement.  Batches skip
        whole sibling subtrees without entering them; a legacy positional
        randomizer is consulted once per first-entered node, so skipping
        would desynchronize its stream — an addressable placement draws
        by node index, so unvisited nodes consume nothing either way.
        """
        if self._randomizer is not None and not self._addressable:
            raise SimulationError(
                "feed_simplified_run requires a static or addressable scan "
                "placement; positional randomizers must step box by box"
            )
        if not self._stack:
            raise SimulationError("execution already complete")
        if s < 1:
            raise SimulationError(f"box size must be >= 1, got {s}")
        if count < 1:
            raise SimulationError(f"count must be >= 1, got {count}")
        if completion_divisor < 1:
            raise SimulationError(
                f"completion_divisor must be >= 1, got {completion_divisor}"
            )
        spec = self.spec
        s_eff = s // completion_divisor
        stack = self._stack
        fr = stack[-1]
        ev = fr.events[fr.event_idx]
        # a run streaming a scan it cannot complete: one division
        if ev[0] == _SCAN and fr.size > s_eff:
            rem = ev[1] - fr.scan_done
            need = -(-rem // s)  # boxes to fill the piece (ceil)
            q = need if count >= need else count
            step = min(q * s, rem)
            fr.scan_done += step
            if fr.scan_done >= ev[1]:
                fr.event_idx += 1
                fr.scan_done = 0
                self._normalize()
            return q, 0, step
        idx = self._outermost_depth(s_eff)
        if idx is None:
            if s >= spec.base_size and ev[0] == _LEAF:
                # leaf batch: boxes too small to complete any ancestor
                # still complete pending base cases, one each
                if len(stack) == 1:
                    self.complete_leaf()
                    return 1, 1, 0
                parent = stack[-2]
                q = min(count, self._child_run_end(parent) - parent.event_idx)
                del stack[-1]
                parent.event_idx += q
                parent.scan_done = 0
                self._normalize()
                return q, q, 0
            # zero-progress boxes: the cursor does not move, so the
            # whole run is consumed at once
            return count, 0, 0
        # subtree completion: each box completes (the remainder of) the
        # outermost problem of size <= s_eff containing the cursor
        leaves = 0
        scans = 0
        consumed = 0
        while True:
            top = len(stack) - 1
            if idx == top:
                fr = stack[top]
                fresh = fr.event_idx == 0 and fr.scan_done == 0
            else:
                fresh = all(
                    f.event_idx == 0 and f.scan_done == 0 for f in stack[idx:]
                )
            if fresh and idx > 0:
                # batch consecutive fresh siblings: one multiply
                parent = stack[idx - 1]
                q = min(
                    count - consumed,
                    self._child_run_end(parent) - parent.event_idx,
                )
                sub_leaves, sub_scans = self._subtree_totals(stack[idx].size)
                leaves += q * sub_leaves
                scans += q * sub_scans
                del stack[idx:]
                parent.event_idx += q
                parent.scan_done = 0
                self._normalize()
                consumed += q
            else:
                # partially progressed (the run's first box) or the root
                got_leaves, got_scans = self._complete_through_cached(idx)
                leaves += got_leaves
                scans += got_scans
                consumed += 1
            if consumed >= count or not stack:
                break
            fr = stack[-1]
            if fr.events[fr.event_idx][0] == _SCAN and fr.size > s_eff:
                break  # next box streams a scan: separate closed form
            idx = self._outermost_depth(s_eff)
            if idx is None:
                break  # next box behaves as a leaf/zero-progress box
        return consumed, leaves, scans

    def feed_greedy_run(self, s: int, count: int) -> tuple[int, int, int]:
        """Consume up to ``count`` identical greedy boxes in closed form;
        returns ``(consumed, leaves, scan_accesses)``.

        Batches the two regimes that dominate long runs — boxes fully
        absorbed by the current scan piece (one division) and boxes too
        small to complete a leaf (consumed without progress) — and
        falls back to a single :meth:`feed_greedy` step otherwise.
        Equivalent to ``consumed`` sequential :meth:`feed_greedy` calls.
        """
        if self._randomizer is not None and not self._addressable:
            raise SimulationError(
                "feed_greedy_run requires a static or addressable scan "
                "placement; positional randomizers must step box by box"
            )
        if not self._stack:
            raise SimulationError("execution already complete")
        if s < 1:
            raise SimulationError(f"box size must be >= 1, got {s}")
        if count < 1:
            raise SimulationError(f"count must be >= 1, got {count}")
        fr = self._stack[-1]
        ev = fr.events[fr.event_idx]
        if ev[0] == _SCAN:
            rem = ev[1] - fr.scan_done
            whole = rem // s  # boxes the piece absorbs entirely
            if whole >= 1:
                q = whole if count >= whole else count
                step = q * s
                fr.scan_done += step
                if fr.scan_done >= ev[1]:
                    fr.event_idx += 1
                    fr.scan_done = 0
                    self._normalize()
                return q, 0, step
        elif s < self.spec.base_size:
            # cannot afford a leaf and is not at a scan: no progress
            return count, 0, 0
        out = self.feed_greedy(s)
        return 1, out.leaves, out.scan_accesses

    def feed_recursive_run(
        self, s: int, count: int, completion_divisor: int = 1
    ) -> tuple[int, int, int]:
        """Consume up to ``count`` identical boxes in closed form under the
        budgeted-continuation model; returns ``(consumed, leaves,
        scan_accesses)``.  Equivalent to ``consumed`` sequential
        :meth:`feed_recursive` calls (asserted differentially in
        ``tests/simulation/test_replay.py``).

        Three regimes batch; everything else falls back to single scalar
        steps, so arbitrary box/spec combinations stay exact:

        * a run streaming a scan of a node too large to complete —
          every fully-absorbed box is one division (the boundary box,
          which spills its leftover budget past the scan, goes scalar);
        * boxes whose budget is consumed *exactly* by ``j`` fresh sibling
          subtrees (``s == j * cost``, ``cost = min(m, subtree
          accesses)``) — one multiply per batch.  The canonical
          worst-case profile hits this with ``j = 1`` at every level,
          which is what makes the recursive model chunkable on the
          paper's central input;
        * boxes too small to make any progress — the whole run is
          consumed at once.

        Requires a static or addressable scan placement, exactly as
        :meth:`feed_simplified_run` (sibling batches skip subtrees
        without entering them).
        """
        if self._randomizer is not None and not self._addressable:
            raise SimulationError(
                "feed_recursive_run requires a static or addressable scan "
                "placement; positional randomizers must step box by box"
            )
        if not self._stack:
            raise SimulationError("execution already complete")
        if s < 1:
            raise SimulationError(f"box size must be >= 1, got {s}")
        if count < 1:
            raise SimulationError(f"count must be >= 1, got {count}")
        if completion_divisor < 1:
            raise SimulationError(
                f"completion_divisor must be >= 1, got {completion_divisor}"
            )
        base = self.spec.base_size
        s_eff = s // completion_divisor
        stack = self._stack
        leaves = 0
        scans = 0
        consumed = 0
        while True:
            fr = stack[-1]
            ev = fr.events[fr.event_idx]
            if ev[0] == _SCAN and fr.size > s_eff:
                # scan streaming: boxes with s <= (scan left) are fully
                # absorbed (budget exhausted inside the piece)
                rem = ev[1] - fr.scan_done
                whole = rem // s
                if whole >= 1:
                    q = whole if count - consumed >= whole else count - consumed
                    step = q * s
                    fr.scan_done += step
                    if fr.scan_done >= ev[1]:
                        fr.event_idx += 1
                        fr.scan_done = 0
                        self._normalize()
                    consumed += q
                    scans += step
                else:
                    # boundary box: spills leftover budget past the scan
                    out = self.feed_recursive(s, completion_divisor)
                    consumed += 1
                    leaves += out.leaves
                    scans += out.scan_accesses
            else:
                idx = self._outermost_depth(s_eff)
                if idx is None:
                    if ev[0] == _LEAF and s < base:
                        # no scan, no completable ancestor, cannot afford
                        # a leaf: the cursor does not move
                        return count, leaves, scans
                    out = self.feed_recursive(s, completion_divisor)
                    consumed += 1
                    leaves += out.leaves
                    scans += out.scan_accesses
                else:
                    batched = 0
                    fresh = all(
                        f.event_idx == 0 and f.scan_done == 0
                        for f in stack[idx:]
                    )
                    if fresh and idx > 0:
                        sz = stack[idx].size
                        sub_leaves, sub_scans = self._subtree_totals(sz)
                        cost = min(sz, sub_leaves * base + sub_scans)
                        if cost <= s and s % cost == 0:
                            # each box completes exactly j consecutive
                            # fresh siblings, budget exhausted with no
                            # leftover to spill deeper
                            j = s // cost
                            parent = stack[idx - 1]
                            avail = self._child_run_end(parent) - parent.event_idx
                            q = min(count - consumed, avail // j)
                            if q >= 1:
                                total = q * j
                                leaves += total * sub_leaves
                                scans += total * sub_scans
                                del stack[idx:]
                                parent.event_idx += total
                                parent.scan_done = 0
                                self._normalize()
                                consumed += q
                                batched = 1
                    if not batched:
                        # partially progressed, root-level, or inexact
                        # budget: one scalar budgeted step
                        out = self.feed_recursive(s, completion_divisor)
                        consumed += 1
                        leaves += out.leaves
                        scans += out.scan_accesses
            if consumed >= count or not stack:
                break
        return consumed, leaves, scans

    def feed_recursive(self, s: int, completion_divisor: int = 1) -> BoxOutcome:
        """Apply one box of size ``s`` under the budgeted-continuation model.

        Like :meth:`feed_simplified`, a box can complete problems of size
        up to ``s // completion_divisor`` — but instead of "going no
        further", it carries a *distinct-block budget* of ``s``: completing
        the remainder of a subproblem of size ``m`` costs
        ``min(m, remaining accesses in it)`` blocks (the subtree touches at
        most ``m`` distinct blocks — the reuse that makes divide-and-conquer
        cache-efficient), scan accesses cost one block each, and the box
        continues into following siblings while budget remains.

        On the canonical worst-case profile this model behaves identically
        to the simplified one (every box is exactly consumed), so the
        ``c = 1`` lower bounds are preserved; unlike the simplified model
        it does not spuriously strand the leftover capacity of large boxes
        on small scans, which is what lets ``c < 1`` algorithms show their
        Theorem-2 adaptivity.
        """
        if self.is_done:
            raise SimulationError("execution already complete")
        if s < 1:
            raise SimulationError(f"box size must be >= 1, got {s}")
        if completion_divisor < 1:
            raise SimulationError(
                f"completion_divisor must be >= 1, got {completion_divisor}"
            )
        s_eff = s // completion_divisor
        budget = s
        leaves = 0
        scans = 0
        largest: Optional[int] = None
        base = self.spec.base_size
        while budget > 0 and not self.is_done:
            fr = self._stack[-1]
            if self.at_scan() and fr.size > s_eff:
                step = self.advance_scan(min(budget, self.scan_remaining()))
                scans += step
                budget -= step
                continue
            idx = self._outermost_frame_with_size_at_most(s_eff)
            progressed = False
            if idx is not None:
                # Largest completable ancestor whose remainder fits the
                # remaining budget (frames shrink root-to-leaf).
                for j in range(idx, len(self._stack)):
                    rem_leaves, rem_scans = self._remaining_in_subtree(j)
                    cost = min(self._stack[j].size, rem_leaves * base + rem_scans)
                    if cost <= budget:
                        size_j = self._stack[j].size
                        got_leaves, got_scans = self.complete_through(j)
                        leaves += got_leaves
                        scans += got_scans
                        budget -= cost
                        if largest is None or size_j > largest:
                            largest = size_j
                        progressed = True
                        break
            if progressed:
                continue
            # No wholesale completion fits: make fine-grained progress.
            if self.at_scan():
                step = self.advance_scan(min(budget, self.scan_remaining()))
                scans += step
                budget -= step
                if step == 0:
                    break
                continue
            if budget >= base:
                self.complete_leaf()
                leaves += 1
                budget -= base
                if largest is None:
                    largest = base
                continue
            break
        return BoxOutcome(leaves, scans, largest, self.is_done)

    def feed_greedy(self, s: int) -> BoxOutcome:
        """Apply one box of size ``s`` under the greedy access-budget model.

        The box performs up to ``s`` accesses (every access assumed to
        touch a fresh block): leaves cost ``base_size``, scan pieces their
        remaining length, crossing into the next subproblem is free.  An
        optimistic sensitivity-analysis variant — not the paper's model.
        """
        if self.is_done:
            raise SimulationError("execution already complete")
        if s < 1:
            raise SimulationError(f"box size must be >= 1, got {s}")
        budget = s
        leaves = 0
        scans = 0
        largest: Optional[int] = None
        while budget > 0 and not self.is_done:
            fr = self._stack[-1]
            if self.at_scan():
                step = self.advance_scan(budget)
                scans += step
                budget -= step
            else:
                if budget < self.spec.base_size:
                    break
                self.complete_leaf()
                leaves += 1
                budget -= self.spec.base_size
                if largest is None or self.spec.base_size > largest:
                    largest = self.spec.base_size
        return BoxOutcome(leaves, scans, largest, self.is_done)
