"""The Gaussian Elimination Paradigm (GEP) and Floyd–Warshall APSP.

Chowdhury–Ramachandran's GEP covers triply-nested-loop DP kernels of the
form ``x[i,j] = f(x[i,j], u[i,k], v[k,j])`` — Gaussian elimination without
pivoting, Floyd–Warshall all-pairs shortest paths, and matrix multiply are
instances.  The cache-oblivious recursion splits the (i, j, k) cube into
eight half-size subproblems: on an ``n x n`` table of ``N = n²`` words,
``T(N) = 8 T(N/4) + Θ(N/B)`` — exactly the paper's gap regime (8, 4, 1).

Two variants are implemented, mirroring the MM-SCAN/MM-INPLACE dichotomy:

* :func:`gep_inplace` — updates quadrants in place (the (8,4,0)-shaped
  trace);
* :func:`gep_scan` — each level stages its updates in a temporary and
  commits with a merging linear scan (the (8,4,1)-shaped trace).

Both compute identical, verified results (min-plus for Floyd–Warshall).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import TraceError
from repro.algorithms.layouts import get_layout
from repro.algorithms.traces import Trace, TraceRecorder
from repro.util.intmath import is_power_of

__all__ = ["GEPRun", "gep_inplace", "gep_scan", "floyd_warshall", "floyd_warshall_reference"]

# A GEP update rule mutates the x block in place given aligned u, v
# blocks. It must process k sequentially so that aliased blocks (the
# diagonal subproblems of Floyd–Warshall, where X, U, V views overlap)
# observe earlier updates — batching over k would be incorrect there.
UpdateRule = Callable[[np.ndarray, np.ndarray, np.ndarray], None]


def _minplus(x: np.ndarray, u: np.ndarray, v: np.ndarray) -> None:
    """Floyd–Warshall update: x[i,j] = min(x[i,j], u[i,k] + v[k,j]),
    applied for each k in sequence (alias-safe)."""
    for k in range(u.shape[1]):
        np.minimum(x, u[:, k : k + 1] + v[k : k + 1, :], out=x)


@dataclass(frozen=True)
class GEPRun:
    """Result of an instrumented GEP computation."""

    table: np.ndarray
    trace: Trace | None


class _Quad:
    """Square sub-block of the table with global word addressing."""

    __slots__ = ("data", "r0", "c0", "size", "base_addr", "layout")

    def __init__(self, data, r0, c0, size, base_addr, layout):
        self.data = data
        self.r0 = r0
        self.c0 = c0
        self.size = size
        self.base_addr = base_addr
        self.layout = layout

    def view(self) -> np.ndarray:
        return self.data[self.r0 : self.r0 + self.size, self.c0 : self.c0 + self.size]

    def sub(self, qi: int, qj: int) -> "_Quad":
        h = self.size // 2
        return _Quad(self.data, self.r0 + qi * h, self.c0 + qj * h, h,
                     self.base_addr, self.layout)

    def word_addresses(self) -> np.ndarray:
        rows, cols = np.meshgrid(
            np.arange(self.r0, self.r0 + self.size),
            np.arange(self.c0, self.c0 + self.size),
            indexing="ij",
        )
        return self.layout.addresses(rows.ravel(), cols.ravel()) + self.base_addr


def _touch(rec: TraceRecorder | None, q: _Quad) -> None:
    if rec is not None:
        rec.touch_words(q.word_addresses())


# The GEP recursion order on (X, U, V) quadrants: the dependency-respecting
# sequence of 8 subcalls from Chowdhury–Ramachandran.
_GEP_ORDER = [
    (0, 0, 0, 0, 0, 0),  # X11 <- U11, V11
    (0, 1, 0, 0, 0, 1),  # X12 <- U11, V12
    (1, 0, 1, 0, 0, 0),  # X21 <- U21, V11
    (1, 1, 1, 0, 0, 1),  # X22 <- U21, V12
    (1, 1, 1, 1, 1, 1),  # X22 <- U22, V22
    (1, 0, 1, 1, 1, 0),  # X21 <- U22, V21
    (0, 1, 0, 1, 1, 1),  # X12 <- U12, V22
    (0, 0, 0, 1, 1, 0),  # X11 <- U12, V21
]


def _gep_rec(
    rec: TraceRecorder | None,
    x: _Quad,
    u: _Quad,
    v: _Quad,
    base_n: int,
    rule: UpdateRule,
    scan: bool,
) -> None:
    if x.size <= base_n:
        if rec is not None:
            rec.begin_leaf()
        _touch(rec, x)
        _touch(rec, u)
        _touch(rec, v)
        rule(x.view(), u.view(), v.view())
        if rec is not None:
            rec.end_leaf()
        return
    for xi, xj, ui, uj, vi, vj in _GEP_ORDER:
        _gep_rec(rec, x.sub(xi, xj), u.sub(ui, uj), v.sub(vi, vj), base_n, rule, scan)
    if scan:
        # Staged-commit variant: a merging linear scan over the X block,
        # making the kernel (8,4,1)-regular like MM-SCAN.  The scan
        # re-reads and re-writes the block (a semantic no-op that models
        # the commit pass a non-in-place formulation performs).
        _touch(rec, x)
        _touch(rec, x)
        x.view()[...] = x.view() + 0.0


def _run_gep(
    table: np.ndarray,
    base_n: int,
    rule: UpdateRule,
    scan: bool,
    layout: str,
    record: bool,
    label: str,
) -> GEPRun:
    if table.ndim != 2 or table.shape[0] != table.shape[1]:
        raise TraceError("GEP table must be square")
    n = table.shape[0]
    if not is_power_of(n, 2):
        raise TraceError(f"table dimension must be a power of two, got {n}")
    if not is_power_of(base_n, 2) or base_n < 1 or base_n > n:
        raise TraceError(f"invalid base_n={base_n} for n={n}")
    data = np.array(table, dtype=np.float64)
    lay = get_layout(layout, n)
    rec = TraceRecorder(label=label) if record else None
    root = _Quad(data, 0, 0, n, 0, lay)
    _gep_rec(rec, root, root, root, base_n, rule, scan)
    return GEPRun(data, rec.build() if rec else None)


def gep_inplace(
    table: np.ndarray,
    rule: UpdateRule = _minplus,
    base_n: int = 2,
    layout: str = "morton",
    record: bool = True,
) -> GEPRun:
    """In-place GEP — the (8,4,0)-shaped execution."""
    return _run_gep(table, base_n, rule, False, layout, record,
                    f"gep-inplace-n{table.shape[0]}")


def gep_scan(
    table: np.ndarray,
    rule: UpdateRule = _minplus,
    base_n: int = 2,
    layout: str = "morton",
    record: bool = True,
) -> GEPRun:
    """Staged-commit GEP with a merging scan per level — (8,4,1)-shaped."""
    return _run_gep(table, base_n, rule, True, layout, record,
                    f"gep-scan-n{table.shape[0]}")


def floyd_warshall(
    dist: np.ndarray,
    base_n: int = 2,
    layout: str = "morton",
    record: bool = True,
    scan: bool = False,
) -> GEPRun:
    """All-pairs shortest paths via the GEP recursion (min-plus rule).

    ``dist`` is the adjacency/distance matrix (use ``np.inf`` for missing
    edges, 0 on the diagonal); dimension must be a power of two.
    """
    fn = gep_scan if scan else gep_inplace
    return fn(dist, rule=_minplus, base_n=base_n, layout=layout, record=record)


def floyd_warshall_reference(dist: np.ndarray) -> np.ndarray:
    """Textbook triple-loop Floyd–Warshall, for verification."""
    d = np.array(dist, dtype=np.float64)
    n = d.shape[0]
    for k in range(n):
        d = np.minimum(d, d[:, k : k + 1] + d[k : k + 1, :])
    return d
