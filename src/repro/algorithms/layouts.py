"""Memory layouts mapping matrix coordinates to linear word addresses.

Cache-oblivious algorithms earn their locality from the data layout as
much as the recursion: the canonical choice for divide-and-conquer matrix
algorithms is the bit-interleaved *Morton (Z-order)* layout, under which
every recursive quadrant occupies a contiguous address range.  Row-major
is provided as the realistic baseline (what a naive implementation uses).

Addresses are in words; the trace machinery divides by the block size
``B`` to get block addresses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.util.intmath import is_power_of

__all__ = ["Layout", "RowMajor", "Morton", "get_layout"]


class Layout:
    """Maps ``(row, col)`` coordinates of an ``n x n`` matrix to word
    offsets in ``[0, n*n)``."""

    name = "abstract"

    def __init__(self, n: int):
        if n < 1:
            raise TraceError(f"matrix dimension must be >= 1, got {n}")
        self.n = n

    def address(self, row: int, col: int) -> int:
        raise NotImplementedError

    def addresses(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Vectorized version of :meth:`address`."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n})"


class RowMajor(Layout):
    """Standard row-major layout: ``addr = row * n + col``."""

    name = "row-major"

    def address(self, row: int, col: int) -> int:
        return row * self.n + col

    def addresses(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        return rows.astype(np.int64) * self.n + cols.astype(np.int64)


def _interleave_bits(x: np.ndarray) -> np.ndarray:
    """Spread the bits of 32-bit ints so bit i moves to position 2i."""
    x = x.astype(np.uint64)
    x = (x | (x << 16)) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x << 8)) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x << 4)) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << 2)) & np.uint64(0x3333333333333333)
    x = (x | (x << 1)) & np.uint64(0x5555555555555555)
    return x


class Morton(Layout):
    """Bit-interleaved Z-order layout for power-of-two ``n``.

    Quadrants of every recursive level are contiguous: the quadrant of an
    ``m x m`` submatrix aligned to the recursion occupies ``m*m``
    consecutive addresses — the layout that makes MM-SCAN's subproblems
    genuinely touch ``Θ(m²/B)`` blocks.
    """

    name = "morton"

    def __init__(self, n: int):
        super().__init__(n)
        if not is_power_of(n, 2):
            raise TraceError(f"Morton layout requires power-of-two n, got {n}")

    def address(self, row: int, col: int) -> int:
        r = _interleave_bits(np.asarray([row]))[0]
        c = _interleave_bits(np.asarray([col]))[0]
        return int((r << np.uint64(1)) | c)

    def addresses(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        r = _interleave_bits(np.asarray(rows))
        c = _interleave_bits(np.asarray(cols))
        return (((r << np.uint64(1)) | c)).astype(np.int64)


_LAYOUTS = {"row-major": RowMajor, "morton": Morton}


def get_layout(name: str, n: int) -> Layout:
    """Construct a layout by name (``"row-major"`` or ``"morton"``)."""
    try:
        cls = _LAYOUTS[name]
    except KeyError:
        raise TraceError(f"unknown layout {name!r}; known: {sorted(_LAYOUTS)}")
    return cls(n)
