"""Cache-oblivious longest common subsequence — the ``a = b`` regime.

The recursive LCS algorithm of Chowdhury–Ramachandran evaluates the
``n x n`` DP table by quadrants, passing boundary rows/columns between
them: four subproblems of a quarter of the table plus linear boundary
scans, i.e. ``T(N) = 4 T(N/4) + Θ(N/B)`` on ``N = n²`` table entries —
the ``(4, 4, 1)`` shape.  With ``a = b`` this sits in the paper's
*degenerate* regime (footnote 3): no algorithm with this recurrence can be
optimally cache-adaptive, because it is already ``Θ(log(M/B))`` from
optimal in the DAM.  The library includes it precisely to demonstrate that
regime empirically.

:func:`lcs_length` computes the true LCS length (verified against the
classic quadratic DP in the tests) and records the block trace: each
quadrant subproblem is a recursive call; the boundary hand-offs are the
scans; leaves are small DP tiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.algorithms.traces import Trace, TraceRecorder
from repro.util.intmath import is_power_of

__all__ = ["LCSRun", "lcs_length", "lcs_reference"]


@dataclass(frozen=True)
class LCSRun:
    """Result of an instrumented LCS computation."""

    length: int
    trace: Trace | None


def _tile_dp(
    x: np.ndarray,
    y: np.ndarray,
    top: np.ndarray,
    left: np.ndarray,
    corner: float,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Evaluate one DP tile given its incoming boundary.

    ``top`` has len(y)+... shape (len(y),): DP values of the row above the
    tile; ``left`` (len(x),): values of the column left of the tile;
    ``corner``: the value diagonal to the tile's first cell.  Returns the
    tile's bottom row, right column, and its bottom-right corner's
    diagonal predecessor for the next tile (= last of bottom row).
    """
    m, n = len(x), len(y)
    prev = np.empty(n + 1, dtype=np.int64)
    prev[0] = corner
    prev[1:] = top
    out_right = np.empty(m, dtype=np.int64)
    cur = np.empty(n + 1, dtype=np.int64)
    for i in range(m):
        cur[0] = left[i]
        for j in range(n):
            if x[i] == y[j]:
                cur[j + 1] = prev[j] + 1
            else:
                cur[j + 1] = max(prev[j + 1], cur[j])
        out_right[i] = cur[n]
        prev, cur = cur, prev
    return prev[1:].copy(), out_right, float(prev[n])


def lcs_length(
    x: "np.ndarray | str | list",
    y: "np.ndarray | str | list",
    base_n: int = 4,
    block_size: int = 1,
    record: bool = True,
) -> LCSRun:
    """LCS length of two equal-length sequences via quadrant recursion.

    Sequence length must be a power of two and ``>= base_n``.  The DP
    table is never materialized: only ``O(n)`` boundaries flow between
    quadrants, exactly as in the linear-space cache-oblivious algorithm.
    """
    xa = np.asarray([ord(ch) for ch in x] if isinstance(x, str) else x)
    ya = np.asarray([ord(ch) for ch in y] if isinstance(y, str) else y)
    if xa.ndim != 1 or ya.ndim != 1 or xa.size != ya.size:
        raise TraceError("sequences must be 1-D and of equal length")
    n = int(xa.size)
    if not is_power_of(n, 2):
        raise TraceError(f"sequence length must be a power of two, got {n}")
    if not is_power_of(base_n, 2) or base_n < 1 or base_n > n:
        raise TraceError(f"invalid base_n={base_n} for n={n}")
    rec = TraceRecorder(block_size=block_size, label=f"lcs-n{n}") if record else None

    # Global word address space: x at [0, n), y at [n, 2n), boundary
    # buffers at [2n, ...) addressed by table coordinates (row buffer at
    # 2n + col, column buffer at 3n + row).
    X_BASE, Y_BASE, ROW_BASE, COL_BASE = 0, n, 2 * n, 3 * n

    def touch_range(base: int, lo: int, hi: int) -> None:
        if rec is not None and hi > lo:
            rec.touch_words(np.arange(base + lo, base + hi, dtype=np.int64))

    def solve(ri: int, cj: int, size: int, top: np.ndarray, left: np.ndarray,
              corner: float) -> tuple[np.ndarray, np.ndarray, float]:
        """Solve the size x size tile at table offset (ri, cj)."""
        if size <= base_n:
            if rec is not None:
                rec.begin_leaf()
            touch_range(X_BASE, ri, ri + size)
            touch_range(Y_BASE, cj, cj + size)
            touch_range(ROW_BASE, cj, cj + size)
            touch_range(COL_BASE, ri, ri + size)
            result = _tile_dp(xa[ri : ri + size], ya[cj : cj + size], top, left, corner)
            if rec is not None:
                rec.end_leaf()
            return result
        h = size // 2
        # Boundary hand-off scans between quadrants: each transfers Θ(size)
        # words of row/column boundary.
        touch_range(ROW_BASE, cj, cj + size)
        touch_range(COL_BASE, ri, ri + size)
        # NW
        nw_bot, nw_right, nw_diag = solve(ri, cj, h, top[:h], left[:h], corner)
        # NE: top from top[h:], left from NW's right column
        ne_bot, ne_right, _ = solve(ri, cj + h, h, top[h:], nw_right, float(top[h - 1]))
        # SW: top from NW's bottom row, left from left[h:]
        sw_bot, sw_right, _ = solve(ri + h, cj, h, nw_bot, left[h:], float(left[h - 1]))
        # SE: top from NE's bottom, left from SW's right, corner from NW
        se_bot, se_right, _ = solve(ri + h, cj + h, h, ne_bot, sw_right, nw_diag)
        bottom = np.concatenate([sw_bot, se_bot])
        right = np.concatenate([ne_right, se_right])
        return bottom, right, float(bottom[-1])

    top0 = np.zeros(n, dtype=np.int64)
    left0 = np.zeros(n, dtype=np.int64)
    bottom, _, _ = solve(0, 0, n, top0, left0, 0.0)
    run_trace = rec.build() if rec else None
    return LCSRun(int(bottom[-1]), run_trace)


def lcs_reference(x, y) -> int:
    """Classic O(n·m) DP, for verification."""
    xa = [ord(ch) for ch in x] if isinstance(x, str) else list(x)
    ya = [ord(ch) for ch in y] if isinstance(y, str) else list(y)
    prev = [0] * (len(ya) + 1)
    for xi in xa:
        cur = [0]
        for j, yj in enumerate(ya):
            cur.append(prev[j] + 1 if xi == yj else max(prev[j + 1], cur[j]))
        prev = cur
    return prev[-1]
