"""Named ``(a,b,c)``-regular algorithm specifications from the paper.

Sizes are in *blocks* with ``B = 1`` (Section 4's simplification), so a
matrix-multiply problem "of size N words" is a problem of ``N`` blocks.

====================  ===========  =====================================
spec                  (a, b, c)    role in the paper
====================  ===========  =====================================
``MM_SCAN``           (8, 4, 1)    canonical non-adaptive algorithm (§3)
``MM_INPLACE``        (8, 4, 0)    adaptive sibling of MM-SCAN (§3)
``STRASSEN``          (7, 4, 1)    sub-cubic MM, in the gap regime (§6)
``GEP``               (8, 4, 1)    Gaussian elimination paradigm / DP
``FLOYD_WARSHALL``    (8, 4, 1)    APSP kernel (GEP instance)
``LCS``               (4, 4, 1)    a = b degenerate regime (footnote 3)
``MERGE_SORT``        (2, 2, 1)    a = b degenerate regime (footnote 3)
``BINARY_ADAPTIVE``   (2, 4, 1)    a < b: trivially adaptive at c = 1
``SQRT_SCAN``         (8, 4, 1/2)  c < 1: adaptive by Theorem 2
====================  ===========  =====================================
"""

from __future__ import annotations

from repro.algorithms.spec import RegularSpec, ScanPlacement

__all__ = [
    "MM_SCAN",
    "MM_INPLACE",
    "STRASSEN",
    "GEP",
    "FLOYD_WARSHALL",
    "LCS",
    "MERGE_SORT",
    "BINARY_ADAPTIVE",
    "SQRT_SCAN",
    "NAMED_SPECS",
    "get_spec",
]

#: Divide-and-conquer matrix multiply that merges the eight sub-results
#: with a linear scan: ``T(N) = 8 T(N/4) + Θ(N/B)``.
MM_SCAN = RegularSpec(8, 4, 1.0, name="MM-SCAN")

#: Matrix multiply accumulating directly into the output quadrants —
#: no merging scan, ``(8, 4, 0)``-regular and optimally cache-adaptive.
MM_INPLACE = RegularSpec(8, 4, 0.0, name="MM-INPLACE")

#: Strassen's algorithm: seven recursive products of quarter-size
#: subproblems plus linear-scan additions: ``T(N) = 7 T(N/4) + Θ(N/B)``.
STRASSEN = RegularSpec(7, 4, 1.0, name="STRASSEN")

#: The Gaussian elimination paradigm (Chowdhury–Ramachandran): triply
#: nested DP updates over an n×n table (N = n² words):
#: ``T(N) = 8 T(N/4) + Θ(N/B)``.
GEP = RegularSpec(8, 4, 1.0, name="GEP")

#: Floyd–Warshall APSP is a GEP instance with the same recurrence.
FLOYD_WARSHALL = RegularSpec(8, 4, 1.0, name="FLOYD-WARSHALL")

#: Cache-oblivious LCS on an n×n DP table: four quadrant subproblems of a
#: quarter of the table: ``T(N) = 4 T(N/4) + Θ(N/B)`` — the ``a = b``
#: regime in which no algorithm can be optimally cache-adaptive.
LCS = RegularSpec(4, 4, 1.0, name="LCS")

#: Two-way merge sort: ``T(N) = 2 T(N/2) + Θ(N/B)`` — also ``a = b``.
MERGE_SORT = RegularSpec(2, 2, 1.0, name="MERGE-SORT")

#: An ``a < b`` shape (e.g. prune-and-search style): trivially adaptive
#: even at c = 1 because the scans dominate and are memory-insensitive.
BINARY_ADAPTIVE = RegularSpec(2, 4, 1.0, name="BINARY-ADAPTIVE")

#: A c < 1 shape: the scans are too small for the adversary to waste
#: resources on (Theorem 2's adaptive case).
SQRT_SCAN = RegularSpec(8, 4, 0.5, name="SQRT-SCAN")

NAMED_SPECS: dict[str, RegularSpec] = {
    s.name: s
    for s in (
        MM_SCAN,
        MM_INPLACE,
        STRASSEN,
        GEP,
        FLOYD_WARSHALL,
        LCS,
        MERGE_SORT,
        BINARY_ADAPTIVE,
        SQRT_SCAN,
    )
}


def get_spec(name: str) -> RegularSpec:
    """Look up a named spec (case-insensitive)."""
    key = name.upper()
    for spec_name, spec in NAMED_SPECS.items():
        if spec_name.upper() == key:
            return spec
    from repro.errors import SpecError

    raise SpecError(
        f"unknown spec {name!r}; known: {sorted(NAMED_SPECS)}"
    )
