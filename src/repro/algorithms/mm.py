"""Real divide-and-conquer matrix multiplication with trace recording.

Three kernels from the paper:

* :func:`mm_scan` — the canonical non-adaptive ``(8,4,1)``-regular
  algorithm of Section 3: each level computes eight half-size products
  (four into the output, four into a temporary) and merges with a linear
  scan ``C += T``;
* :func:`mm_inplace` — the adaptive ``(8,4,0)`` sibling: the eight
  products accumulate directly into the output quadrants, no merge scan;
* :func:`strassen` — Strassen's ``(7,4,1)``-regular algorithm, whose
  additions are the linear scans.

Every kernel both computes the true product (verified against numpy in
the tests) and, when given a :class:`~repro.algorithms.traces.TraceRecorder`,
emits the word-accurate reference trace of the DAM-level execution: base
cases touch the words of their three operand tiles; scans sweep their
operand regions.  Temporaries use a stack allocator so sibling calls reuse
addresses, as a real implementation would.

Matrices live in a single global address space: ``A``, ``B``, ``C`` and
the temporary stack each get a contiguous segment, with coordinates mapped
through a configurable layout (Morton by default — the layout that makes
the recursion genuinely cache-oblivious).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.algorithms.layouts import Layout, get_layout
from repro.algorithms.traces import Trace, TraceRecorder
from repro.util.intmath import is_power_of

__all__ = ["MMRun", "mm_scan", "mm_inplace", "strassen", "mm_scan_trace_adversary"]


@dataclass
class _Region:
    """A square view into a matrix plus its global addressing info."""

    data: np.ndarray  # full backing matrix
    r0: int
    c0: int
    size: int
    base_addr: int  # global word address of the backing matrix
    layout: Layout

    def view(self) -> np.ndarray:
        return self.data[self.r0 : self.r0 + self.size, self.c0 : self.c0 + self.size]

    def quad(self, qi: int, qj: int) -> "_Region":
        h = self.size // 2
        return _Region(
            self.data, self.r0 + qi * h, self.c0 + qj * h, h, self.base_addr, self.layout
        )

    def word_addresses(self) -> np.ndarray:
        rows, cols = np.meshgrid(
            np.arange(self.r0, self.r0 + self.size),
            np.arange(self.c0, self.c0 + self.size),
            indexing="ij",
        )
        addrs = self.layout.addresses(rows.ravel(), cols.ravel())
        return addrs + self.base_addr


class _Scratch:
    """Stack allocator of temporary matrices in the global address space."""

    def __init__(self, layout_name: str, base_addr: int):
        self.layout_name = layout_name
        self.base_addr = base_addr
        self.offset = 0

    def alloc(self, size: int) -> _Region:
        data = np.zeros((size, size), dtype=np.float64)
        region = _Region(
            data, 0, 0, size, self.base_addr + self.offset,
            get_layout(self.layout_name, size),
        )
        self.offset += size * size
        return region

    def free(self, region: _Region) -> None:
        self.offset -= region.size * region.size
        if self.offset < 0:
            raise TraceError("scratch stack underflow")


@dataclass(frozen=True)
class MMRun:
    """Result of an instrumented multiply: the product and its trace."""

    product: np.ndarray
    trace: Trace | None


def _touch_region(rec: TraceRecorder | None, region: _Region) -> None:
    if rec is not None:
        rec.touch_words(region.word_addresses())


def _base_multiply(
    rec: TraceRecorder | None, a: _Region, b: _Region, c: _Region, accumulate: bool
) -> None:
    """Base case: ``c (+)= a @ b`` on tiles small enough for cache."""
    if rec is not None:
        rec.begin_leaf()
    _touch_region(rec, a)
    _touch_region(rec, b)
    _touch_region(rec, c)
    if accumulate:
        c.view()[...] += a.view() @ b.view()
    else:
        c.view()[...] = a.view() @ b.view()
    if rec is not None:
        rec.end_leaf()


def _scan_add(rec: TraceRecorder | None, dst: _Region, src: _Region) -> None:
    """The merging linear scan: ``dst += src`` over both regions."""
    _touch_region(rec, src)
    _touch_region(rec, dst)
    dst.view()[...] += src.view()


def _check_square(a: np.ndarray, b: np.ndarray, base_n: int) -> int:
    if a.ndim != 2 or b.ndim != 2 or a.shape != b.shape or a.shape[0] != a.shape[1]:
        raise TraceError("operands must be equal square matrices")
    n = a.shape[0]
    if not is_power_of(n, 2):
        raise TraceError(f"matrix dimension must be a power of two, got {n}")
    if not is_power_of(base_n, 2) or base_n < 1:
        raise TraceError(f"base_n must be a power of two >= 1, got {base_n}")
    if base_n > n:
        raise TraceError(f"base_n={base_n} exceeds matrix dimension {n}")
    return n


def _setup(
    a: np.ndarray,
    b: np.ndarray,
    n: int,
    layout: str,
    record: bool,
    label: str,
    block_size: int,
) -> tuple[_Region, _Region, _Region, _Scratch, TraceRecorder | None]:
    lay = get_layout(layout, n)
    words = n * n
    ra = _Region(np.array(a, dtype=np.float64), 0, 0, n, 0, lay)
    rb = _Region(np.array(b, dtype=np.float64), 0, 0, n, words, lay)
    rc = _Region(np.zeros((n, n), dtype=np.float64), 0, 0, n, 2 * words, lay)
    scratch = _Scratch(layout, 3 * words)
    rec = TraceRecorder(block_size=block_size, label=label) if record else None
    return ra, rb, rc, scratch, rec


# ---------------------------------------------------------------------------
# MM-SCAN
# ---------------------------------------------------------------------------


def _mm_scan_rec(
    rec: TraceRecorder | None,
    scratch: _Scratch,
    a: _Region,
    b: _Region,
    c: _Region,
    base_n: int,
) -> None:
    if a.size <= base_n:
        _base_multiply(rec, a, b, c, accumulate=False)
        return
    t = scratch.alloc(a.size)
    # Eight half-size products: four into C's quadrants, four into T's.
    for qi in (0, 1):
        for qj in (0, 1):
            _mm_scan_rec(rec, scratch, a.quad(qi, 0), b.quad(0, qj), c.quad(qi, qj), base_n)
            _mm_scan_rec(rec, scratch, a.quad(qi, 1), b.quad(1, qj), t.quad(qi, qj), base_n)
    # The merging linear scan of size Θ(N): C += T.
    _scan_add(rec, c, t)
    scratch.free(t)


def mm_scan(
    a: np.ndarray,
    b: np.ndarray,
    base_n: int = 2,
    layout: str = "morton",
    record: bool = True,
    block_size: int = 1,
) -> MMRun:
    """Multiply ``a @ b`` with the (8,4,1)-regular MM-SCAN algorithm."""
    n = _check_square(a, b, base_n)
    ra, rb, rc, scratch, rec = _setup(a, b, n, layout, record, f"mm-scan-n{n}", block_size)
    _mm_scan_rec(rec, scratch, ra, rb, rc, base_n)
    return MMRun(rc.data, rec.build() if rec else None)


# ---------------------------------------------------------------------------
# MM-INPLACE
# ---------------------------------------------------------------------------


def _mm_inplace_rec(
    rec: TraceRecorder | None,
    a: _Region,
    b: _Region,
    c: _Region,
    base_n: int,
) -> None:
    if a.size <= base_n:
        _base_multiply(rec, a, b, c, accumulate=True)
        return
    # Eight half-size products accumulated directly into C: no scan.
    for qi in (0, 1):
        for qj in (0, 1):
            for k in (0, 1):
                _mm_inplace_rec(rec, a.quad(qi, k), b.quad(k, qj), c.quad(qi, qj), base_n)


def mm_inplace(
    a: np.ndarray,
    b: np.ndarray,
    base_n: int = 2,
    layout: str = "morton",
    record: bool = True,
    block_size: int = 1,
) -> MMRun:
    """Multiply ``a @ b`` with the (8,4,0)-regular MM-INPLACE algorithm."""
    n = _check_square(a, b, base_n)
    ra, rb, rc, _, rec = _setup(a, b, n, layout, record, f"mm-inplace-n{n}", block_size)
    _mm_inplace_rec(rec, ra, rb, rc, base_n)
    return MMRun(rc.data, rec.build() if rec else None)


# ---------------------------------------------------------------------------
# Strassen
# ---------------------------------------------------------------------------


def _scan_combine(
    rec: TraceRecorder | None, dst: _Region, srcs: list[tuple[float, _Region]]
) -> None:
    """Linear scan computing ``dst = sum coeff * src`` over the regions."""
    for _, s in srcs:
        _touch_region(rec, s)
    _touch_region(rec, dst)
    acc = np.zeros((dst.size, dst.size), dtype=np.float64)
    for coeff, s in srcs:
        acc += coeff * s.view()
    dst.view()[...] = acc


def _strassen_rec(
    rec: TraceRecorder | None,
    scratch: _Scratch,
    a: _Region,
    b: _Region,
    c: _Region,
    base_n: int,
) -> None:
    if a.size <= base_n:
        _base_multiply(rec, a, b, c, accumulate=False)
        return
    h = a.size // 2
    a11, a12, a21, a22 = a.quad(0, 0), a.quad(0, 1), a.quad(1, 0), a.quad(1, 1)
    b11, b12, b21, b22 = b.quad(0, 0), b.quad(0, 1), b.quad(1, 0), b.quad(1, 1)

    s = scratch.alloc(h)  # left operand temp
    t = scratch.alloc(h)  # right operand temp
    m = [scratch.alloc(h) for _ in range(7)]  # the seven products

    def product(idx, left_terms, right_terms):
        if len(left_terms) == 1 and left_terms[0][0] == 1.0:
            left = left_terms[0][1]
        else:
            _scan_combine(rec, s, left_terms)
            left = s
        if len(right_terms) == 1 and right_terms[0][0] == 1.0:
            right = right_terms[0][1]
        else:
            _scan_combine(rec, t, right_terms)
            right = t
        _strassen_rec(rec, scratch, left, right, m[idx], base_n)

    product(0, [(1.0, a11), (1.0, a22)], [(1.0, b11), (1.0, b22)])  # M1
    product(1, [(1.0, a21), (1.0, a22)], [(1.0, b11)])              # M2
    product(2, [(1.0, a11)], [(1.0, b12), (-1.0, b22)])             # M3
    product(3, [(1.0, a22)], [(1.0, b21), (-1.0, b11)])             # M4
    product(4, [(1.0, a11), (1.0, a12)], [(1.0, b22)])              # M5
    product(5, [(1.0, a21), (-1.0, a11)], [(1.0, b11), (1.0, b12)]) # M6
    product(6, [(1.0, a12), (-1.0, a22)], [(1.0, b21), (1.0, b22)]) # M7

    _scan_combine(rec, c.quad(0, 0), [(1.0, m[0]), (1.0, m[3]), (-1.0, m[4]), (1.0, m[6])])
    _scan_combine(rec, c.quad(0, 1), [(1.0, m[2]), (1.0, m[4])])
    _scan_combine(rec, c.quad(1, 0), [(1.0, m[1]), (1.0, m[3])])
    _scan_combine(rec, c.quad(1, 1), [(1.0, m[0]), (-1.0, m[1]), (1.0, m[2]), (1.0, m[5])])

    for region in reversed(m):
        scratch.free(region)
    scratch.free(t)
    scratch.free(s)


def strassen(
    a: np.ndarray,
    b: np.ndarray,
    base_n: int = 2,
    layout: str = "morton",
    record: bool = True,
    block_size: int = 1,
) -> MMRun:
    """Multiply ``a @ b`` with Strassen's (7,4,1)-regular algorithm."""
    n = _check_square(a, b, base_n)
    ra, rb, rc, scratch, rec = _setup(a, b, n, layout, record, f"strassen-n{n}", block_size)
    _strassen_rec(rec, scratch, ra, rb, rc, base_n)
    return MMRun(rc.data, rec.build() if rec else None)


# ---------------------------------------------------------------------------
# Trace-matched adversary
# ---------------------------------------------------------------------------


def mm_scan_trace_adversary(dim: int, base_n: int = 2, block_size: int = 1):
    """The Section-3 worst-case profile matched to a *real* MM-SCAN trace.

    The abstract profile ``M_{8,4}(n)`` assumes unit-constant geometry; a
    genuine ``dim x dim`` MM-SCAN execution has concrete working sets —
    a base-case multiply of ``base_n x base_n`` tiles touches
    ``3 * base_n**2`` words (its A, B, C tiles) and the merging scan at
    recursion dimension ``d`` touches ``2 * d**2`` words (the C and T
    regions).  This builder emits boxes sized to exactly those working
    sets (in blocks of ``block_size``), recursively in the same order as
    the execution, so that on the square-profile trace machine every box
    is exhausted by exactly one phase of the real algorithm — the literal
    "memory does the wrong thing at every step" adversary.

    Returns a :class:`~repro.profiles.square.SquareProfile`.
    """
    from repro.profiles.square import SquareProfile

    if not is_power_of(dim, 2) or not is_power_of(base_n, 2):
        raise TraceError("dim and base_n must be powers of two")
    if base_n > dim:
        raise TraceError(f"base_n={base_n} exceeds dim={dim}")

    def blocks_for(words: int) -> int:
        return max(1, -(-words // block_size))

    boxes: list[int] = []

    def rec(d: int) -> None:
        if d <= base_n:
            boxes.append(blocks_for(3 * d * d))
            return
        for _ in range(8):
            rec(d // 2)
        boxes.append(blocks_for(2 * d * d))

    rec(dim)
    return SquareProfile(np.asarray(boxes, dtype=np.int64))
