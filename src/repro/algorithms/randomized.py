"""Randomized ``(a,b,c)``-regular algorithms — the paper's open question.

The conclusion asks: *"Could randomized algorithms also overcome
worst-case profiles and result in cache-adaptivity?"*  Definition 2 lets
an algorithm run parts of its scan before, between, and after the
recursive calls; a natural randomization is to let each node decide *at
runtime, randomly* where its scan goes.  The worst-case profile is built
against one fixed placement (canonically, trailing scans), so a random
placement breaks the adversary's alignment at every node — but the
No-Catch-up machinery suggests the profile may re-synchronize anyway.
The ``randomized`` experiment measures which intuition wins.

This module provides scan-placement randomizers to plug into
:class:`~repro.algorithms.cursor.ExecutionCursor` (and through
:class:`~repro.simulation.symbolic.SymbolicSimulator`'s
``scan_randomizer`` argument):

* :func:`random_slot_placement` — the whole scan runs after a uniformly
  random one of the ``a + 1`` slots around the children;
* :func:`random_split_placement` — the scan is split multinomially
  across all ``a + 1`` slots;
* :func:`coin_flip_placement` — front or back, by a fair coin (the
  smallest possible randomization).

Each factory returns an **addressable** placement when given a seed or a
:class:`~repro.util.rng.ReplayableStream`: node placements are drawn by
the node's *preorder index* in the recursion tree, not by consumption
order, so the cursor's chunked closed forms can skip whole sibling
subtrees without desynchronizing the randomness, and ``reset()`` replays
the exact same randomized execution for free.  Passing an existing
``numpy.random.Generator`` keeps the legacy positional behaviour (one
draw per first-entry, scalar path only).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SpecError
from repro.algorithms.spec import RegularSpec
from repro.util.rng import ReplayableStream, as_generator

__all__ = [
    "ScanRandomizer",
    "AddressablePlacement",
    "random_slot_placement",
    "random_split_placement",
    "coin_flip_placement",
]

# Maps a node size to the a+1 scan-piece lengths for that node.  The
# addressable variant is called with the node's preorder index as well;
# the cursor dispatches on the `addressable` attribute.
ScanRandomizer = Callable[[int], "list[int]"]


class AddressablePlacement:
    """A scan randomizer whose draws are addressed by node index.

    ``__call__(size, node_index)`` returns the ``a + 1`` scan-piece
    lengths for the node at preorder index ``node_index``, as a pure
    function of ``(stream, node_index)``.  The three kinds:

    * ``"slot"`` — the whole scan in one uniformly random slot;
    * ``"split"`` — multinomial split over all ``a + 1`` slots;
    * ``"coin"`` — all-front or all-back by a fair coin.

    Two cursors (or the same cursor after ``reset()``) holding the same
    placement lay out every node identically, whatever order — or
    whether — each node is visited.
    """

    addressable = True

    _KINDS = ("slot", "split", "coin")

    def __init__(self, spec: RegularSpec, stream: ReplayableStream, kind: str):
        if kind not in self._KINDS:
            raise SpecError(f"kind must be one of {self._KINDS}, got {kind!r}")
        _check(spec)
        self.spec = spec
        self.stream = stream.substream(f"scan-{kind}")
        self.kind = kind
        self._slots = spec.a + 1
        if kind == "split":
            self._probs = np.full(self._slots, 1.0 / self._slots)

    def __call__(self, size: int, node_index: int = 0) -> list[int]:
        length = self.spec.scan_length(size)
        out = [0] * self._slots
        if length == 0:
            return out
        if self.kind == "slot":
            out[self.stream.integers_at(node_index, 0, self._slots)] = length
        elif self.kind == "coin":
            heads = self.stream.uniform_at(node_index) < 0.5
            out[0 if heads else self._slots - 1] = length
        else:  # split: a structured draw — use the per-index generator
            gen = self.stream.generator_at(node_index)
            out = [int(x) for x in gen.multinomial(length, self._probs)]
        return out

    def __repr__(self) -> str:
        return (
            f"AddressablePlacement(kind={self.kind!r}, spec={self.spec.name}, "
            f"stream={self.stream})"
        )


def _check(spec: RegularSpec) -> None:
    if float(spec.c) == 0.0:
        raise SpecError(
            f"{spec.name} has no scans (c = 0); nothing to randomize"
        )


def _as_stream(rng: object) -> "ReplayableStream | None":
    """Addressable routing: streams pass through, ints/None become root
    streams, Generators signal the legacy positional path (None here)."""
    if isinstance(rng, ReplayableStream):
        return rng
    if rng is None:
        return ReplayableStream(0)
    if isinstance(rng, (int, np.integer)):
        return ReplayableStream(int(rng))
    return None


def random_slot_placement(spec: RegularSpec, rng: object = None) -> ScanRandomizer:
    """Each node's whole scan runs in one uniformly random slot
    (before child 0, between children i and i+1, or after child a-1)."""
    stream = _as_stream(rng)
    if stream is not None:
        return AddressablePlacement(spec, stream, "slot")
    _check(spec)
    gen = as_generator(rng)
    slots = spec.a + 1

    def pieces(size: int) -> list[int]:
        out = [0] * slots
        out[int(gen.integers(0, slots))] = spec.scan_length(size)
        return out

    return pieces


def random_split_placement(spec: RegularSpec, rng: object = None) -> ScanRandomizer:
    """Each node's scan is split uniformly-multinomially across all
    ``a + 1`` slots (every scan access lands in an independent slot)."""
    stream = _as_stream(rng)
    if stream is not None:
        return AddressablePlacement(spec, stream, "split")
    _check(spec)
    gen = as_generator(rng)
    slots = spec.a + 1
    probs = np.full(slots, 1.0 / slots)

    def pieces(size: int) -> list[int]:
        length = spec.scan_length(size)
        if length == 0:
            return [0] * slots
        return [int(x) for x in gen.multinomial(length, probs)]

    return pieces


def coin_flip_placement(spec: RegularSpec, rng: object = None) -> ScanRandomizer:
    """Each node flips a fair coin: scan entirely first or entirely last."""
    stream = _as_stream(rng)
    if stream is not None:
        return AddressablePlacement(spec, stream, "coin")
    _check(spec)
    gen = as_generator(rng)
    slots = spec.a + 1

    def pieces(size: int) -> list[int]:
        out = [0] * slots
        idx = 0 if gen.random() < 0.5 else slots - 1
        out[idx] = spec.scan_length(size)
        return out

    return pieces
