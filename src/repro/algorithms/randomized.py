"""Randomized ``(a,b,c)``-regular algorithms — the paper's open question.

The conclusion asks: *"Could randomized algorithms also overcome
worst-case profiles and result in cache-adaptivity?"*  Definition 2 lets
an algorithm run parts of its scan before, between, and after the
recursive calls; a natural randomization is to let each node decide *at
runtime, randomly* where its scan goes.  The worst-case profile is built
against one fixed placement (canonically, trailing scans), so a random
placement breaks the adversary's alignment at every node — but the
No-Catch-up machinery suggests the profile may re-synchronize anyway.
The ``randomized`` experiment measures which intuition wins.

This module provides scan-placement randomizers to plug into
:class:`~repro.algorithms.cursor.ExecutionCursor` (and through
:class:`~repro.simulation.symbolic.SymbolicSimulator`'s
``scan_randomizer`` argument):

* :func:`random_slot_placement` — the whole scan runs after a uniformly
  random one of the ``a + 1`` slots around the children;
* :func:`random_split_placement` — the scan is split multinomially
  across all ``a + 1`` slots;
* :func:`coin_flip_placement` — front or back, by a fair coin (the
  smallest possible randomization).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SpecError
from repro.algorithms.spec import RegularSpec
from repro.util.rng import as_generator

__all__ = [
    "ScanRandomizer",
    "random_slot_placement",
    "random_split_placement",
    "coin_flip_placement",
]

# Maps a node size to the a+1 scan-piece lengths for that node.
ScanRandomizer = Callable[[int], "list[int]"]


def _check(spec: RegularSpec) -> None:
    if float(spec.c) == 0.0:
        raise SpecError(
            f"{spec.name} has no scans (c = 0); nothing to randomize"
        )


def random_slot_placement(spec: RegularSpec, rng: object = None) -> ScanRandomizer:
    """Each node's whole scan runs in one uniformly random slot
    (before child 0, between children i and i+1, or after child a-1)."""
    _check(spec)
    gen = as_generator(rng)
    slots = spec.a + 1

    def pieces(size: int) -> list[int]:
        out = [0] * slots
        out[int(gen.integers(0, slots))] = spec.scan_length(size)
        return out

    return pieces


def random_split_placement(spec: RegularSpec, rng: object = None) -> ScanRandomizer:
    """Each node's scan is split uniformly-multinomially across all
    ``a + 1`` slots (every scan access lands in an independent slot)."""
    _check(spec)
    gen = as_generator(rng)
    slots = spec.a + 1
    probs = np.full(slots, 1.0 / slots)

    def pieces(size: int) -> list[int]:
        length = spec.scan_length(size)
        if length == 0:
            return [0] * slots
        return [int(x) for x in gen.multinomial(length, probs)]

    return pieces


def coin_flip_placement(spec: RegularSpec, rng: object = None) -> ScanRandomizer:
    """Each node flips a fair coin: scan entirely first or entirely last."""
    _check(spec)
    gen = as_generator(rng)
    slots = spec.a + 1

    def pieces(size: int) -> list[int]:
        out = [0] * slots
        idx = 0 if gen.random() < 0.5 else slots - 1
        out[idx] = spec.scan_length(size)
        return out

    return pieces
