"""Scan-hiding (Lincoln, Liu, Lynch, Xu — SPAA 2018), the prior technique
the paper positions itself against.

Scan-hiding rewrites certain non-adaptive ``(a, b, 1)``-regular algorithms
(``a > b``) so that each node's linear scan is interleaved with the
recursive computation instead of running as one long memory-insensitive
phase.  After the rewrite the adversary of Section 3 has no scan phase to
exploit, and the algorithm becomes worst-case cache-adaptive — at the cost
of extra bookkeeping overhead, and only for algorithms whose scans can be
decomposed (the paper notes it "introduces too much overhead and also does
not apply to all" such algorithms).

At the symbolic level of this library, the *effect* of scan-hiding is that
scans stop being separable events: the hidden scan work rides along with
the base cases.  :func:`transform` therefore produces a spec with ``c = 0``
(no scan events), and :func:`overhead_factor` reports exactly how much
hidden work each leaf absorbs, so experiments can show both sides of the
trade-off (adaptive ratio vs. inflated constant).
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import SpecError
from repro.algorithms.spec import RegularSpec

__all__ = ["transform", "overhead_factor", "hidden_work_per_leaf"]


def transform(spec: RegularSpec) -> RegularSpec:
    """Scan-hidden version of ``spec``.

    Only meaningful (and only allowed) in the gap regime ``a > b, c = 1``;
    adaptive or degenerate specs are rejected since the transformation
    would be pointless or impossible.
    """
    if spec.regime != "gap":
        raise SpecError(
            f"scan-hiding applies to the gap regime (a > b, c = 1); "
            f"{spec.name} is in regime {spec.regime!r}"
        )
    return replace(spec, c=0.0, name=f"{spec.name}+scan-hiding")


def hidden_work_per_leaf(spec: RegularSpec, n: int) -> float:
    """Average hidden scan accesses carried by each base-case leaf.

    The subtree of the root holds ``S(n)`` total scan accesses
    (``spec.subtree_scan_total``) distributed over ``leaves(n)`` base
    cases.  Because ``a > b`` implies ``leaves(m) = (m/base)**e`` grows
    faster than the scans ``m``, the per-leaf burden is a geometric series
    that converges to a constant as ``n`` grows — which is what makes
    scan-hiding viable.
    """
    spec.validate_problem_size(n)
    return spec.subtree_scan_total(n) / spec.leaves(n)


def overhead_factor(spec: RegularSpec, n: int) -> float:
    """Work inflation of the scan-hidden algorithm: total accesses of the
    original algorithm divided by the accesses the transformed spec is
    charged for (its leaves alone)."""
    spec.validate_problem_size(n)
    leaves_work = spec.leaves(n) * spec.base_size
    return (leaves_work + spec.subtree_scan_total(n)) / leaves_work
