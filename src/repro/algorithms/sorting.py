"""Two-way merge sort — the classical ``a = b = 2, c = 1`` shape.

Footnote 3 of the paper: when ``a = b`` and ``c = 1`` no algorithm can be
optimally cache-adaptive, because such algorithms are already a
``Θ(log(M/B))`` factor from DAM-optimal (two-way merge sort is the
canonical example).  The kernel is included to exercise that regime with a
real trace: recursion on halves, with the merge as the linear scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.algorithms.traces import Trace, TraceRecorder
from repro.util.intmath import is_power_of

__all__ = ["SortRun", "merge_sort"]


@dataclass(frozen=True)
class SortRun:
    """Result of an instrumented merge sort."""

    sorted_values: np.ndarray
    trace: Trace | None


def merge_sort(
    values: np.ndarray,
    base_n: int = 4,
    block_size: int = 1,
    record: bool = True,
) -> SortRun:
    """Sort ``values`` (length a power of two) with traced 2-way merge sort.

    Address space: the working array occupies words ``[0, n)``; the merge
    buffer words ``[n, 2n)``.  Each merge of a size-``m`` range sweeps both
    (the ``Θ(m)`` scan); base cases sort tiles of ``base_n`` in place.
    """
    arr = np.array(values)
    if arr.ndim != 1:
        raise TraceError("values must be 1-D")
    n = int(arr.size)
    if not is_power_of(n, 2):
        raise TraceError(f"length must be a power of two, got {n}")
    if not is_power_of(base_n, 2) or base_n < 1 or base_n > n:
        raise TraceError(f"invalid base_n={base_n} for n={n}")
    rec = TraceRecorder(block_size=block_size, label=f"merge-sort-n{n}") if record else None
    BUF_BASE = n

    def touch_range(lo: int, hi: int) -> None:
        if rec is not None and hi > lo:
            rec.touch_words(np.arange(lo, hi, dtype=np.int64))

    def sort(lo: int, hi: int) -> None:
        size = hi - lo
        if size <= base_n:
            if rec is not None:
                rec.begin_leaf()
            touch_range(lo, hi)
            arr[lo:hi] = np.sort(arr[lo:hi])
            if rec is not None:
                rec.end_leaf()
            return
        mid = (lo + hi) // 2
        sort(lo, mid)
        sort(mid, hi)
        # Merge scan: read both halves, write through the buffer, copy back.
        touch_range(lo, hi)
        touch_range(BUF_BASE + lo, BUF_BASE + hi)
        merged = np.empty(size, dtype=arr.dtype)
        i, j, k = lo, mid, 0
        left, right = arr[lo:mid].copy(), arr[mid:hi].copy()
        li = ri = 0
        while li < left.size and ri < right.size:
            if left[li] <= right[ri]:
                merged[k] = left[li]
                li += 1
            else:
                merged[k] = right[ri]
                ri += 1
            k += 1
        if li < left.size:
            merged[k:] = left[li:]
        if ri < right.size:
            merged[k:] = right[ri:]
        arr[lo:hi] = merged
        touch_range(lo, hi)

    sort(0, n)
    return SortRun(arr, rec.build() if rec else None)
