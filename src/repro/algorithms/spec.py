"""Specifications of ``(a, b, c)``-regular algorithms (Definition 2).

An ``(a,b,c)``-regular algorithm on a problem of ``n`` blocks recurses on
exactly ``a`` subproblems of size ``n/b`` and otherwise performs only a
linear scan of ``n**c`` blocks (parts of which may run before, between, or
after the recursive calls), down to a base case of ``Θ(1)`` blocks.  Its
I/O complexity satisfies ``T(N) = a T(N/b) + Θ(1 + N**c / B)``.

:class:`RegularSpec` captures the parameters plus the two modelling
choices Definition 2 leaves open — base-case size and scan placement — and
provides the derived quantities the analysis needs (critical exponent,
leaf counts, per-subtree scan totals, Theorem-2 regime classification).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Iterator

from repro.errors import SpecError
from repro.util.intmath import (
    critical_exponent,
    critical_exponent_fraction,
    ilog,
    is_power_of,
)

__all__ = ["ScanPlacement", "RegularSpec"]


class ScanPlacement:
    """Where a node's linear scan runs relative to its recursive calls.

    ``END`` is the canonical form (the paper notes any placement can be
    converted to a single trailing scan); ``FRONT`` puts it before the
    children; ``SPLIT`` divides it into ``a+1`` near-equal pieces
    interleaved around the children.
    """

    END = "end"
    FRONT = "front"
    SPLIT = "split"
    ALL = (END, FRONT, SPLIT)


@dataclass(frozen=True)
class RegularSpec:
    """An ``(a, b, c)``-regular algorithm specification.

    Parameters
    ----------
    a:
        Number of recursive subproblems (``a >= 1``).
    b:
        Size reduction factor per level (integer ``b >= 2``).
    c:
        Scan exponent in ``[0, 1]``.  ``c = 0`` means no merging scan
        (e.g. in-place matrix multiply); ``c = 1`` means a full linear
        scan of the problem (the non-adaptive regime when ``a >= b``).
    base_size:
        Base-case problem size in blocks (``Θ(1)``; default 1).
    scan_placement:
        One of :class:`ScanPlacement`.
    name:
        Optional label for reports.
    """

    a: int
    b: int
    c: float
    base_size: int = 1
    scan_placement: str = ScanPlacement.END
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.a, int) or self.a < 1:
            raise SpecError(f"a must be an integer >= 1, got {self.a!r}")
        if not isinstance(self.b, int) or self.b < 2:
            raise SpecError(f"b must be an integer >= 2, got {self.b!r}")
        if not 0.0 <= float(self.c) <= 1.0:
            raise SpecError(f"c must be in [0, 1], got {self.c!r}")
        if not isinstance(self.base_size, int) or self.base_size < 1:
            raise SpecError(f"base_size must be an integer >= 1, got {self.base_size!r}")
        if self.scan_placement not in ScanPlacement.ALL:
            raise SpecError(
                f"scan_placement must be one of {ScanPlacement.ALL}, "
                f"got {self.scan_placement!r}"
            )
        if not self.name:
            object.__setattr__(self, "name", f"({self.a},{self.b},{self.c:g})-regular")

    # -- derived parameters ------------------------------------------------
    @property
    def exponent(self) -> float:
        """The critical exponent ``e = log_b a`` (Lemma 1's potential
        exponent; 3/2 for naive matrix multiplication)."""
        return critical_exponent(self.a, self.b)

    @property
    def exponent_fraction(self) -> Fraction | None:
        """``log_b a`` as an exact fraction when rational, else None."""
        return critical_exponent_fraction(self.a, self.b)

    @property
    def regime(self) -> str:
        """Theorem-2 regime classification.

        * ``"adaptive"`` — ``c < 1``, or ``a < b`` (optimal cache-adaptive
          whenever DAM-optimal);
        * ``"gap"`` — ``c = 1`` and ``a > b`` (the ``Θ(log_b N)``
          worst-case gap this paper closes in expectation);
        * ``"degenerate"`` — ``c = 1`` and ``a = b`` (already
          ``Θ(log(M/B))`` from optimal in the DAM; out of scope).
        """
        if float(self.c) < 1.0 or self.a < self.b:
            return "adaptive"
        if self.a == self.b:
            return "degenerate"
        return "gap"

    @property
    def worst_case_adaptive(self) -> bool:
        """True iff Theorem 2 guarantees worst-case cache-adaptivity."""
        return self.regime == "adaptive"

    # -- problem geometry ----------------------------------------------------
    def validate_problem_size(self, n: int) -> int:
        """Check ``n = base_size * b**k`` and return the depth ``k``."""
        if n < self.base_size:
            raise SpecError(f"problem size {n} below base_size {self.base_size}")
        if n % self.base_size != 0 or not is_power_of(n // self.base_size, self.b):
            raise SpecError(
                f"problem size {n} must be base_size*b**k "
                f"(base_size={self.base_size}, b={self.b})"
            )
        return ilog(n // self.base_size, self.b)

    def depth(self, n: int) -> int:
        """Recursion depth from a size-``n`` problem to the base case."""
        return self.validate_problem_size(n)

    def problem_sizes(self, n: int) -> list[int]:
        """All node sizes ``[base_size, ..., n]`` in ascending order."""
        d = self.validate_problem_size(n)
        return [self.base_size * self.b**k for k in range(d + 1)]

    def leaves(self, n: int) -> int:
        """Number of base-case leaves: ``a**depth(n) = (n/base)**e``."""
        return self.a ** self.validate_problem_size(n)

    def child_size(self, n: int) -> int:
        if n <= self.base_size:
            raise SpecError(f"size {n} is a base case; no children")
        return n // self.b

    def scan_length(self, n: int) -> int:
        """Scan length (in blocks) at a size-``n`` non-base node.

        ``0`` when ``c == 0`` (pure in-place recursion, e.g. MM-INPLACE),
        else ``round(n**c)`` — exactly ``n`` when ``c == 1``.
        Base-case nodes have no scan.
        """
        if n <= self.base_size:
            return 0
        if float(self.c) == 0.0:
            return 0
        if float(self.c) == 1.0:
            return int(n)
        return max(1, int(round(float(n) ** float(self.c))))

    def subtree_scan_total(self, n: int) -> int:
        """Total scan accesses in the whole subtree of a size-``n`` node:
        ``S(n) = a S(n/b) + scan_length(n)``, ``S(base) = 0``."""
        d = self.validate_problem_size(n)
        total = 0
        size = n
        mult = 1
        for _ in range(d):
            total += mult * self.scan_length(size)
            mult *= self.a
            size //= self.b
        return total

    def subtree_accesses(self, n: int) -> int:
        """Total accesses in a canonical linearization of the subtree:
        leaves contribute ``base_size`` each, scans their length.  This is
        the reference-sequence length used for cursor ordering."""
        return self.leaves(n) * self.base_size + self.subtree_scan_total(n)

    def scan_pieces(self, n: int) -> list[int]:
        """Lengths of the scan pieces around the ``a`` children, by
        placement: ``END -> [0]*a + [L]``; ``FRONT -> [L] + [0]*a``;
        ``SPLIT`` divides ``L`` into ``a+1`` near-equal integer pieces.
        The returned list always has ``a + 1`` entries: piece ``i`` runs
        before child ``i`` (piece ``a`` runs after the last child)."""
        length = self.scan_length(n)
        pieces = [0] * (self.a + 1)
        if length == 0:
            return pieces
        if self.scan_placement == ScanPlacement.END:
            pieces[-1] = length
        elif self.scan_placement == ScanPlacement.FRONT:
            pieces[0] = length
        else:  # SPLIT
            q, r = divmod(length, self.a + 1)
            for i in range(self.a + 1):
                pieces[i] = q + (1 if i < r else 0)
        return pieces

    # -- convenience ---------------------------------------------------------
    def with_placement(self, placement: str) -> "RegularSpec":
        """Copy of this spec with a different scan placement."""
        return replace(self, scan_placement=placement, name=self.name)

    def with_base_size(self, base_size: int) -> "RegularSpec":
        """Copy of this spec with a different base-case size."""
        return replace(self, base_size=base_size, name=self.name)

    def describe(self) -> str:
        e = self.exponent
        return (
            f"{self.name}: a={self.a}, b={self.b}, c={self.c:g}, "
            f"base={self.base_size}, scans={self.scan_placement}, "
            f"e=log_{self.b}({self.a})={e:.4g}, regime={self.regime}"
        )
