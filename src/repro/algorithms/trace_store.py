"""Compressed on-disk traces: digest-keyed ``.npz`` save/load.

Traces from :mod:`repro.algorithms.traces` are deterministic functions of
their spec, so the in-process memo already deduplicates them within a
run.  This module is the durable counterpart — a compressed archive
format for shipping traces between processes and, per the ROADMAP, the
seed of the real-block-trace loader: a measured workload trace saved
once can be replayed through :func:`repro.machine.simulate_ca` forever.

Format: a ``numpy.savez_compressed`` archive holding the ``blocks`` and
``leaf_spans`` arrays plus scalar metadata (``block_size``, ``label``,
``format_version``) and the content digest of everything else.  Loads
never unpickle (``allow_pickle=False``) and verify the digest, so a
truncated or tampered file fails loudly instead of feeding the machines
a silently corrupt trace.  :func:`store_trace` /
:func:`load_stored_trace` layer a content-addressed ``<digest>.npz``
naming scheme on top, mirroring the artifact store's digest-keyed
layout.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.algorithms.traces import Trace

__all__ = [
    "TRACE_FORMAT_VERSION",
    "trace_digest",
    "save_trace",
    "load_trace",
    "stored_trace_path",
    "store_trace",
    "load_stored_trace",
]

TRACE_FORMAT_VERSION = 1


def trace_digest(trace: Trace) -> str:
    """Content digest of a trace (sha256 hex).

    Covers the arrays byte-for-byte plus ``block_size`` and ``label`` —
    two traces share a digest iff they are equal as traces.  The format
    version is salted in so a future layout change re-keys the store.
    """
    h = hashlib.sha256()
    h.update(f"repro-trace-v{TRACE_FORMAT_VERSION}".encode())
    h.update(str(trace.block_size).encode())
    h.update(b"\x00")
    h.update(trace.label.encode())
    h.update(b"\x00")
    h.update(str(trace.leaf_spans.shape[0]).encode())
    h.update(b"\x00")
    h.update(np.ascontiguousarray(trace.blocks).tobytes())
    h.update(np.ascontiguousarray(trace.leaf_spans).tobytes())
    return h.hexdigest()


def save_trace(path: str | Path, trace: Trace) -> str:
    """Write ``trace`` to ``path`` as a compressed archive; returns its
    digest.  The write is atomic (temp file + rename) so a crashed save
    never leaves a half-written archive under the final name."""
    path = Path(path)
    digest = trace_digest(trace)
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                format_version=np.int64(TRACE_FORMAT_VERSION),
                blocks=trace.blocks,
                leaf_spans=trace.leaf_spans,
                block_size=np.int64(trace.block_size),
                label=np.array(trace.label),
                digest=np.array(digest),
            )
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return digest


def load_trace(path: str | Path) -> Trace:
    """Read a trace archive written by :func:`save_trace`.

    Raises :class:`~repro.errors.TraceError` on unknown format versions,
    missing fields, or a digest mismatch (corruption/tampering).
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            try:
                version = int(archive["format_version"])
                blocks = np.asarray(archive["blocks"], dtype=np.int64)
                spans = np.asarray(archive["leaf_spans"], dtype=np.int64)
                block_size = int(archive["block_size"])
                label = str(archive["label"])
                digest = str(archive["digest"])
            except KeyError as exc:
                raise TraceError(
                    f"trace archive {path} is missing field {exc}"
                ) from exc
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise TraceError(f"cannot read trace archive {path}: {exc}") from exc
    if version != TRACE_FORMAT_VERSION:
        raise TraceError(
            f"trace archive {path} has format version {version}, "
            f"expected {TRACE_FORMAT_VERSION}"
        )
    trace = Trace(blocks, spans, block_size=block_size, label=label)
    actual = trace_digest(trace)
    if actual != digest:
        raise TraceError(
            f"trace archive {path} failed digest verification "
            f"(stored {digest[:12]}…, recomputed {actual[:12]}…)"
        )
    return trace


def stored_trace_path(directory: str | Path, digest: str) -> Path:
    """Canonical path of a digest-keyed trace inside ``directory``."""
    return Path(directory) / f"{digest}.npz"


def store_trace(directory: str | Path, trace: Trace) -> Path:
    """Save ``trace`` under its content digest in ``directory``.

    Idempotent: an archive already present under the digest is trusted
    (content-addressing makes the name a proof of the content) and not
    rewritten.  Returns the archive path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = stored_trace_path(directory, trace_digest(trace))
    if not path.exists():
        save_trace(path, trace)
    return path


def load_stored_trace(directory: str | Path, digest: str) -> Trace | None:
    """Load the trace stored under ``digest``, or ``None`` if absent."""
    path = stored_trace_path(directory, digest)
    if not path.exists():
        return None
    trace = load_trace(path)
    if trace_digest(trace) != digest:
        raise TraceError(
            f"trace archive {path} does not match its digest key"
        )
    return trace
