"""Block-reference traces and their recorder.

A :class:`Trace` is the unit of exchange between real algorithm
implementations (:mod:`repro.algorithms.mm`, :mod:`repro.algorithms.gep`,
…) and the machine simulators (:mod:`repro.machine`): a flat array of
block addresses, annotated with the spans of base-case leaves so the
machines can count *progress* (base cases at least partly executed inside
a box — the paper's progress measure).

:func:`synthetic_trace` generates a trace directly from a
:class:`~repro.algorithms.spec.RegularSpec` with the exact distinct-block
geometry of Definition 2 (a size-``m`` subproblem touches ``m`` distinct
blocks; the scan sweeps the node's region), which is what lets the
trace-level machine be cross-checked against the symbolic simulator for
arbitrary ``(a, b, c)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.algorithms.spec import RegularSpec
from repro.cache.memo import memoized

__all__ = ["Trace", "TraceRecorder", "synthetic_trace"]


@dataclass(frozen=True)
class Trace:
    """An annotated block-reference trace.

    ``blocks``      — int64 array: the i-th entry is the block touched by
    the i-th memory reference.
    ``leaf_spans``  — int64 array of shape (k, 2): half-open reference
    ranges ``[start, end)`` occupied by each base-case leaf, in order.
    ``block_size``  — the word-to-block divisor ``B`` used when recording.
    ``label``       — human-readable description.
    """

    blocks: np.ndarray
    leaf_spans: np.ndarray
    block_size: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        blocks = np.ascontiguousarray(self.blocks, dtype=np.int64)
        spans = np.ascontiguousarray(self.leaf_spans, dtype=np.int64)
        if blocks.ndim != 1:
            raise TraceError("blocks must be a 1-D array")
        if spans.size == 0:
            spans = spans.reshape(0, 2)
        if spans.ndim != 2 or spans.shape[1] != 2:
            raise TraceError("leaf_spans must have shape (k, 2)")
        if spans.shape[0]:
            if np.any(spans[:, 0] > spans[:, 1]):
                raise TraceError("leaf spans must satisfy start <= end")
            if np.any(spans[:, 1] > blocks.size) or np.any(spans[:, 0] < 0):
                raise TraceError("leaf spans out of trace range")
            if np.any(np.diff(spans[:, 0]) < 0):
                raise TraceError("leaf spans must be sorted by start")
        if self.block_size < 1:
            raise TraceError(f"block_size must be >= 1, got {self.block_size}")
        blocks.setflags(write=False)
        spans.setflags(write=False)
        object.__setattr__(self, "blocks", blocks)
        object.__setattr__(self, "leaf_spans", spans)

    def __len__(self) -> int:
        return int(self.blocks.size)

    @property
    def n_leaves(self) -> int:
        return int(self.leaf_spans.shape[0])

    def distinct_blocks(self) -> int:
        """Number of distinct blocks touched anywhere in the trace."""
        return int(np.unique(self.blocks).size) if len(self) else 0

    def working_set_of_range(self, start: int, end: int) -> int:
        """Distinct blocks touched in references ``[start, end)``."""
        if not 0 <= start <= end <= len(self):
            raise TraceError(f"range [{start}, {end}) out of bounds")
        return int(np.unique(self.blocks[start:end]).size)

    def __repr__(self) -> str:
        return (
            f"Trace(label={self.label!r}, refs={len(self)}, "
            f"leaves={self.n_leaves}, B={self.block_size})"
        )


class TraceRecorder:
    """Incremental builder used by instrumented algorithm implementations.

    Word addresses are divided by ``block_size`` on the fly.  Leaf spans
    are recorded with :meth:`begin_leaf` / :meth:`end_leaf` around each
    base-case computation.
    """

    def __init__(self, block_size: int = 1, label: str = ""):
        if block_size < 1:
            raise TraceError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self.label = label
        self._chunks: list[np.ndarray] = []
        self._pending: list[int] = []
        self._spans: list[tuple[int, int]] = []
        self._count = 0
        self._leaf_start: int | None = None

    # -- recording ------------------------------------------------------
    def touch(self, word_addr: int) -> None:
        """Record one word access."""
        self._pending.append(word_addr // self.block_size)
        self._count += 1
        if len(self._pending) >= 65536:
            self._flush_pending()

    def touch_words(self, word_addrs: np.ndarray) -> None:
        """Record a vector of word accesses (order preserved)."""
        arr = np.asarray(word_addrs, dtype=np.int64) // self.block_size
        self._flush_pending()
        self._chunks.append(arr)
        self._count += arr.size

    def touch_range(self, word_lo: int, word_hi: int) -> None:
        """Record a sequential sweep of words ``[word_lo, word_hi)``."""
        if word_hi < word_lo:
            raise TraceError("word_hi must be >= word_lo")
        self.touch_words(np.arange(word_lo, word_hi, dtype=np.int64))

    def begin_leaf(self) -> None:
        if self._leaf_start is not None:
            raise TraceError("begin_leaf called twice without end_leaf")
        self._leaf_start = self._count

    def end_leaf(self) -> None:
        if self._leaf_start is None:
            raise TraceError("end_leaf without begin_leaf")
        self._spans.append((self._leaf_start, self._count))
        self._leaf_start = None

    # -- finalization ------------------------------------------------------
    def _flush_pending(self) -> None:
        if self._pending:
            self._chunks.append(np.asarray(self._pending, dtype=np.int64))
            self._pending = []

    def build(self) -> Trace:
        """Finalize into an immutable :class:`Trace`."""
        if self._leaf_start is not None:
            raise TraceError("unclosed leaf at build time")
        self._flush_pending()
        blocks = (
            np.concatenate(self._chunks)
            if self._chunks
            else np.empty(0, dtype=np.int64)
        )
        spans = (
            np.asarray(self._spans, dtype=np.int64)
            if self._spans
            else np.empty((0, 2), dtype=np.int64)
        )
        return Trace(blocks, spans, block_size=self.block_size, label=self.label)


@memoized(maxsize=32, key=lambda spec, n, label="": (spec, n, label))
def synthetic_trace(spec: RegularSpec, n: int, label: str = "") -> Trace:
    """Generate the canonical trace of an ``(a,b,c)``-regular execution.

    Memoized in-process (:func:`repro.cache.memo.memoized`): the trace is
    a pure function of ``(spec, n, label)`` and :class:`Trace` is
    immutable, so experiments and benches sweeping many profiles over the
    same trace share one array — which also lets the trace machines'
    per-trace stack-distance cache (:mod:`repro.machine.fastpath`) hit
    across calls.

    The size-``n`` root owns block region ``[0, n)``.  A size-``m`` node
    with region ``[lo, lo+m)`` gives child ``i`` the sub-region
    ``[lo + (i mod b)*(m/b), ...)`` — so the ``a`` children cover all
    ``b`` sub-regions and (since ``a > b`` revisits some) exhibit the
    block reuse that real divide-and-conquer kernels have — and sweeps
    ``scan_length(m)`` blocks of its own region as its scan, placed
    according to the spec's scan placement.  Leaves touch every block of
    their region.

    The result satisfies Definition 2 exactly: every size-``m`` subproblem
    touches precisely ``m`` distinct blocks.
    """
    depth = spec.validate_problem_size(n)
    rec = TraceRecorder(block_size=1, label=label or f"synthetic-{spec.name}-n{n}")

    def emit_scan(lo: int, length: int) -> None:
        if length:
            rec.touch_range(lo, lo + length)

    def rec_node(size: int, lo: int) -> None:
        if size <= spec.base_size:
            rec.begin_leaf()
            rec.touch_range(lo, lo + size)
            rec.end_leaf()
            return
        pieces = spec.scan_pieces(size)
        child = size // spec.b
        # Scan pieces sweep the node's region cyclically so that a full
        # scan (c = 1) covers exactly the whole region.
        swept = 0
        for i in range(spec.a):
            if pieces[i]:
                emit_scan(lo + swept % size, min(pieces[i], size - swept % size))
                extra = pieces[i] - min(pieces[i], size - swept % size)
                if extra:
                    emit_scan(lo, extra)
                swept += pieces[i]
            rec_node(child, lo + (i % spec.b) * child)
        if pieces[spec.a]:
            start = swept % size
            first = min(pieces[spec.a], size - start)
            emit_scan(lo + start, first)
            if pieces[spec.a] - first:
                emit_scan(lo, pieces[spec.a] - first)
    rec_node(n, 0)
    return rec.build()
