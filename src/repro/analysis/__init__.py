"""Analysis layer: potentials (Lemma 1), adaptivity ratios and verdicts,
the exact Lemma-3 recurrence solver (Equations 3–9), the No-Catch-up
checker (Lemma 2), and the smoothing scenarios of Sections 3–4."""

from repro.analysis.adaptivity import (
    RatioSeries,
    adaptivity_ratio,
    worst_case_ratio,
    worst_case_ratio_series,
)
from repro.analysis.feedback import (
    FeedbackRecord,
    feedback_report,
    feedback_threshold,
    verify_negative_feedback,
)
from repro.analysis.nocatchup import (
    NoCatchupReport,
    check_no_catchup,
    finish_positions,
    require_monotone_starts,
)
from repro.analysis.potential import max_progress, measured_potential, potential
from repro.analysis.recurrence import (
    LevelRecord,
    RecurrenceSolution,
    expected_boxes,
    expected_cost_ratio,
    expected_scan_boxes,
    scan_boxes_bounds,
    solve_recurrence,
)
from repro.analysis.theory import (
    point_mass_limit_ratio,
    point_mass_ratio_exact,
    scan_hiding_overhead_limit,
    split_adversary_slope,
    worst_case_ratio_exact,
)
from repro.analysis.smoothing import (
    iid_ratio_trials,
    order_perturbation_trials,
    shuffled_worst_case_trials,
    size_perturbation_trials,
    start_shift_trials,
)

__all__ = [
    "RatioSeries",
    "adaptivity_ratio",
    "worst_case_ratio",
    "worst_case_ratio_series",
    "FeedbackRecord",
    "feedback_report",
    "feedback_threshold",
    "verify_negative_feedback",
    "NoCatchupReport",
    "check_no_catchup",
    "finish_positions",
    "require_monotone_starts",
    "max_progress",
    "measured_potential",
    "potential",
    "LevelRecord",
    "RecurrenceSolution",
    "expected_boxes",
    "expected_cost_ratio",
    "expected_scan_boxes",
    "scan_boxes_bounds",
    "solve_recurrence",
    "point_mass_limit_ratio",
    "point_mass_ratio_exact",
    "scan_hiding_overhead_limit",
    "split_adversary_slope",
    "worst_case_ratio_exact",
    "iid_ratio_trials",
    "order_perturbation_trials",
    "shuffled_worst_case_trials",
    "size_perturbation_trials",
    "start_shift_trials",
]
