"""Adaptivity accounting and verdicts.

The efficiency criterion (Inequality 2): an execution on boxes
``(box_1..box_j)`` is efficiently cache-adaptive iff
``sum_i min(n, |box_i|)**e <= O(n**e)``.  Experiments compute the
*adaptivity ratio* (that sum divided by ``n**e``) across a sweep of
problem sizes and classify its growth: bounded (adaptive) versus
``Theta(log_b n)`` (the gap).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.algorithms.spec import RegularSpec
from repro.profiles.square import SquareProfile
from repro.profiles.worst_case import worst_case_bounded_potential
from repro.util.fitting import fit_log_law, growth_verdict

__all__ = [
    "adaptivity_ratio",
    "worst_case_ratio",
    "worst_case_ratio_series",
    "RatioSeries",
]


def adaptivity_ratio(profile: SquareProfile, spec: RegularSpec, n: int) -> float:
    """``sum_i min(n, |box_i|)**e / n**e`` for the given profile."""
    spec.validate_problem_size(n)
    return profile.bounded_potential_sum(n, spec.exponent) / float(n) ** spec.exponent


def worst_case_ratio(spec: RegularSpec, n: int) -> float:
    """Closed-form adaptivity ratio of the canonical worst-case profile
    ``M_{a,b}(n)`` (its boxes exactly complete one execution).

    When ``a = b**e`` exactly this equals ``log_b(n/base) + 1`` — the
    logarithmic gap of Theorem 2."""
    return worst_case_bounded_potential(
        spec.a, spec.b, n, bound=n, base_size=spec.base_size, exponent=spec.exponent
    ) / float(n) ** spec.exponent


def worst_case_ratio_series(spec: RegularSpec, ns: Sequence[int]) -> list[float]:
    """Worst-case ratios across a size sweep."""
    return [worst_case_ratio(spec, n) for n in ns]


@dataclass(frozen=True)
class RatioSeries:
    """A measured adaptivity-ratio series with its growth classification."""

    ns: tuple[int, ...]
    ratios: tuple[float, ...]
    base: float

    def __post_init__(self) -> None:
        if len(self.ns) != len(self.ratios) or len(self.ns) < 2:
            raise SimulationError("need >= 2 paired (n, ratio) samples")

    @property
    def verdict(self) -> str:
        """``"constant"`` (adaptive) or ``"logarithmic"`` (the gap)."""
        return growth_verdict(self.ns, self.ratios, base=self.base)

    @property
    def log_slope(self) -> float:
        """Fitted increase of the ratio per factor-``base`` increase of n
        (≈ 1.0 for the canonical worst case, ≈ 0 for adaptive runs)."""
        return fit_log_law(self.ns, self.ratios, base=self.base).slope

    @staticmethod
    def from_measurements(
        ns: Sequence[int], ratios: Sequence[float], spec: RegularSpec
    ) -> "RatioSeries":
        return RatioSeries(tuple(int(x) for x in ns), tuple(float(r) for r in ratios),
                           base=float(spec.b))
