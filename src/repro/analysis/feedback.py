"""The semi-inductive proof structure of Theorem 3 — Equations 7 and 9.

The paper's proof of the main theorem does not show the natural per-level
bound (Equation 6) directly — box-size distributions exist that violate
it.  Instead it establishes a *negative feedback loop*: restrict attention
to problem sizes whose expected cost is already large (Equation 9,
``f(n) >= C * n^e / m_n`` for a constant ``C`` of one's choice), and show
that for those sizes the scan-free ratio obeys the downward pressure of
Equation 7:

    ``f'(n) / f(n/b)  <=  a * m_{n/b} / m_n``.

Whenever the normalized cost is on the cusp of violating adaptivity, this
pressure stops it from growing further; the scan corrections left out of
``f'`` are then patched in aggregate by Equation 8's bounded product.

This module makes that structure *measurable*: per-level Equation-7
diagnostics against the Equation-9 threshold, and the empirical
``feedback threshold`` — the largest normalized cost at which downward
pressure is ever absent.  The paper's argument needs that threshold to be
a universal constant; the ``eq8`` experiment and the property suite check
it across distributions.

Note Section 4's normalization: box and problem sizes are powers of
``b``.  On that lattice the empirical threshold stays below 2; box sizes
that straddle the lattice (e.g. a point mass at 2 with ``b = 4``) inflate
the bottom levels' cost and need a larger ``C`` — consistent with the
full version handling general sizes by separate reductions rather than
inside the induction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.recurrence import RecurrenceSolution

__all__ = ["FeedbackRecord", "feedback_report", "feedback_threshold", "verify_negative_feedback"]


@dataclass(frozen=True)
class FeedbackRecord:
    """Equation-7/9 diagnostics for one recursion level.

    ``cost_ratio`` is the Equation-9 quantity normalized
    (``f(n)·m_n / n^e``); ``eq7_lhs``/``eq7_rhs`` are the two sides of the
    scan-free per-level bound; ``pressure_holds`` is Equation 7's verdict.
    """

    n: int
    cost_ratio: float
    eq7_lhs: float
    eq7_rhs: float

    @property
    def pressure_holds(self) -> bool:
        return self.eq7_lhs <= self.eq7_rhs * (1 + 1e-12)


def feedback_report(solution: RecurrenceSolution) -> list[FeedbackRecord]:
    """Per-level Equation-7 diagnostics for a solved recurrence."""
    spec = solution.spec
    out: list[FeedbackRecord] = []
    for prev, cur in zip(solution.levels, solution.levels[1:]):
        out.append(
            FeedbackRecord(
                n=cur.n,
                cost_ratio=cur.cost_ratio,
                eq7_lhs=cur.f_prime / prev.f,
                eq7_rhs=spec.a * prev.m_n / cur.m_n,
            )
        )
    return out


def feedback_threshold(solution: RecurrenceSolution) -> float:
    """The largest normalized cost at a level *without* downward pressure
    (0.0 when Equation 7 holds everywhere).

    The semi-inductive argument is sound iff this is bounded by a
    universal constant ``C`` over all distributions: then Equation 9's
    base-case cut at ``C`` leaves only levels where Equation 7 applies.
    """
    worst = 0.0
    for rec in feedback_report(solution):
        if not rec.pressure_holds:
            worst = max(worst, rec.cost_ratio)
    return worst


def verify_negative_feedback(solution: RecurrenceSolution, C: float = 3.0) -> bool:
    """Check the feedback property at threshold ``C``: every level whose
    normalized cost is at least ``C`` satisfies Equation 7."""
    if C <= 0:
        raise ValueError(f"C must be positive, got {C}")
    return all(
        rec.pressure_holds
        for rec in feedback_report(solution)
        if rec.cost_ratio >= C
    )
