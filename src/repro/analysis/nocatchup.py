"""The No-Catch-up Lemma (Lemma 2), checkable.

Lemma 2: for a fixed memory-reference sequence and a fixed sequence of
squares, delaying the algorithm's start can never make it finish earlier —
if starting square 1 at reference ``r_i`` makes square ``k`` finish at
``r_j``, then starting at any earlier ``r_{i'}`` finishes at some
``r_{j'} <= r_j``.  The lemma is the engine of the paper's robustness
proofs (it is what lets a perturbed profile "re-synchronize" with the
algorithm), so the library verifies it wholesale: run the same box
sequence from every (sampled) start position and check the finish
position is monotone in the start position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.algorithms.cursor import ExecutionCursor
from repro.algorithms.spec import RegularSpec
from repro.util.rng import as_generator

__all__ = [
    "NoCatchupReport",
    "finish_positions",
    "check_no_catchup",
    "require_monotone_starts",
]


def require_monotone_starts(
    starts: Sequence[int], what: str = "start positions"
) -> tuple[int, ...]:
    """Runtime contract behind the ``nocatchup-monotonicity`` lint rule.

    Lemma 2 statements ("an earlier start can never finish later") are
    comparisons *along a monotone axis*: ``finish(starts[i])`` vs
    ``finish(starts[i+1])`` is only evidence about the lemma when
    ``starts[i] <= starts[i+1]``.  Call this on the start sequence
    immediately before any such adjacent-pair comparison; it returns the
    verified tuple so the guarded sequence is the compared sequence.

    Raises :class:`~repro.errors.SimulationError` on the first inversion
    (an ``assert`` would vanish under ``python -O``; the contract must
    not).
    """
    out = tuple(int(s) for s in starts)
    for i in range(len(out) - 1):
        if out[i] > out[i + 1]:
            raise SimulationError(
                f"{what} must be monotone nondecreasing for No-Catch-up "
                f"comparisons: index {i} holds {out[i]} but index "
                f"{i + 1} holds {out[i + 1]}; sort the starts (and keep "
                "finish positions paired with them) before comparing"
            )
    return out


def finish_positions(
    spec: RegularSpec,
    n: int,
    boxes: Sequence[int],
    start_positions: Sequence[int],
    model: str = "simplified",
) -> list[int]:
    """For each start position (linearized access index), run the whole
    box sequence and return the finishing access index (the execution's
    total access count if it completed early)."""
    if model not in ("simplified", "greedy"):
        raise SimulationError(f"unknown model {model!r}")
    spec.validate_problem_size(n)
    out: list[int] = []
    cursor = ExecutionCursor(spec, n)
    for start in start_positions:
        cursor.seek(int(start))
        for s in boxes:
            if cursor.is_done:
                break
            if model == "simplified":
                cursor.feed_simplified(int(s))
            else:
                cursor.feed_greedy(int(s))
        out.append(cursor.access_index())
    return out


@dataclass(frozen=True)
class NoCatchupReport:
    """Outcome of a No-Catch-up verification sweep."""

    starts: tuple[int, ...]
    finishes: tuple[int, ...]
    violations: tuple[tuple[int, int], ...]  # (earlier start, later start)

    @property
    def holds(self) -> bool:
        return not self.violations


def check_no_catchup(
    spec: RegularSpec,
    n: int,
    boxes: Sequence[int],
    starts: Sequence[int] | None = None,
    samples: int = 64,
    rng: object = None,
    model: str = "simplified",
) -> NoCatchupReport:
    """Verify Lemma 2 for one box sequence.

    If ``starts`` is omitted, ``samples`` positions are drawn uniformly
    (plus position 0).  A violation is a pair of starts ``i' < i`` whose
    finish positions satisfy ``finish(i') > finish(i)``; since finish
    positions must be monotone in the start, adjacent-pair checking over
    the sorted starts suffices.
    """
    spec.validate_problem_size(n)
    if starts is None:
        gen = as_generator(rng)
        total = spec.subtree_accesses(n)
        starts = sorted({0, *map(int, gen.integers(0, total, size=samples))})
    else:
        starts = sorted(int(s) for s in starts)
    # Contract guard directly in front of the adjacent-pair comparison:
    # the sort above establishes monotonicity today, but the lemma check
    # below is only sound because of it, so the guarded tuple is the
    # compared tuple.
    starts = require_monotone_starts(starts)
    finishes = finish_positions(spec, n, boxes, starts, model=model)
    violations = [
        (starts[i], starts[i + 1])
        for i in range(len(starts) - 1)
        if finishes[i] > finishes[i + 1]
    ]
    return NoCatchupReport(
        starts=starts,
        finishes=tuple(finishes),
        violations=tuple(violations),
    )
