"""Box potential ``rho`` — Lemma 1.

The *potential* of a box is the maximum progress (base-case subproblems at
least partly executed) it could achieve at any point of any execution of
the algorithm.  Lemma 1: ``rho(|box|) = Theta(|box|**e)`` with
``e = log_b a``.  This module provides the exact combinatorial value under
the simplified model, the smooth power form used in the efficiency
condition, and an empirical estimator that measures progress of a single
box dropped at sampled execution positions (used by the ``lemma1``
experiment to recover the exponent by fitting).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.algorithms.cursor import ExecutionCursor
from repro.algorithms.spec import RegularSpec
from repro.util.intmath import floor_power
from repro.util.rng import as_generator

__all__ = ["potential", "max_progress", "measured_potential"]


def potential(spec: RegularSpec, box_size: int, rho1: float = 1.0) -> float:
    """The smooth potential form ``rho1 * |box|**e`` used in the
    efficiency sums (Inequality 1/2)."""
    if box_size < 1:
        raise SimulationError(f"box size must be >= 1, got {box_size}")
    return rho1 * float(box_size) ** spec.exponent


def max_progress(spec: RegularSpec, box_size: int) -> int:
    """Exact maximum progress of one box under the simplified model.

    A box of size ``s`` completes at most the remainder of the largest
    problem of size ``<= s`` containing its start, so its progress is
    maximized when it starts at the very beginning of such a problem:
    ``leaves(largest node size <= s)``.  This is the ``Theta(s**e)``
    combinatorial quantity of Lemma 1.
    """
    if box_size < 1:
        raise SimulationError(f"box size must be >= 1, got {box_size}")
    if box_size < spec.base_size:
        return 0
    # Largest node size of the form base * b**k that is <= box_size.
    node = spec.base_size * floor_power(max(box_size // spec.base_size, 1), spec.b)
    return spec.leaves(node)


def measured_potential(
    spec: RegularSpec,
    n: int,
    box_size: int,
    samples: int = 256,
    rng: object = None,
    include_aligned: bool = True,
) -> int:
    """Empirical potential: drop a single box of ``box_size`` at sampled
    positions of a size-``n`` execution and return the maximum progress
    observed.

    Positions are sampled uniformly over the linearized access sequence;
    with ``include_aligned`` the start of the execution (the position that
    achieves the maximum) is always included, so with any ``samples >= 1``
    the returned value equals :func:`max_progress` when ``box_size <= n``.
    """
    spec.validate_problem_size(n)
    if samples < 1:
        raise SimulationError(f"samples must be >= 1, got {samples}")
    gen = as_generator(rng)
    total = spec.subtree_accesses(n)
    positions = set(int(p) for p in gen.integers(0, total, size=samples))
    if include_aligned:
        positions.add(0)
    best = 0
    cursor = ExecutionCursor(spec, n)
    for pos in positions:
        cursor.seek(pos)
        if cursor.is_done:
            continue
        out = cursor.feed_simplified(box_size)
        if out.leaves > best:
            best = out.leaves
    return best
