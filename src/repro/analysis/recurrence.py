"""Exact expected-stopping-time solver (Lemma 3 and Equations 3–9).

For i.i.d. box sizes from a distribution Σ, Lemma 3 of the paper gives an
*exact* recurrence for ``f(n)``, the expected number of boxes needed to
complete a size-``n`` problem under the simplified caching model (scans in
canonical trailing position):

* the probability that a child run of size ``n/b`` consumes a box of size
  ``>= n`` is exactly ``q = P[sigma >= n] * f(n/b)`` (at most one such box
  can appear, so the indicator's expectation *is* the probability);
* the children cost ``sum_{i=1..a} (1-q)**(i-1) * f(n/b)`` boxes in
  expectation (a big box during any child completes the whole problem);
* the trailing scan costs ``(1-q)**a * E[K(L)]`` additional boxes, where
  ``K(L)`` is the renewal count of a scan of length ``L`` run in isolation
  (each box consumes ``min(sigma, remaining)``).

``f'(n)`` (Equation 7/8) is the same without the scan term.  By optional
stopping (Equation 3), the exact Definition-3 cost is ``f(n) * m_n`` with
``m_n = E[min(n, sigma)**e]`` — so the *expected adaptivity ratio* is
computable in closed form and cross-checked against Monte-Carlo runs in
the experiments.

All of this assumes the canonical END scan placement (the paper's
w.l.o.g. normal form); the solver rejects other placements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DistributionError, SimulationError
from repro.algorithms.spec import RegularSpec, ScanPlacement
from repro.cache.memo import distribution_key, memoized
from repro.profiles.distributions import BoxDistribution

__all__ = [
    "expected_scan_boxes",
    "scan_boxes_bounds",
    "LevelRecord",
    "RecurrenceSolution",
    "solve_recurrence",
    "expected_boxes",
    "expected_cost_ratio",
]

_SCAN_DP_LIMIT = 5 * 10**7  # elementwise-work guard for the renewal DP


def _renewal_dp_waves(length: int, sizes: np.ndarray, probs: np.ndarray) -> np.ndarray:
    """Renewal DP via waves of the minimum support size (vectorized inner
    update; efficient when the smallest box is reasonably large)."""
    smin = int(sizes[0])
    K = np.zeros(length + 1, dtype=np.float64)
    r = 1
    while r <= length:
        hi = min(r + smin, length + 1)
        block = np.arange(r, hi, dtype=np.int64)
        acc = np.ones(hi - r, dtype=np.float64)
        for sigma, p in zip(sizes.tolist(), probs.tolist()):
            idx = block - sigma
            valid = idx >= 0  # K[0] = 0, so sigma == r contributes nothing
            if valid.any():
                acc[valid] += p * K[idx[valid]]
        K[r:hi] = acc
        r = hi
    return K


def _renewal_dp_filter(length: int, sizes: np.ndarray, probs: np.ndarray) -> np.ndarray:
    """Renewal DP via an IIR filter (efficient when the smallest box is
    tiny, which makes the wave path degenerate to a scalar loop).

    For ``r > smax`` the recurrence is the constant-coefficient linear
    filter ``K(r) = 1 + sum_sigma P(sigma) K(r - sigma)``; the truncated
    prefix ``r <= smax`` is computed directly, then
    :func:`scipy.signal.lfilter` runs the tail in C.
    """
    from scipy.signal import lfilter, lfiltic

    smax = int(sizes[-1])
    K = np.zeros(length + 1, dtype=np.float64)
    head = min(smax, length)
    size_list = sizes.tolist()
    prob_list = probs.tolist()
    for r in range(1, head + 1):
        acc = 1.0
        for sigma, p in zip(size_list, prob_list):
            if sigma >= r:
                break  # sizes sorted ascending; remainder all >= r
            acc += p * K[r - sigma]
        K[r] = acc
    if length <= smax:
        return K
    # Denominator polynomial: a[0]=1, a[sigma] = -P(sigma).
    a = np.zeros(smax + 1, dtype=np.float64)
    a[0] = 1.0
    a[sizes] = -probs
    b = np.array([1.0])
    # Past outputs for r = smax, smax-1, ..., 1 seed the filter state.
    zi = lfiltic(b, a, y=K[head:0:-1])
    x = np.ones(length - head, dtype=np.float64)
    K[head + 1 :], _ = lfilter(b, a, x, zi=zi)
    return K


def _renewal_dp(length: int, sizes: np.ndarray, probs: np.ndarray) -> np.ndarray:
    """The renewal DP table ``K[0..length]`` with
    ``K(r) = 1 + sum_{sigma < r} P(sigma) K(r - sigma)``; dispatches
    between the wave and filter implementations by support shape."""
    smin = int(sizes[0])
    smax = int(sizes[-1])
    # Wave path does length/smin Python iterations; filter path does
    # smax Python iterations plus O(length * smax) C work.
    if smin >= 8 or length * smax > 5 * 10**8:
        return _renewal_dp_waves(length, sizes, probs)
    return _renewal_dp_filter(length, sizes, probs)


def expected_scan_boxes(length: int, dist: BoxDistribution) -> float:
    """``E[K(L)]``: expected boxes to complete a scan of ``length``
    accesses in isolation, consuming ``min(sigma, remaining)`` per box.

    Computed by the exact renewal DP
    ``K(r) = 1 + sum_{sigma < r} P(sigma) K(r - sigma)``.  Two exact
    reductions keep it fast at any ``length``:

    * **lattice reduction** — with ``g = gcd(support)``, consumption
      preserves ``r mod g``, and ``K(r) = J(ceil(r/g))`` where ``J`` is
      the DP for the support divided by ``g``;
    * **renewal asymptotics** — for ``m`` beyond a horizon much larger
      than the (reduced) maximum box, the elementary renewal theorem
      gives ``J(m) = m/mu + C + o(1)`` with exponentially small error on
      the span-1 lattice; the constant ``C`` is read off the DP tail, so
      huge scans cost the same as horizon-sized ones.
    """
    if length < 0:
        raise SimulationError(f"scan length must be >= 0, got {length}")
    if length == 0:
        return 0.0
    sizes = dist.support.astype(np.int64)
    probs = dist.probabilities
    g = int(np.gcd.reduce(sizes))
    if g > 1:
        sizes = sizes // g
        length = -(-length // g)  # K(r) = J(ceil(r/g)), exactly
    smax = int(sizes[-1])
    horizon = max(1 << 16, 64 * smax)
    if length <= horizon:
        if length * sizes.size > _SCAN_DP_LIMIT:
            raise SimulationError(
                f"renewal DP too large for reduced length {length}"
            )
        return float(_renewal_dp(length, sizes, probs)[length])
    K = _renewal_dp(horizon, sizes, probs)
    mu = float(np.dot(sizes.astype(np.float64), probs))
    # Average the tail offset over the last smax entries to wash out the
    # residual lattice wobble of K(m) - m/mu.
    tail = np.arange(horizon - smax + 1, horizon + 1)
    offset = float(np.mean(K[tail] - tail / mu))
    return length / mu + offset


def scan_boxes_bounds(length: int, dist: BoxDistribution) -> tuple[float, float]:
    """Wald bounds on ``E[K(L)]``: the truncated consumptions satisfy
    ``L <= sum min(sigma_i, L) < 2L`` deterministically, so
    ``L / E[min(sigma, L)] <= E[K] <= 2L / E[min(sigma, L)]`` —
    the ``E[K] * E[min] = Theta(L)`` identity from Lemma 3's proof."""
    if length < 0:
        raise SimulationError(f"scan length must be >= 0, got {length}")
    if length == 0:
        return (0.0, 0.0)
    denom = dist.expected_min(length)
    return (length / denom, 2.0 * length / denom)


@dataclass(frozen=True)
class LevelRecord:
    """Exact per-level quantities of the recurrence at problem size ``n``.

    ``f``            — expected boxes to complete a size-``n`` problem;
    ``f_prime``      — same, excluding the final (root-level) scan;
    ``q``            — P[a size-``n/b`` child run consumes a box >= n]
                       (0 at the base level);
    ``m_n``          — average n-bounded potential ``E[min(n, sigma)**e]``;
    ``cost_ratio``   — ``f * m_n / n**e``: Definition 3's expectation,
                       normalized (O(1) iff adaptive in expectation);
    ``scan_boxes``   — ``E[K(L)]`` for the level's scan in isolation.
    """

    n: int
    f: float
    f_prime: float
    q: float
    m_n: float
    cost_ratio: float
    scan_boxes: float


@dataclass(frozen=True)
class RecurrenceSolution:
    """Solution of the Lemma-3 recurrence for all levels up to ``n``."""

    spec: RegularSpec
    dist_name: str
    levels: tuple[LevelRecord, ...]

    def level(self, n: int) -> LevelRecord:
        for rec in self.levels:
            if rec.n == n:
                return rec
        raise SimulationError(f"no level with n={n}")

    @property
    def f(self) -> float:
        """``f(n)`` at the top level."""
        return self.levels[-1].f

    @property
    def cost_ratio(self) -> float:
        """Normalized expected cost at the top level (Equation 3)."""
        return self.levels[-1].cost_ratio

    def eq8_product(self) -> float:
        """Equation 8: ``prod_k f(b**k) / f'(b**k)`` over non-base levels.

        The paper proves this aggregate scan correction is O(1) even
        though individual factors may exceed 1.
        """
        prod = 1.0
        for rec in self.levels[1:]:
            if rec.f_prime > 0:
                prod *= rec.f / rec.f_prime
        return prod

    def eq7_violations(self) -> list[int]:
        """Levels where ``f(n)/f(n/b) > a * m_{n/b} / m_n`` (Equation 6
        fails; the paper's motivation for the f' detour)."""
        bad = []
        for prev, cur in zip(self.levels, self.levels[1:]):
            lhs = cur.f / prev.f
            rhs = self.spec.a * prev.m_n / cur.m_n
            if lhs > rhs * (1 + 1e-9):
                bad.append(cur.n)
        return bad


def _solve_key(
    spec: RegularSpec,
    n: int,
    dist: BoxDistribution,
    scan_dp: bool = True,
):
    return (spec, n, distribution_key(dist), scan_dp)


@memoized(maxsize=256, key=_solve_key)
def solve_recurrence(
    spec: RegularSpec,
    n: int,
    dist: BoxDistribution,
    scan_dp: bool = True,
) -> RecurrenceSolution:
    """Solve the Lemma-3 recurrence exactly for all levels up to ``n``.

    Requires the canonical END scan placement.  ``scan_dp=False`` uses the
    Wald midpoint instead of the exact renewal DP for each scan (needed
    when scans are too long for the DP guard); the result is then an
    approximation within the Wald bounds rather than exact.

    Memoized (keyed LRU over the exact spec, size, distribution support,
    and ``scan_dp``): the solver is pure and its
    :class:`RecurrenceSolution` frozen, and experiments re-solve the same
    ``(spec, Σ)`` ladders constantly.  ``solve_recurrence.cache_info()``
    exposes the hit counters; ``cache_clear()`` resets.
    """
    if spec.scan_placement != ScanPlacement.END:
        raise SimulationError(
            "the Lemma-3 recurrence is exact only for trailing scans "
            f"(END placement); spec has {spec.scan_placement!r}"
        )
    depth = spec.validate_problem_size(n)
    e = spec.exponent
    levels: list[LevelRecord] = []

    # Base level: a box completes the base case iff sigma >= base_size;
    # smaller boxes are consumed with no progress (geometric waiting).
    p_base = dist.tail(spec.base_size)
    if p_base <= 0.0:
        raise DistributionError(
            "distribution never produces boxes >= base_size; "
            "the execution can never complete"
        )
    size = spec.base_size
    f_base = 1.0 / p_base
    m_base = dist.bounded_potential_moment(size, e)
    levels.append(
        LevelRecord(
            n=size,
            f=f_base,
            f_prime=f_base,
            q=0.0,
            m_n=m_base,
            cost_ratio=f_base * m_base / float(size) ** e,
            scan_boxes=0.0,
        )
    )

    f_child = f_base
    for _ in range(depth):
        size *= spec.b
        q = dist.tail(size) * f_child
        # Exact identity: q is the expectation of an indicator, hence <= 1.
        q = min(q, 1.0)
        if q < 1.0:
            children = f_child * (1.0 - (1.0 - q) ** spec.a) / q if q > 0 else spec.a * f_child
        else:
            children = f_child  # first child's run always ends everything
        scan_len = spec.scan_length(size)
        if scan_len == 0:
            scan_boxes = 0.0
        elif scan_dp:
            scan_boxes = expected_scan_boxes(scan_len, dist)
        else:
            lo, hi = scan_boxes_bounds(scan_len, dist)
            scan_boxes = 0.5 * (lo + hi)
        f_prime = children
        f_total = children + (1.0 - q) ** spec.a * scan_boxes
        m_n = dist.bounded_potential_moment(size, e)
        levels.append(
            LevelRecord(
                n=size,
                f=f_total,
                f_prime=f_prime,
                q=q,
                m_n=m_n,
                cost_ratio=f_total * m_n / float(size) ** e,
                scan_boxes=scan_boxes,
            )
        )
        f_child = f_total
    return RecurrenceSolution(spec=spec, dist_name=dist.name, levels=tuple(levels))


def expected_boxes(
    spec: RegularSpec, n: int, dist: BoxDistribution, scan_dp: bool = True
) -> float:
    """``f(n)``: exact expected number of i.i.d. boxes to complete a
    size-``n`` execution (Lemma 3)."""
    return solve_recurrence(spec, n, dist, scan_dp=scan_dp).f


def expected_cost_ratio(
    spec: RegularSpec, n: int, dist: BoxDistribution, scan_dp: bool = True
) -> float:
    """Equation 3's quantity, normalized: exact
    ``E[sum_{i<=S_n} min(n, sigma_i)**e] / n**e = f(n) * m_n / n**e``.

    Cache-adaptivity in expectation (Definition 3) says this stays O(1)
    over all ``n`` — Theorem 1's claim, for *any* Σ."""
    return solve_recurrence(spec, n, dist, scan_dp=scan_dp).cost_ratio
