"""Smoothing scenarios: the paper's positive result and three negative ones.

Each scenario runs an ``(a,b,c)``-regular algorithm against a smoothed
version of the adversarial profile and reports realized adaptivity ratios
(``sum min(n, |box|)**e / n**e`` over the boxes actually consumed):

* :func:`iid_ratio_trials` — boxes i.i.d. from any Σ (Theorem 1: ratio
  stays O(1) in expectation, for *any* Σ);
* :func:`shuffled_worst_case_trials` — the headline contrast: the
  worst-case profile's own box multiset, in random order;
* :func:`size_perturbation_trials` — boxes of the (limit) worst-case
  profile scaled by i.i.d. multipliers in ``[0, t]`` (stays worst-case);
* :func:`start_shift_trials` — random cyclic start time in the worst-case
  profile (stays worst-case);
* :func:`order_perturbation_trials` — the big box of each recursive node
  placed after a random copy (stays worst-case w.p. 1).

All streams are infinite (profiles repeat or are re-drawn) so executions
always complete; ratios measure only what was consumed.
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from repro.errors import SimulationError
from repro.algorithms.spec import RegularSpec
from repro.profiles.distributions import BoxDistribution, Empirical
from repro.profiles.perturbations import (
    MultiplierSampler,
    random_start_shift,
)
from repro.profiles.worst_case import (
    order_perturbed_profile,
    worst_case_boxes,
    worst_case_profile,
)
from repro.simulation.symbolic import SymbolicSimulator
from repro.util.rng import as_generator, spawn

__all__ = [
    "iid_ratio_trials",
    "shuffled_worst_case_trials",
    "size_perturbation_trials",
    "start_shift_trials",
    "order_perturbation_trials",
]


def _ratios(values: list[float]) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


def _run_stream(
    spec: RegularSpec, n: int, stream: Iterator[int], completion_divisor: int = 1
) -> float:
    sim = SymbolicSimulator(spec, n, completion_divisor=completion_divisor)
    rec = sim.run_to_completion(stream)
    return rec.adaptivity_ratio


def iid_ratio_trials(
    spec: RegularSpec,
    n: int,
    dist: BoxDistribution,
    trials: int,
    rng: object = None,
    completion_divisor: int = 1,
) -> np.ndarray:
    """Adaptivity ratios of ``trials`` runs on i.i.d. boxes from ``dist``."""
    gens = spawn(rng, trials)
    return _ratios(
        [_run_stream(spec, n, dist.sampler(g), completion_divisor) for g in gens]
    )


def shuffled_worst_case_trials(
    spec: RegularSpec,
    n: int,
    trials: int,
    rng: object = None,
    profile_n: int | None = None,
    completion_divisor: int = 1,
) -> np.ndarray:
    """Random-order worst-case boxes: shuffle the box multiset of
    ``M_{a,b}(profile_n)`` (default ``profile_n = n``); if a run outlasts
    the multiset, it continues with i.i.d. draws from the multiset's
    empirical distribution (the same smoothing in the limit)."""
    profile_n = n if profile_n is None else profile_n
    base = worst_case_profile(spec.a, spec.b, profile_n, spec.base_size)
    empirical = Empirical.of_profile(base, name="empirical-worst-case")
    gens = spawn(rng, trials)
    out = []
    for g in gens:
        shuffled = g.permutation(base.boxes).tolist()
        stream = itertools.chain(iter(shuffled), empirical.sampler(g))
        out.append(_run_stream(spec, n, stream, completion_divisor))
    return _ratios(out)


def _perturbed_limit_stream(
    spec: RegularSpec,
    multipliers: MultiplierSampler,
    gen: np.random.Generator,
    batch: int = 1024,
) -> Iterator[int]:
    """The limit worst-case profile with each box size multiplied by an
    i.i.d. factor; zero-rounded boxes are dropped (they provide nothing)."""
    from repro.profiles.worst_case import limit_profile_boxes

    source = limit_profile_boxes(spec.a, spec.b, spec.base_size)
    while True:
        sizes = np.asarray(list(itertools.islice(source, batch)), dtype=np.float64)
        if sizes.size == 0:
            return
        factors = np.asarray(multipliers(sizes.size, gen), dtype=np.float64)
        perturbed = np.rint(sizes * factors).astype(np.int64)
        for s in perturbed[perturbed >= 1].tolist():
            yield int(s)


def size_perturbation_trials(
    spec: RegularSpec,
    n: int,
    multipliers: MultiplierSampler,
    trials: int,
    rng: object = None,
    completion_divisor: int = 1,
) -> np.ndarray:
    """Ratios under i.i.d. multiplicative box-size perturbation of the
    worst-case limit profile (the paper: remains worst-case in
    expectation)."""
    gens = spawn(rng, trials)
    return _ratios(
        [
            _run_stream(
                spec, n, _perturbed_limit_stream(spec, multipliers, g), completion_divisor
            )
            for g in gens
        ]
    )


def start_shift_trials(
    spec: RegularSpec,
    n: int,
    trials: int,
    rng: object = None,
    profile_n: int | None = None,
    completion_divisor: int = 1,
) -> np.ndarray:
    """Ratios when the algorithm starts at a uniformly random time in the
    cyclic worst-case profile ``M_{a,b}(profile_n)`` (repeating forever)."""
    profile_n = n if profile_n is None else profile_n
    base = worst_case_profile(spec.a, spec.b, profile_n, spec.base_size)
    gens = spawn(rng, trials)
    out = []
    for g in gens:
        shifted = random_start_shift(base, g)
        stream = itertools.chain(iter(shifted), itertools.cycle(base.boxes.tolist()))
        out.append(_run_stream(spec, n, stream, completion_divisor))
    return _ratios(out)


def order_perturbation_trials(
    spec: RegularSpec,
    n: int,
    trials: int,
    rng: object = None,
    adversarial_position: int | None = None,
    completion_divisor: int = 1,
) -> np.ndarray:
    """Ratios under box-order perturbation: each recursive node's big box
    is placed after a random copy (or a fixed ``adversarial_position``).
    Runs continue into fresh independently perturbed profiles if needed."""
    if adversarial_position is not None and not 1 <= adversarial_position <= spec.a:
        raise SimulationError(
            f"adversarial_position must be in [1, {spec.a}]"
        )
    gens = spawn(rng, trials)
    out = []
    for g in gens:
        def fresh_profiles() -> Iterator[int]:
            while True:
                if adversarial_position is None:
                    prof = order_perturbed_profile(
                        spec.a, spec.b, n, spec.base_size, rng=g
                    )
                else:
                    prof = order_perturbed_profile(
                        spec.a,
                        spec.b,
                        n,
                        spec.base_size,
                        position_rule=lambda size, path: adversarial_position,
                    )
                yield from prof
        out.append(_run_stream(spec, n, fresh_profiles(), completion_divisor))
    return _ratios(out)
