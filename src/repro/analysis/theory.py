"""Closed-form predictions for the quantities the experiments measure.

The simulator and the exact solver produce numbers; for several of them
the ``(a, b, c)`` algebra gives clean closed forms, derived here and
verified against the machinery in the test suite.  Having them in code
turns "the measured constant looks right" into an equality check.

* **Worst-case ratio** (canonical adversary, ``a = b^e`` on the lattice):
  every level of ``M_{a,b}(n)`` contributes potential exactly ``n^e``, so
  the ratio is ``log_b(n/base) + 1`` — slope 1, intercept 1.
* **Point-mass i.i.d. limit**: boxes all of size ``s`` (on the lattice,
  ``s = b^j``).  For ``n = s·b^t``: ``f(n) = a^t + Σ_{j=1}^t a^{t-j} b^j``
  (each level's scan costs ``b^j`` boxes), and since ``m_n = s^e`` the
  normalized cost telescopes to

      ``ratio(t) = 1 + (b/(a-b)) · (1 - (b/a)^t)  →  1 + b/(a-b)``.

  For MM-SCAN this limit is exactly 2 — the value the ``iid`` experiment
  converges to.
* **Split-placement adversary slope**: splitting each scan into ``a+1``
  equal pieces turns one level-box of potential ``m^e`` into ``a+1``
  boxes of total potential ``(a+1)·(m/(a+1))^e``, so the per-level ratio
  contribution — and hence the fitted slope — shrinks by exactly
  ``(a+1)^{1-e}`` (1/3 for MM-SCAN).
* **Scan-hiding overhead limit**: the hidden work per leaf is the
  geometric series ``Σ_{j>=1} (b/a)^j`` of scan-to-leaf ratios, so the
  total-work inflation tends to ``1 + b/(a-b)`` — numerically the same
  constant as the point-mass limit (both are the scans' aggregate weight
  relative to the leaves).
"""

from __future__ import annotations

import math

from repro.errors import SpecError
from repro.algorithms.spec import RegularSpec
from repro.util.intmath import ilog, is_power_of

__all__ = [
    "worst_case_ratio_exact",
    "point_mass_limit_ratio",
    "point_mass_ratio_exact",
    "split_adversary_slope",
    "scan_hiding_overhead_limit",
]


def _require_gap_lattice(spec: RegularSpec) -> None:
    if spec.regime != "gap":
        raise SpecError(f"{spec.name} is not in the gap regime (a > b, c = 1)")


def worst_case_ratio_exact(spec: RegularSpec, n: int) -> float:
    """Predicted adaptivity ratio of the canonical adversary.

    Exactly ``log_b(n/base) + 1`` when ``a`` is a power of ``b`` (every
    level contributes ``n^e``); in general
    ``Σ_{k=0..D} (a / b^e)^(D-k)`` which still grows linearly in the
    number of levels.
    """
    depth = spec.validate_problem_size(n)
    e = spec.exponent
    ratio_per_level = spec.a / float(spec.b) ** e
    if math.isclose(ratio_per_level, 1.0, rel_tol=1e-12):
        return float(depth + 1)
    # geometric sum of the per-level potential contributions
    return float(sum(ratio_per_level ** (depth - k) for k in range(depth + 1)))


def point_mass_limit_ratio(spec: RegularSpec) -> float:
    """Limit of the exact expected ratio for lattice point-mass boxes:
    ``1 + b/(a-b)`` (requires ``a > b``, ``c = 1``, ``a = b^e`` exact)."""
    _require_gap_lattice(spec)
    return 1.0 + spec.b / (spec.a - spec.b)


def point_mass_ratio_exact(spec: RegularSpec, s: int, n: int) -> float:
    """Exact expected ratio for boxes all of size ``s`` on a problem of
    size ``n``, both powers of ``b`` with ``base <= s <= n`` and
    ``a = b^e`` exact:

        ``ratio(t) = 1 + (b/(a-b)) (1 - (b/a)^t)``,  ``t = log_b(n/s)``.
    """
    _require_gap_lattice(spec)
    spec.validate_problem_size(n)
    if s < spec.base_size or n % s != 0 or not is_power_of(n // s, spec.b):
        raise SpecError(f"s={s} must divide n={n} on the b-lattice")
    t = ilog(n // s, spec.b)
    a, b = spec.a, spec.b
    return 1.0 + (b / (a - b)) * (1.0 - (b / a) ** t)


def split_adversary_slope(spec: RegularSpec) -> float:
    """Fitted per-level slope of the matched SPLIT-placement adversary,
    relative to the END adversary's slope of 1: ``(a+1)^(1-e)``."""
    _require_gap_lattice(spec)
    return float(spec.a + 1) ** (1.0 - spec.exponent)


def scan_hiding_overhead_limit(spec: RegularSpec) -> float:
    """Limit of the scan-hidden algorithm's work-inflation factor:
    ``1 + Σ_{j>=1} (b/a)^j = 1 + b/(a-b)`` (for ``c = 1``, base 1)."""
    _require_gap_lattice(spec)
    if spec.base_size != 1:
        raise SpecError("closed form stated for base_size = 1")
    return 1.0 + spec.b / (spec.a - spec.b)
