"""``repro.api`` — the blessed programmatic surface.

One import site for the operations every consumer (notebooks, CI
harnesses, downstream scripts, the ``repro serve`` daemon) actually
performs, so callers stop reaching into submodule internals that are
free to move.  Since API v2 the execution surface is built around one
canonical request object:

* :class:`RunRequest` / :class:`RunResponse` — the typed, frozen
  request/response pair every execution path shares (CLI ``run``,
  ``ExperimentRunner``, the serve daemon); their ``to_dict`` forms are
  the wire schema (``docs/API.md``);
* :func:`execute` — run one :class:`RunRequest` through the
  instrumented, cache-aware runtime path and get a typed response;
* :func:`run` / :func:`run_all` — the convenience spellings over
  :func:`execute` (``docs/CACHE.md`` for cache semantics);
* :func:`solve` — the exact Lemma-3 recurrence solver, accepting spec
  names and distribution DSL strings as well as the typed objects;
* :func:`load_artifact` — read a schema-versioned ``RunArtifact`` JSON
  back into the typed form;
* :class:`Cache` — the content-addressed artifact store.

``__all__`` below is the enumerated stability contract, mirrored (with
the serve endpoints) in ``docs/API.md``.  The legacy entry points the
façade replaced (``repro.experiments.registry.run_experiment``,
``repro.experiments.registry.run_all``, top-level ``repro.run_one``)
still work but emit :class:`DeprecationWarning` and route through the
same :class:`RunRequest` path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache.store import Cache
from repro.runtime.request import WIRE_VERSION, RunRequest, RunResponse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.spec import RegularSpec
    from repro.analysis.recurrence import RecurrenceSolution
    from repro.profiles.distributions import BoxDistribution
    from repro.runtime.artifact import RunArtifact

__all__ = [
    "WIRE_VERSION",
    "RunRequest",
    "RunResponse",
    "execute",
    "run",
    "run_all",
    "solve",
    "load_artifact",
    "Cache",
]


def execute(request: RunRequest) -> RunResponse:
    """Execute one typed :class:`RunRequest` through the instrumented,
    cache-aware runtime path and return the typed response.

    This is the canonical v2 entry point: the CLI's ``repro run``, the
    :class:`~repro.runtime.runner.ExperimentRunner` pool, and the
    ``repro serve`` daemon all reduce to it.  ``response.served_from``
    distinguishes a warm store read (``"store"``) from a live
    computation (``"computed"``).
    """
    from repro.runtime.runner import execute as _execute

    return _execute(request)


def run(
    experiment_id: str,
    *,
    quick: bool = True,
    seed: int = 0,
    cache: str = "auto",
    cache_dir: "str | None" = None,
) -> "RunArtifact":
    """Run one registry experiment through the instrumented runtime path.

    Identical semantics to the CLI's ``repro run``: wall time and
    instrumentation counters attached, artifact store consulted under
    ``cache="auto"`` (pass ``"off"`` to always compute, ``"refresh"`` to
    recompute and overwrite).  Sugar for ``execute(RunRequest(...))``.
    """
    return execute(
        RunRequest(
            experiment_id=experiment_id,
            quick=quick,
            seed=seed,
            cache=cache,
            cache_dir=cache_dir,
        )
    ).artifact


def run_all(
    ids: "list[str] | None" = None,
    *,
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    cache: str = "auto",
    cache_dir: "str | None" = None,
) -> "dict[str, RunArtifact]":
    """Run experiments (default: the whole registry, in registration
    order) and return ``{experiment_id: artifact}``.

    ``jobs > 1`` fans :class:`RunRequest` submissions over a process
    pool with bit-identical results at any worker count; ``cache`` is
    stamped into every request.
    """
    from repro.runtime.runner import ExperimentRunner

    runner = ExperimentRunner(jobs=jobs, cache=cache, cache_dir=cache_dir)
    return {
        artifact.experiment_id: artifact
        for artifact in runner.run_iter(ids, quick=quick, seed=seed)
    }


def solve(
    spec: "RegularSpec | str",
    n: int,
    dist: "BoxDistribution | str",
    *,
    scan_dp: bool = True,
) -> "RecurrenceSolution":
    """Solve the exact Lemma-3 recurrence for ``spec`` at size ``n``
    under box-size distribution ``dist``.

    ``spec`` may be a :class:`RegularSpec` or a named spec
    (``"MM-SCAN"``); ``dist`` may be a :class:`BoxDistribution` or the
    CLI's distribution DSL (``"uniform:4:1:5"``, ``"point:16"``, ...).
    Results are memoized (see :mod:`repro.cache.memo`).
    """
    from repro.analysis.recurrence import solve_recurrence

    if isinstance(spec, str):
        from repro.algorithms.library import get_spec

        spec = get_spec(spec)
    if isinstance(dist, str):
        from repro.profiles.parsing import parse_distribution

        dist = parse_distribution(dist)
    return solve_recurrence(spec, n, dist, scan_dp=scan_dp)


def load_artifact(path: str) -> "RunArtifact":
    """Read a ``RunArtifact`` JSON file (as written by ``repro run
    --json`` or stored by the cache) back into the typed artifact."""
    import json

    from repro.errors import ArtifactError
    from repro.runtime.artifact import RunArtifact

    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact {path!r} is not valid JSON: {exc}") from None
    if isinstance(payload, dict) and "artifact" in payload and "key" in payload:
        payload = payload["artifact"]  # a raw cache store entry
    return RunArtifact.from_dict(payload)
