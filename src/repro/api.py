"""``repro.api`` — the blessed programmatic surface.

One import site for the operations every consumer (notebooks, CI
harnesses, downstream scripts) actually performs, so callers stop
reaching into submodule internals that are free to move:

* :func:`run` / :func:`run_all` — execute registry experiments through
  the instrumented, cache-aware runtime path (``docs/CACHE.md``);
* :func:`solve` — the exact Lemma-3 recurrence solver, accepting spec
  names and distribution DSL strings as well as the typed objects;
* :func:`load_artifact` — read a schema-versioned ``RunArtifact`` JSON
  back into the typed form;
* :class:`Cache` — the content-addressed artifact store.

These five names are the stability contract (``docs/API.md``); the
legacy entry points they replace (``repro.experiments.registry.
run_experiment``, ``repro.experiments.registry.run_all``, top-level
``repro.run_one``) still work but emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache.store import Cache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algorithms.spec import RegularSpec
    from repro.analysis.recurrence import RecurrenceSolution
    from repro.profiles.distributions import BoxDistribution
    from repro.runtime.artifact import RunArtifact

__all__ = ["run", "run_all", "solve", "load_artifact", "Cache"]


def run(
    experiment_id: str,
    *,
    quick: bool = True,
    seed: int = 0,
    cache: str = "auto",
    cache_dir: "str | None" = None,
) -> "RunArtifact":
    """Run one registry experiment through the instrumented runtime path.

    Identical semantics to the CLI's ``repro run``: wall time and
    instrumentation counters attached, artifact store consulted under
    ``cache="auto"`` (pass ``"off"`` to always compute, ``"refresh"`` to
    recompute and overwrite).
    """
    from repro.runtime.runner import run_one

    return run_one(
        experiment_id, quick=quick, seed=seed, cache=cache, cache_dir=cache_dir
    )


def run_all(
    ids: "list[str] | None" = None,
    *,
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    cache: str = "auto",
    cache_dir: "str | None" = None,
) -> "dict[str, RunArtifact]":
    """Run experiments (default: the whole registry, in registration
    order) and return ``{experiment_id: artifact}``.

    ``jobs > 1`` fans experiments over a process pool with bit-identical
    results at any worker count; ``cache`` is forwarded to every run.
    """
    from repro.runtime.runner import ExperimentRunner

    runner = ExperimentRunner(jobs=jobs, cache=cache, cache_dir=cache_dir)
    return {
        artifact.experiment_id: artifact
        for artifact in runner.run_iter(ids, quick=quick, seed=seed)
    }


def solve(
    spec: "RegularSpec | str",
    n: int,
    dist: "BoxDistribution | str",
    *,
    scan_dp: bool = True,
) -> "RecurrenceSolution":
    """Solve the exact Lemma-3 recurrence for ``spec`` at size ``n``
    under box-size distribution ``dist``.

    ``spec`` may be a :class:`RegularSpec` or a named spec
    (``"MM-SCAN"``); ``dist`` may be a :class:`BoxDistribution` or the
    CLI's distribution DSL (``"uniform:4:1:5"``, ``"point:16"``, ...).
    Results are memoized (see :mod:`repro.cache.memo`).
    """
    from repro.analysis.recurrence import solve_recurrence

    if isinstance(spec, str):
        from repro.algorithms.library import get_spec

        spec = get_spec(spec)
    if isinstance(dist, str):
        from repro.profiles.parsing import parse_distribution

        dist = parse_distribution(dist)
    return solve_recurrence(spec, n, dist, scan_dp=scan_dp)


def load_artifact(path: str) -> "RunArtifact":
    """Read a ``RunArtifact`` JSON file (as written by ``repro run
    --json`` or stored by the cache) back into the typed artifact."""
    import json

    from repro.errors import ArtifactError
    from repro.runtime.artifact import RunArtifact

    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact {path!r} is not valid JSON: {exc}") from None
    if isinstance(payload, dict) and "artifact" in payload and "key" in payload:
        payload = payload["artifact"]  # a raw cache store entry
    return RunArtifact.from_dict(payload)
