"""``repro.cache`` — content-addressed incremental execution.

Every experiment is a pure function of ``(quick, seed)`` that freezes
into a schema-versioned :class:`~repro.runtime.artifact.RunArtifact`
(the PR-2 contract); this package makes that purity pay rent.  Three
layers:

* :mod:`~repro.cache.fingerprint` — AST-normalized hashing of an
  experiment module plus its transitive first-party imports, so a cache
  entry survives comments and reformatting but not semantic edits;
* :mod:`~repro.cache.store` — the on-disk, content-addressed
  :class:`Cache` of artifacts keyed by ``(experiment id, quick, seed,
  code fingerprint, environment)``, consumed by
  ``run_one(..., cache="auto")``;
* :mod:`~repro.cache.memo` — in-process keyed-LRU memoization (with
  ``cache_info()``) for hot pure kernels
  (:func:`~repro.analysis.recurrence.solve_recurrence`,
  :func:`~repro.profiles.worst_case.worst_case_profile`).

:mod:`~repro.cache.verify` proves stored artifacts bit-identical (modulo
timing) to live recomputation; :mod:`~repro.cache.bench` measures the
cold-vs-warm payoff (``BENCH_cache.json``); :mod:`~repro.cache.history`
accumulates those measurements into a longitudinal trend line with a
regression check; :mod:`~repro.cache.gc` bounds the on-disk store
(sidecar access records, LRU eviction under byte/entry/age budgets,
``.tmp-*`` debris reaping, post-run auto-GC).  See ``docs/CACHE.md``.
"""

from repro.cache.bench import BENCH_SCHEMA_VERSION, run_cache_bench
from repro.cache.gc import (
    DEFAULT_MAX_BYTES,
    AccessRecord,
    Eviction,
    GCBudget,
    GCReport,
    collect,
    read_access_record,
    sidecar_path,
    write_access_record,
)
from repro.cache.history import (
    HISTORY_SCHEMA_VERSION,
    append_record,
    check_regression,
    empty_history,
    load_history,
    render_trend,
)
from repro.cache.fingerprint import (
    Fingerprint,
    FingerprintError,
    clear_fingerprint_caches,
    fingerprint_module,
    module_path,
    normalized_source_digest,
)
from repro.cache.memo import MemoInfo, distribution_key, memoized
from repro.cache.store import (
    CACHE_ENTRY_VERSION,
    Cache,
    CacheEntry,
    CacheKey,
    CacheStats,
    cache_key_for,
    default_cache_dir,
    environment_tag,
)
from repro.cache.verify import VerifyRecord, VerifyReport, verify_store

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "run_cache_bench",
    "DEFAULT_MAX_BYTES",
    "AccessRecord",
    "Eviction",
    "GCBudget",
    "GCReport",
    "collect",
    "read_access_record",
    "sidecar_path",
    "write_access_record",
    "HISTORY_SCHEMA_VERSION",
    "append_record",
    "check_regression",
    "empty_history",
    "load_history",
    "render_trend",
    "Fingerprint",
    "FingerprintError",
    "clear_fingerprint_caches",
    "fingerprint_module",
    "module_path",
    "normalized_source_digest",
    "MemoInfo",
    "distribution_key",
    "memoized",
    "CACHE_ENTRY_VERSION",
    "Cache",
    "CacheEntry",
    "CacheKey",
    "CacheStats",
    "cache_key_for",
    "default_cache_dir",
    "environment_tag",
    "VerifyRecord",
    "VerifyReport",
    "verify_store",
]
