"""Cold-vs-warm cache benchmark: the ``BENCH_cache.json`` producer.

``repro bench`` measures what the artifact store buys on the standard
workload: one *cold* pass over the registry (``cache="refresh"``:
compute everything, populate the store) and one *warm* pass
(``cache="auto"``: every entry should hit), both under ``perf_counter``.
The report records both wall times, their ratio, the hit count, and
whether every warm artifact was bit-identical (modulo timing fields) to
its cold twin — the correctness claim that makes the speedup legitimate
evidence rather than a cut corner.
"""

# repro-lint: disable-file=nondet-wallclock -- a benchmark measures wall
# time by design; timings are reported as evidence, never cached or
# digested.

from __future__ import annotations

import time
from typing import Any

__all__ = ["BENCH_SCHEMA_VERSION", "run_cache_bench"]

BENCH_SCHEMA_VERSION = 1


def run_cache_bench(
    quick: bool = True,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: "str | None" = None,
    ids: "list[str] | None" = None,
) -> dict[str, Any]:
    """Run the cold/warm benchmark and return the BENCH_cache payload."""
    from repro.cache.store import Cache, environment_tag
    from repro.errors import CacheError
    from repro.runtime.provenance import git_revision, repro_version
    from repro.runtime.runner import ExperimentRunner

    cold_runner = ExperimentRunner(jobs=jobs, cache="refresh", cache_dir=cache_dir)
    start = time.perf_counter()
    cold = cold_runner.run(ids, quick=quick, seed=seed)
    cold_wall = time.perf_counter() - start
    if not cold:
        # all() over zero experiments would report bit_identical=True —
        # a vacuous pass the benchmark must not emit as evidence.
        raise CacheError(
            "cache bench ran zero experiments; pass ids=None for the "
            "full registry or a non-empty id list"
        )

    warm_runner = ExperimentRunner(jobs=jobs, cache="auto", cache_dir=cache_dir)
    start = time.perf_counter()
    warm = warm_runner.run(ids, quick=quick, seed=seed)
    warm_wall = time.perf_counter() - start

    if len(warm) != len(cold):
        raise CacheError(
            f"cold/warm passes disagree: {len(cold)} cold vs "
            f"{len(warm)} warm artifacts — the registry changed mid-bench"
        )
    warm_hits = sum(1 for a in warm if a.cache_hit)
    bit_identical = all(
        c.without_timing().to_json() == w.without_timing().to_json()
        for c, w in zip(cold, warm, strict=True)
    )
    store = Cache(cache_dir)
    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "cache-cold-vs-warm",
        "quick": quick,
        "seed": seed,
        "jobs": jobs,
        "experiments": [a.experiment_id for a in cold],
        "cold_wall_time_s": cold_wall,
        "warm_wall_time_s": warm_wall,
        "speedup": (cold_wall / warm_wall) if warm_wall > 0 else None,
        "warm_hits": warm_hits,
        "bit_identical": bit_identical,
        "cache_root": str(store.root),
        "environment": environment_tag(),
        "repro_version": repro_version(),
        "git_revision": git_revision(),
    }
