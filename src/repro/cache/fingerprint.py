"""AST-normalized code fingerprints for cache invalidation.

A cached :class:`~repro.runtime.artifact.RunArtifact` is only reusable
while the code that produced it is unchanged.  "Unchanged" here is
*semantic*, not textual: editing a comment or re-wrapping a line must not
invalidate anything, while editing an expression anywhere in the
experiment's transitive first-party import closure must.  The fingerprint
therefore hashes ``ast.dump(ast.parse(source))`` — the parsed tree, which
comments and whitespace never reach — for the experiment module *and*
every first-party module it transitively imports (including the package
``__init__`` modules that execute along the import chain).

The closure walk is purely static (no module is imported), so it is safe
to fingerprint code that is expensive or side-effectful to load, and it
works on synthetic package trees in tests via the ``root``/``prefix``
parameters.  Per-file digests are memoized on ``(path, mtime, size)`` so
fingerprinting all twenty experiments re-parses each source file once per
process.
"""

from __future__ import annotations

import ast
import hashlib
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import CacheError

__all__ = [
    "FingerprintError",
    "Fingerprint",
    "normalized_source_digest",
    "module_path",
    "first_party_imports",
    "fingerprint_module",
    "fingerprint_symbols",
    "fingerprint_mode",
    "clear_fingerprint_caches",
    "fingerprint_generation",
]


class FingerprintError(CacheError):
    """A module in the fingerprint closure cannot be read or parsed."""


def _default_root() -> Path:
    """Directory containing the top-level ``repro`` package (i.e. ``src``)."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def normalized_source_digest(source: str, *, path: str = "<string>") -> str:
    """SHA-256 of the AST-normalized ``source``.

    Normalization is ``ast.dump`` of the parse tree: comments, whitespace,
    and formatting vanish; every token that can influence execution
    (including docstrings, which are runtime values) survives.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise FingerprintError(f"cannot parse {path}: {exc}") from None
    normalized = ast.dump(tree, include_attributes=False)
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()


def module_path(module: str, root: Path) -> Path | None:
    """Resolve dotted ``module`` to its source file under ``root``.

    Returns the ``<module>.py`` file, the package's ``__init__.py``, or
    ``None`` when neither exists (not first-party, or namespace junk).
    """
    base = root.joinpath(*module.split("."))
    candidate = base.with_suffix(".py")
    if candidate.is_file():
        return candidate
    init = base / "__init__.py"
    if init.is_file():
        return init
    return None


def _resolve_relative(module: str, importing: str, level: int, is_package: bool) -> str | None:
    """Absolute module named by a ``from . import``-style statement issued
    inside ``importing`` (``level`` leading dots)."""
    parts = importing.split(".")
    # Level 1 inside a package __init__ refers to the package itself;
    # inside a plain module it refers to the containing package.
    drop = level - 1 if is_package else level
    if drop >= len(parts):
        return None
    base = parts[: len(parts) - drop]
    if module:
        base = base + module.split(".")
    return ".".join(base)


def first_party_imports(
    tree: ast.Module, importing: str, prefix: str, root: Path
) -> Iterator[str]:
    """Yield the first-party modules statically imported by ``tree``.

    ``import p.q`` yields ``p.q``; ``from p.q import r`` yields ``p.q``
    plus ``p.q.r`` when that resolves to a real submodule file (a
    ``from``-import of a symbol and of a submodule are indistinguishable
    without resolving); relative imports resolve against ``importing``.
    """
    is_package = module_path(importing, root) is not None and (
        module_path(importing, root).name == "__init__.py"  # type: ignore[union-attr]
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name == prefix or name.startswith(prefix + "."):
                    yield name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                resolved = _resolve_relative(
                    node.module or "", importing, node.level, is_package
                )
                if resolved is None:
                    continue
                base = resolved
            else:
                base = node.module or ""
            if not (base == prefix or base.startswith(prefix + ".")):
                continue
            yield base
            for alias in node.names:
                sub = f"{base}.{alias.name}"
                if module_path(sub, root) is not None:
                    yield sub


def _ancestor_packages(module: str) -> Iterator[str]:
    """Every package whose ``__init__`` executes when ``module`` is
    imported (``a.b.c`` -> ``a``, ``a.b``)."""
    parts = module.split(".")
    for i in range(1, len(parts)):
        yield ".".join(parts[:i])


@dataclass(frozen=True)
class Fingerprint:
    """Digest of a module's transitive first-party closure.

    ``digest`` hashes the sorted ``(module, file digest)`` pairs;
    ``modules`` records which modules contributed, for observability
    (``repro cache stats``) and tests.
    """

    module: str
    digest: str
    modules: tuple[str, ...]


# Per-process digest memo: path -> ((mtime_ns, size), digest).  Keyed on
# the stat signature so an edited file re-parses but an unchanged one is
# hashed once per process no matter how many closures include it.
_FILE_DIGESTS: dict[Path, tuple[tuple[int, int], str]] = {}
_CLOSURE_CACHE: dict[tuple[str, str, str], Fingerprint] = {}
_SYMBOL_CACHE: dict[tuple[str, str, str, str], Fingerprint] = {}
# (root, prefix) -> shared incremental GraphBuilder: all experiments of
# one tree extend the same graph instead of re-parsing it 20 times.
_GRAPH_BUILDERS: dict[tuple[str, str], object] = {}

# One lock serializes fingerprint computation across threads.  The memo
# dicts alone would survive concurrency (GIL-atomic, idempotent writes),
# but the shared incremental GraphBuilder would not: two threads
# extending one graph interleave module loads and produce corrupted —
# nondeterministic — digests, which become wrong cache keys.  The serve
# daemon fingerprints from executor threads (the store fast path, and
# every jobs=0 execute), so computation must be single-file; post-warmup
# lookups only hold the lock for a dict probe.
_CACHE_LOCK = threading.RLock()

# Bumped by clear_fingerprint_caches().  Consumers that memoize
# *derived* values (the serve daemon's request-key -> digest hints)
# watch this to drop their memos in the same breath: within one
# process, digests only change when these caches are cleared, so the
# generation is the complete invalidation signal.
_GENERATION = 0


def fingerprint_generation() -> int:
    """A counter that advances whenever the fingerprint memos are
    cleared; anything caching digests derived from them should be
    dropped when it moves."""
    with _CACHE_LOCK:
        return _GENERATION


def clear_fingerprint_caches() -> None:
    """Drop the per-process digest and closure memos (tests)."""
    global _GENERATION
    # Test-only reset of idempotent memos; see waivers below.
    with _CACHE_LOCK:
        _FILE_DIGESTS.clear()  # repro-lint: disable=effect-global-mutation
        _CLOSURE_CACHE.clear()  # repro-lint: disable=effect-global-mutation
        _SYMBOL_CACHE.clear()  # repro-lint: disable=effect-global-mutation
        _GRAPH_BUILDERS.clear()  # repro-lint: disable=effect-global-mutation
        _GENERATION += 1  # repro-lint: disable=effect-global-mutation


def _file_digest(path: Path) -> str:
    stat = path.stat()
    signature = (stat.st_mtime_ns, stat.st_size)
    cached = _FILE_DIGESTS.get(path)
    if cached is not None and cached[0] == signature:
        return cached[1]
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise FingerprintError(f"cannot read {path}: {exc}") from None
    digest = normalized_source_digest(source, path=str(path))
    # Content-keyed memo: same (path, stat) always maps to the same
    # digest, so the write is idempotent and call-order-free.
    _FILE_DIGESTS[path] = (signature, digest)  # repro-lint: disable=effect-global-mutation
    return digest


def fingerprint_module(
    module: str, *, root: Path | None = None, prefix: str | None = None
) -> Fingerprint:
    """Fingerprint ``module`` and its transitive first-party imports.

    ``root`` is the directory containing the top-level package (defaults
    to the installed ``repro`` tree); ``prefix`` is the first-party
    package name (defaults to the first component of ``module``).  The
    walk is static: files are parsed, never imported.
    """
    root = _default_root() if root is None else Path(root)
    if prefix is None:
        prefix = module.split(".")[0]
    # The closure cache is keyed per (module, root, prefix); it is NOT
    # stat-validated, so mutate-and-refingerprint flows (tests, long
    # sessions) must clear_fingerprint_caches() after editing sources.
    # The disk store's correctness does not depend on this cache: it only
    # amortizes repeated fingerprints within one run.
    cache_key = (module, str(root), prefix)
    with _CACHE_LOCK:
        cached = _CLOSURE_CACHE.get(cache_key)
        if cached is not None:
            return cached

        seen: dict[str, str] = {}
        stack = [module]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            path = module_path(current, root)
            if path is None:
                if current == module:
                    raise FingerprintError(
                        f"module {current!r} not found under {root}"
                    )
                continue  # first-party prefix but no file: nothing to hash
            seen[current] = _file_digest(path)
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (OSError, SyntaxError) as exc:
                raise FingerprintError(f"cannot parse {path}: {exc}") from None
            for anc in _ancestor_packages(current):
                if anc == prefix or anc.startswith(prefix + "."):
                    stack.append(anc)
            for imported in first_party_imports(tree, current, prefix, root):
                stack.append(imported)

        combined = hashlib.sha256()
        for name in sorted(seen):
            combined.update(name.encode("utf-8"))
            combined.update(b"\x00")
            combined.update(seen[name].encode("utf-8"))
            combined.update(b"\x00")
        fp = Fingerprint(
            module=module,
            digest=combined.hexdigest(),
            modules=tuple(sorted(seen)),
        )
        # Content-keyed memo: idempotent, call-order-free (see
        # _FILE_DIGESTS).
        _CLOSURE_CACHE[cache_key] = fp  # repro-lint: disable=effect-global-mutation
        return fp


def fingerprint_mode() -> str:
    """Which closure granularity cache keys use.

    ``symbol`` (the default) fingerprints only the code *reachable* from
    the experiment's entry point through the analyzer's reference graph,
    so editing one experiment's private helper invalidates only that
    experiment's entries.  ``module`` is the PR-3 behavior: hash every
    transitively imported file whole.  Set ``REPRO_CACHE_FINGERPRINT``
    to choose; unknown values raise so a typo cannot silently flip the
    invalidation semantics of the whole store.
    """
    import os

    # Granularity knob: changes *which key* a run looks up, never what
    # any cached entry contains — both modes are sound, symbol mode is
    # merely finer.
    raw = os.environ.get("REPRO_CACHE_FINGERPRINT", "symbol")  # repro-lint: disable=nondet-env
    mode = raw.strip().lower() or "symbol"
    if mode not in ("symbol", "module"):
        raise FingerprintError(
            f"REPRO_CACHE_FINGERPRINT must be 'symbol' or 'module', got {raw!r}"
        )
    return mode


def fingerprint_symbols(
    module: str,
    *,
    entry: str = "run",
    root: Path | None = None,
    prefix: str | None = None,
) -> Fingerprint:
    """Fingerprint the code *reachable* from ``module``'s entry point.

    Builds (lazily, memoized per process) the analyzer's project-wide
    reference graph (:mod:`repro.devtools.analyze`), walks forward from
    ``module.entry`` and from ``module``'s import-time body, and hashes
    one digest per reachable symbol: the full ``def``/``class`` node for
    named symbols, the body-stripped import-time surface for each
    module's ``<module>`` pseudo-symbol.  A comment-only edit anywhere
    changes nothing; editing a helper only changes keys whose entry can
    reach it.

    ``entry`` need not be a plain top-level ``def``: a runner built by
    indirection — ``run = functools.partial(_impl, ...)``, a decorator
    assignment ``run = wrap(_impl)``, or a re-export ``from .impl
    import run`` — resolves through the analyzer's binding table to the
    code that actually defines it (module-level assignments digest
    through the module body, whose references reach the wrapped
    callable).  Only when the name is genuinely dynamic (``__getattr__``,
    ``setattr``) does the entry set fall back to every symbol of
    ``module``: over-approximating keeps the key sound.

    Same caveat as :func:`fingerprint_module`: the memo is not
    stat-validated — call :func:`clear_fingerprint_caches` after editing
    sources mid-process.
    """
    # Imported lazily: repro.devtools.analyze.project imports
    # module_path from this module at its top level.
    from repro.devtools.analyze.callgraph import GraphBuilder, reachable_from
    from repro.devtools.analyze.symbols import (
        MODULE_SYMBOL,
        import_time_digest,
        symbol_digest,
    )
    from repro.devtools.analyze.project import Project
    from repro.errors import AnalysisError

    root = _default_root() if root is None else Path(root)
    if prefix is None:
        prefix = module.split(".")[0]
    cache_key = (module, entry, str(root), prefix)
    # The lock is load-bearing here, not just for the memo dicts: the
    # shared incremental GraphBuilder mutates under build(), and two
    # threads extending it concurrently would corrupt the graph and
    # digest nondeterministically.
    with _CACHE_LOCK:
        cached = _SYMBOL_CACHE.get(cache_key)
        if cached is not None:
            return cached

        if module_path(module, root) is None:
            raise FingerprintError(f"module {module!r} not found under {root}")
        builder_key = (str(root), prefix)
        shared = _GRAPH_BUILDERS.get(builder_key)
        if isinstance(shared, tuple) and isinstance(shared[0], GraphBuilder):
            builder, digests = shared
        else:
            builder = GraphBuilder(Project([root], prefixes=[prefix]))
            digests = {}
            # Shared content-keyed memo, same contract as _FILE_DIGESTS.
            _GRAPH_BUILDERS[builder_key] = (builder, digests)  # repro-lint: disable=effect-global-mutation
        try:
            graph = builder.build([module])
            # Follow partial/decorator/re-export indirection: a module-
            # level ``run = ...`` assignment resolves to the module body,
            # a re-exported name to its defining symbol.  Resolution may
            # load new modules; flush their edges before walking
            # reachability.
            resolved = builder.resolve_symbol(module, entry)
            if resolved is not None:
                graph = builder.build([])
        except AnalysisError as exc:
            raise FingerprintError(str(exc)) from None

        entries = {(module, MODULE_SYMBOL)}
        if resolved is not None:
            entries.add(resolved)
        else:
            entries.update(
                key for key in graph.symbols if key[0] == module
            )
        reachable = reachable_from(graph, entries)

        combined = hashlib.sha256()
        modules: set[str] = set()
        for mod, name in sorted(reachable):
            table = graph.tables[mod]
            digest = digests.get((mod, name))
            if digest is None:
                if name == MODULE_SYMBOL:
                    digest = import_time_digest(table.info)
                else:
                    digest = symbol_digest(table.nodes[name])
                digests[mod, name] = digest
            modules.add(mod)
            combined.update(f"{mod}::{name}".encode("utf-8"))
            combined.update(b"\x00")
            combined.update(digest.encode("utf-8"))
            combined.update(b"\x00")
        fp = Fingerprint(
            module=module,
            digest=combined.hexdigest(),
            modules=tuple(sorted(modules)),
        )
        # Content-keyed memo: idempotent, call-order-free (see
        # _FILE_DIGESTS).
        _SYMBOL_CACHE[cache_key] = fp  # repro-lint: disable=effect-global-mutation
        return fp
