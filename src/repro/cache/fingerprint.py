"""AST-normalized code fingerprints for cache invalidation.

A cached :class:`~repro.runtime.artifact.RunArtifact` is only reusable
while the code that produced it is unchanged.  "Unchanged" here is
*semantic*, not textual: editing a comment or re-wrapping a line must not
invalidate anything, while editing an expression anywhere in the
experiment's transitive first-party import closure must.  The fingerprint
therefore hashes ``ast.dump(ast.parse(source))`` — the parsed tree, which
comments and whitespace never reach — for the experiment module *and*
every first-party module it transitively imports (including the package
``__init__`` modules that execute along the import chain).

The closure walk is purely static (no module is imported), so it is safe
to fingerprint code that is expensive or side-effectful to load, and it
works on synthetic package trees in tests via the ``root``/``prefix``
parameters.  Per-file digests are memoized on ``(path, mtime, size)`` so
fingerprinting all twenty experiments re-parses each source file once per
process.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import CacheError

__all__ = [
    "FingerprintError",
    "Fingerprint",
    "normalized_source_digest",
    "module_path",
    "first_party_imports",
    "fingerprint_module",
    "clear_fingerprint_caches",
]


class FingerprintError(CacheError):
    """A module in the fingerprint closure cannot be read or parsed."""


def _default_root() -> Path:
    """Directory containing the top-level ``repro`` package (i.e. ``src``)."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def normalized_source_digest(source: str, *, path: str = "<string>") -> str:
    """SHA-256 of the AST-normalized ``source``.

    Normalization is ``ast.dump`` of the parse tree: comments, whitespace,
    and formatting vanish; every token that can influence execution
    (including docstrings, which are runtime values) survives.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise FingerprintError(f"cannot parse {path}: {exc}") from None
    normalized = ast.dump(tree, include_attributes=False)
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()


def module_path(module: str, root: Path) -> Path | None:
    """Resolve dotted ``module`` to its source file under ``root``.

    Returns the ``<module>.py`` file, the package's ``__init__.py``, or
    ``None`` when neither exists (not first-party, or namespace junk).
    """
    base = root.joinpath(*module.split("."))
    candidate = base.with_suffix(".py")
    if candidate.is_file():
        return candidate
    init = base / "__init__.py"
    if init.is_file():
        return init
    return None


def _resolve_relative(module: str, importing: str, level: int, is_package: bool) -> str | None:
    """Absolute module named by a ``from . import``-style statement issued
    inside ``importing`` (``level`` leading dots)."""
    parts = importing.split(".")
    # Level 1 inside a package __init__ refers to the package itself;
    # inside a plain module it refers to the containing package.
    drop = level - 1 if is_package else level
    if drop >= len(parts):
        return None
    base = parts[: len(parts) - drop]
    if module:
        base = base + module.split(".")
    return ".".join(base)


def first_party_imports(
    tree: ast.Module, importing: str, prefix: str, root: Path
) -> Iterator[str]:
    """Yield the first-party modules statically imported by ``tree``.

    ``import p.q`` yields ``p.q``; ``from p.q import r`` yields ``p.q``
    plus ``p.q.r`` when that resolves to a real submodule file (a
    ``from``-import of a symbol and of a submodule are indistinguishable
    without resolving); relative imports resolve against ``importing``.
    """
    is_package = module_path(importing, root) is not None and (
        module_path(importing, root).name == "__init__.py"  # type: ignore[union-attr]
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name == prefix or name.startswith(prefix + "."):
                    yield name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                resolved = _resolve_relative(
                    node.module or "", importing, node.level, is_package
                )
                if resolved is None:
                    continue
                base = resolved
            else:
                base = node.module or ""
            if not (base == prefix or base.startswith(prefix + ".")):
                continue
            yield base
            for alias in node.names:
                sub = f"{base}.{alias.name}"
                if module_path(sub, root) is not None:
                    yield sub


def _ancestor_packages(module: str) -> Iterator[str]:
    """Every package whose ``__init__`` executes when ``module`` is
    imported (``a.b.c`` -> ``a``, ``a.b``)."""
    parts = module.split(".")
    for i in range(1, len(parts)):
        yield ".".join(parts[:i])


@dataclass(frozen=True)
class Fingerprint:
    """Digest of a module's transitive first-party closure.

    ``digest`` hashes the sorted ``(module, file digest)`` pairs;
    ``modules`` records which modules contributed, for observability
    (``repro cache stats``) and tests.
    """

    module: str
    digest: str
    modules: tuple[str, ...]


# Per-process digest memo: path -> ((mtime_ns, size), digest).  Keyed on
# the stat signature so an edited file re-parses but an unchanged one is
# hashed once per process no matter how many closures include it.
_FILE_DIGESTS: dict[Path, tuple[tuple[int, int], str]] = {}
_CLOSURE_CACHE: dict[tuple[str, str, str], Fingerprint] = {}


def clear_fingerprint_caches() -> None:
    """Drop the per-process digest and closure memos (tests)."""
    _FILE_DIGESTS.clear()
    _CLOSURE_CACHE.clear()


def _file_digest(path: Path) -> str:
    stat = path.stat()
    signature = (stat.st_mtime_ns, stat.st_size)
    cached = _FILE_DIGESTS.get(path)
    if cached is not None and cached[0] == signature:
        return cached[1]
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise FingerprintError(f"cannot read {path}: {exc}") from None
    digest = normalized_source_digest(source, path=str(path))
    _FILE_DIGESTS[path] = (signature, digest)
    return digest


def fingerprint_module(
    module: str, *, root: Path | None = None, prefix: str | None = None
) -> Fingerprint:
    """Fingerprint ``module`` and its transitive first-party imports.

    ``root`` is the directory containing the top-level package (defaults
    to the installed ``repro`` tree); ``prefix`` is the first-party
    package name (defaults to the first component of ``module``).  The
    walk is static: files are parsed, never imported.
    """
    root = _default_root() if root is None else Path(root)
    if prefix is None:
        prefix = module.split(".")[0]
    # The closure cache is keyed per (module, root, prefix); it is NOT
    # stat-validated, so mutate-and-refingerprint flows (tests, long
    # sessions) must clear_fingerprint_caches() after editing sources.
    # The disk store's correctness does not depend on this cache: it only
    # amortizes repeated fingerprints within one run.
    cache_key = (module, str(root), prefix)
    cached = _CLOSURE_CACHE.get(cache_key)
    if cached is not None:
        return cached

    seen: dict[str, str] = {}
    stack = [module]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        path = module_path(current, root)
        if path is None:
            if current == module:
                raise FingerprintError(
                    f"module {current!r} not found under {root}"
                )
            continue  # first-party prefix but no file: nothing to hash
        seen[current] = _file_digest(path)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError) as exc:
            raise FingerprintError(f"cannot parse {path}: {exc}") from None
        for anc in _ancestor_packages(current):
            if anc == prefix or anc.startswith(prefix + "."):
                stack.append(anc)
        for imported in first_party_imports(tree, current, prefix, root):
            stack.append(imported)

    combined = hashlib.sha256()
    for name in sorted(seen):
        combined.update(name.encode("utf-8"))
        combined.update(b"\x00")
        combined.update(seen[name].encode("utf-8"))
        combined.update(b"\x00")
    fp = Fingerprint(
        module=module, digest=combined.hexdigest(), modules=tuple(sorted(seen))
    )
    _CLOSURE_CACHE[cache_key] = fp
    return fp
