"""Budgeted garbage collection for the artifact store.

PR 3 left the on-disk store unbounded: every ``(experiment, quick,
seed, fingerprint, environment)`` combination ever computed stays on
disk until someone runs ``repro cache clear``.  This module bounds it.
Each entry gains a *sidecar access record* — a hidden
``.meta-<digest>.json`` next to the entry, maintained best-effort by
:meth:`Cache.put` / :meth:`Cache.get` — holding created/last-access
timestamps, a hit count, and the entry's byte size.  The sidecar never
touches the content-addressed entry payload, so stores written before
this PR stay readable (a missing sidecar is synthesized from the entry
file's mtime).

:func:`collect` evicts under a :class:`GCBudget` (``max_bytes`` /
``max_entries`` / ``max_age_days`` / ``max_lifetime_days``) in LRU
order with size awareness
(among equally-stale entries the larger one goes first), always reaping
orphaned ``.tmp-*`` write debris and orphaned sidecars before counting
live entries against the budget.  Cumulative counters persist in a
hidden ``.gc-state.json`` at the store root so ``repro cache stats``
and the run manifest can report what GC has done.

Auto-GC: :func:`auto_collect` runs after every
:class:`~repro.runtime.runner.ExperimentRunner` pass that touched the
store, with budgets from ``REPRO_CACHE_MAX_BYTES`` (default 1 GiB; 0 or
negative disables the byte budget), ``REPRO_CACHE_MAX_ENTRIES``,
``REPRO_CACHE_MAX_AGE_DAYS``, and ``REPRO_CACHE_MAX_LIFETIME_DAYS``.
Set ``REPRO_CACHE_GC=off`` to disable auto-GC entirely (explicit
``repro cache gc`` still works).

``max_age_days`` and ``max_lifetime_days`` differ in which timestamp
they read: age is *last access* (idle entries expire; a warm hit
resets the clock), lifetime is *creation* (an entry expires D days
after its ``put`` no matter how often it keeps hitting — a hard
freshness ceiling for long-lived CI caches).

Timestamps here are *civil* wall-clock time on purpose: they order
events across processes and machine reboots, which monotonic clocks
cannot do.  No durations are measured from them (the
``wallclock-discipline`` rule stays satisfied — the source is
``datetime``, never ``time.time``).
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, replace
from datetime import datetime, timezone
from itertools import chain
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.cache.lock import entry_lock, try_reap_lock
from repro.errors import CacheError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import Cache

__all__ = [
    "SIDECAR_VERSION",
    "GC_STATE_VERSION",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_TMP_GRACE_S",
    "AccessRecord",
    "GCBudget",
    "Eviction",
    "GCReport",
    "sidecar_path",
    "read_access_record",
    "write_access_record",
    "record_put",
    "record_hit",
    "buffered_access_records",
    "iter_debris",
    "iter_lock_files",
    "collect",
    "auto_collect",
    "read_gc_state",
]

SIDECAR_VERSION = 1
GC_STATE_VERSION = 1

#: Default byte budget for auto-GC when ``REPRO_CACHE_MAX_BYTES`` is unset.
DEFAULT_MAX_BYTES = 1 << 30  # 1 GiB

#: A ``.tmp-*`` file younger than this may be a write in flight; older
#: ones are orphaned debris (a crashed or failed ``put``) and are reaped.
DEFAULT_TMP_GRACE_S = 3600.0

_GC_STATE_NAME = ".gc-state.json"
_GC_OFF_VALUES = frozenset({"off", "0", "false", "no"})


def _utcnow_s() -> float:
    """Current civil time as a UTC epoch timestamp (ordering only)."""
    # GC age/lifetime policy is wall-clock by definition; timestamps
    # steer eviction only and never reach cached payloads.
    return datetime.now(timezone.utc).timestamp()  # repro-lint: disable=nondet-wallclock


# -- sidecar access records ------------------------------------------------


@dataclass(frozen=True)
class AccessRecord:
    """Per-entry usage bookkeeping stored in the hidden sidecar file."""

    created: float
    last_access: float
    hits: int
    size_bytes: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "sidecar_version": SIDECAR_VERSION,
            "created": self.created,
            "last_access": self.last_access,
            "hits": self.hits,
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AccessRecord":
        try:
            return cls(
                created=float(payload["created"]),
                last_access=float(payload["last_access"]),
                hits=int(payload["hits"]),
                size_bytes=int(payload["size_bytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CacheError(f"malformed sidecar payload: {exc}") from None


def sidecar_path(entry_path: Path) -> Path:
    """The hidden sidecar next to ``<shard>/<digest>.json``.

    The leading dot keeps sidecars out of every ``*``-glob the store
    uses for entries, so they can never be mistaken for entries (or be
    discarded as corrupt ones)."""
    return entry_path.parent / f".meta-{entry_path.name}"


def read_access_record(entry_path: Path) -> AccessRecord | None:
    """The sidecar record for ``entry_path``, or ``None`` when missing
    or unreadable.  Corruption is tolerated, never fatal: the GC can
    always synthesize a record from the entry file's stat."""
    try:
        payload = json.loads(
            sidecar_path(entry_path).read_text(encoding="utf-8")
        )
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("sidecar_version") != SIDECAR_VERSION:
        return None
    try:
        return AccessRecord.from_dict(payload)
    except CacheError:
        return None


def write_access_record(entry_path: Path, record: AccessRecord) -> None:
    """Atomically write ``record`` as ``entry_path``'s sidecar.

    Uses the same ``.tmp-`` prefix as entry writes so a crashed sidecar
    write is reaped by the same debris sweep.  Raises ``OSError`` on
    failure; the best-effort wrappers below swallow it."""
    target = sidecar_path(entry_path)
    fd, tmp = tempfile.mkstemp(
        dir=target.parent, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(record.to_dict(), fh)
            fh.write("\n")
        os.replace(tmp, target)
    except Exception:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _synthesized_record(entry_path: Path) -> AccessRecord | None:
    """Access record inferred from the entry file alone (pre-GC stores,
    lost or corrupt sidecars): created = last access = mtime, 0 hits."""
    try:
        st = entry_path.stat()
    except OSError:
        return None
    return AccessRecord(
        created=st.st_mtime,
        last_access=st.st_mtime,
        hits=0,
        size_bytes=st.st_size,
    )


def record_put(entry_path: Path, now: float | None = None) -> None:
    """Stamp a fresh sidecar after a ``put`` (best-effort: a failed
    sidecar write must never fail the put that succeeded).

    Inside :func:`buffered_access_records` the write is deferred: the
    pending state for the entry is *replaced* (a put starts a fresh
    record), and one coalesced sidecar lands at flush time."""
    now = _utcnow_s() if now is None else now
    if _BUFFER is not None:
        _BUFFER.note_put(entry_path, now)
        return
    try:
        size = entry_path.stat().st_size
        write_access_record(
            entry_path,
            AccessRecord(
                created=now, last_access=now, hits=0, size_bytes=size
            ),
        )
    except OSError:
        pass


def record_hit(entry_path: Path, now: float | None = None) -> None:
    """Bump the sidecar on a ``get`` hit (best-effort, like
    :func:`record_put`); a missing/corrupt sidecar is re-synthesized.

    Inside :func:`buffered_access_records` hits accumulate in memory and
    one coalesced sidecar write happens at flush time."""
    now = _utcnow_s() if now is None else now
    if _BUFFER is not None:
        _BUFFER.note_hit(entry_path, now)
        return
    record = read_access_record(entry_path) or _synthesized_record(entry_path)
    if record is None:  # entry vanished under us (concurrent gc/clear)
        return
    try:
        write_access_record(
            entry_path,
            replace(record, last_access=now, hits=record.hits + 1),
        )
    except OSError:
        pass


class _AccessBuffer:
    """In-process pending sidecar updates: at most one disk write per
    touched entry at flush, regardless of how many puts/hits landed."""

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        # entry path -> [put timestamp or None, buffered hits, last access]
        self._pending: dict[Path, list[Any]] = {}

    def note_put(self, entry_path: Path, now: float) -> None:
        self._pending[entry_path] = [now, 0, now]

    def note_hit(self, entry_path: Path, now: float) -> None:
        state = self._pending.get(entry_path)
        if state is None:
            self._pending[entry_path] = [None, 1, now]
        else:
            state[1] += 1
            state[2] = now

    def flush(self) -> int:
        """Write the coalesced sidecars; the number actually written.
        Entries that vanished under the buffer (concurrent gc/clear)
        are skipped, matching the unbuffered best-effort contract."""
        written = 0
        for entry_path, (put_now, hits, last) in self._pending.items():
            if put_now is not None:
                try:
                    size = entry_path.stat().st_size
                except OSError:
                    continue  # entry vanished: nothing to describe
                record = AccessRecord(
                    created=put_now,
                    last_access=last,
                    hits=hits,
                    size_bytes=size,
                )
            else:
                base = read_access_record(entry_path) or _synthesized_record(
                    entry_path
                )
                if base is None:
                    continue
                record = replace(
                    base, last_access=last, hits=base.hits + hits
                )
            try:
                write_access_record(entry_path, record)
            except OSError:
                continue
            written += 1
        self._pending.clear()
        return written


_BUFFER: _AccessBuffer | None = None


@contextmanager
def buffered_access_records() -> Iterator[None]:
    """Defer sidecar writes for the duration of the block.

    ``Cache.get``/``Cache.put`` inside the block update an in-memory
    buffer instead of rewriting ``.meta-*.json`` per access; the block's
    exit flushes one coalesced write per touched entry (even on error —
    accesses that happened, happened).  Re-entrant: an inner block joins
    the outer buffer, whose exit does the flush.  Per-process only — a
    worker pool's processes each write immediately as before.
    """
    global _BUFFER
    if _BUFFER is not None:
        yield
        return
    # Scoped swap of the process-wide buffer slot: set on entry, always
    # restored to None on exit — bookkeeping, not cached state.
    _BUFFER = _AccessBuffer()  # repro-lint: disable=effect-global-mutation
    try:
        yield
    finally:
        buffer, _BUFFER = _BUFFER, None  # repro-lint: disable=effect-global-mutation
        buffer.flush()


# -- budgets ---------------------------------------------------------------


def _env_int(name: str) -> int | None:
    # Operator budget knob: read once per collection, steers eviction
    # only — never influences cached payloads.
    raw = os.environ.get(name)  # repro-lint: disable=nondet-env
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw)
    except ValueError:
        raise CacheError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


def _env_float(name: str) -> float | None:
    # Operator budget knob, same contract as _env_int.
    raw = os.environ.get(name)  # repro-lint: disable=nondet-env
    if raw is None or not raw.strip():
        return None
    try:
        return float(raw)
    except ValueError:
        raise CacheError(f"{name} must be a number, got {raw!r}") from None


@dataclass(frozen=True)
class GCBudget:
    """Capacity budgets for one collection.  ``None`` disables a limit."""

    max_bytes: int | None = DEFAULT_MAX_BYTES
    max_entries: int | None = None
    max_age_days: float | None = None
    max_lifetime_days: float | None = None
    tmp_grace_s: float = DEFAULT_TMP_GRACE_S

    @classmethod
    def from_env(cls) -> "GCBudget":
        """Budgets from ``REPRO_CACHE_MAX_BYTES`` (default 1 GiB; <= 0
        disables), ``REPRO_CACHE_MAX_ENTRIES``,
        ``REPRO_CACHE_MAX_AGE_DAYS``, and
        ``REPRO_CACHE_MAX_LIFETIME_DAYS`` (unset/<= 0 disables each)."""
        max_bytes: int | None = _env_int("REPRO_CACHE_MAX_BYTES")
        if max_bytes is None:
            max_bytes = DEFAULT_MAX_BYTES
        elif max_bytes <= 0:
            max_bytes = None
        max_entries = _env_int("REPRO_CACHE_MAX_ENTRIES")
        if max_entries is not None and max_entries <= 0:
            max_entries = None
        max_age_days = _env_float("REPRO_CACHE_MAX_AGE_DAYS")
        if max_age_days is not None and max_age_days <= 0:
            max_age_days = None
        max_lifetime_days = _env_float("REPRO_CACHE_MAX_LIFETIME_DAYS")
        if max_lifetime_days is not None and max_lifetime_days <= 0:
            max_lifetime_days = None
        return cls(
            max_bytes=max_bytes,
            max_entries=max_entries,
            max_age_days=max_age_days,
            max_lifetime_days=max_lifetime_days,
        )


# -- collection ------------------------------------------------------------


@dataclass(frozen=True)
class Eviction:
    """One evicted (or would-be evicted, under ``--dry-run``) entry."""

    digest: str
    size_bytes: int
    reason: str  # "lifetime" | "age" | "entries" | "bytes"


@dataclass(frozen=True)
class GCReport:
    """What one :func:`collect` pass did (or would do, when dry)."""

    root: Path
    dry_run: bool
    examined_entries: int
    examined_bytes: int
    evicted_entries: int
    evicted_bytes: int
    reaped_tmp_files: int
    reaped_tmp_bytes: int
    surviving_entries: int
    surviving_bytes: int
    evictions: tuple[Eviction, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """Counter payload for ``repro cache gc --json`` and the run
        manifest (the per-entry eviction list stays out: manifests
        record totals, not ledger lines)."""
        return {
            "dry_run": self.dry_run,
            "examined_entries": self.examined_entries,
            "examined_bytes": self.examined_bytes,
            "evicted_entries": self.evicted_entries,
            "evicted_bytes": self.evicted_bytes,
            "reaped_tmp_files": self.reaped_tmp_files,
            "reaped_tmp_bytes": self.reaped_tmp_bytes,
            "surviving_entries": self.surviving_entries,
            "surviving_bytes": self.surviving_bytes,
        }


@dataclass(frozen=True)
class _Inventory:
    """One live entry with its (possibly synthesized) access record."""

    path: Path
    digest: str
    record: AccessRecord


def iter_debris(root: Path) -> Iterator[Path]:
    """Every ``.tmp-*`` file under the store (root level for state/
    history writes, both shard depths for entry/sidecar writes — the
    sharded ``ab/cd/`` layout plus the legacy one-level one).  The
    hidden prefix is why the plain ``*``-globs elsewhere never see
    these."""
    if not root.is_dir():
        return
    yield from sorted(
        chain(
            root.glob(".tmp-*"),
            root.glob("*/.tmp-*"),
            root.glob("*/*/.tmp-*"),
        )
    )


def iter_lock_files(root: Path) -> Iterator[Path]:
    """Every per-entry ``.lock-*`` file under the store, at every layout
    depth.  Lock files are never unlinked by their holders (see
    :mod:`repro.cache.lock`), so the GC owns their whole reap path."""
    if not root.is_dir():
        return
    yield from sorted(
        chain(root.glob("*/.lock-*"), root.glob("*/*/.lock-*"))
    )


def _iter_orphan_sidecars(root: Path) -> Iterator[Path]:
    """Sidecars whose entry is gone (evicted/cleared by an older build,
    or the entry write failed after the sidecar landed), at every
    layout depth the store has ever used."""
    if not root.is_dir():
        return
    for sidecar in sorted(
        chain(
            root.glob(".meta-*.json"),
            root.glob("*/.meta-*.json"),
            root.glob("*/*/.meta-*.json"),
        )
    ):
        entry = sidecar.parent / sidecar.name[len(".meta-"):]
        if not entry.exists():
            yield sidecar


def _iter_orphan_locks(root: Path) -> Iterator[Path]:
    """Lock files guarding a digest with no entry at any layout depth —
    left behind by evictions or clears.  Candidates only: the reap
    itself must still win the non-blocking acquire
    (:func:`repro.cache.lock.try_reap_lock`), so a lock protecting a
    put in flight is never considered orphaned twice."""
    from repro.cache.lock import LOCK_PREFIX

    for lock_file in iter_lock_files(root):
        entry_name = lock_file.name[len(LOCK_PREFIX):]
        digest = entry_name[:-5] if entry_name.endswith(".json") else entry_name
        if (lock_file.parent / entry_name).exists():
            continue
        # The canonical location may differ from the lock's directory
        # only for legacy-layout locks, which this build never writes;
        # still, check the sharded spot before declaring orphanhood.
        if (root / digest[:2] / digest[2:4] / entry_name).exists():
            continue
        yield lock_file


def _unlink_counted(path: Path) -> int:
    """Unlink ``path``; its size if removed, -1 if it slipped away."""
    try:
        size = path.stat().st_size
        path.unlink()
    except OSError:
        return -1
    return size


def collect(
    cache: "Cache",
    budget: GCBudget | None = None,
    dry_run: bool = False,
    now: float | None = None,
) -> GCReport:
    """Bring ``cache`` under ``budget``; reap write debris first.

    Eviction order is LRU with size awareness: candidates sort by last
    access (oldest first), then by size (largest first) among equal
    timestamps, then by digest for determinism.
    ``max_lifetime_days`` evictions (creation-time ceiling — hits do
    not extend it) happen first, then ``max_age_days`` (last-access
    staleness), then ``max_entries``, then ``max_bytes`` (each over
    the survivors of the previous step).  ``dry_run`` counts
    everything and deletes nothing.  Concurrent readers are safe: a
    ``get`` racing an eviction sees an ordinary miss and recomputes.
    """
    budget = GCBudget() if budget is None else budget
    now = _utcnow_s() if now is None else now
    root = cache.root
    empty = GCReport(
        root=root,
        dry_run=dry_run,
        examined_entries=0,
        examined_bytes=0,
        evicted_entries=0,
        evicted_bytes=0,
        reaped_tmp_files=0,
        reaped_tmp_bytes=0,
        surviving_entries=0,
        surviving_bytes=0,
    )
    if not root.is_dir():
        return empty

    # 1. write debris: orphaned .tmp-* files past the grace window, plus
    # sidecars whose entry is gone.  Reaped before budgets so debris can
    # never crowd live entries out of the store.
    reaped_files = 0
    reaped_bytes = 0
    for tmp in iter_debris(root):
        try:
            st = tmp.stat()
        except OSError:
            continue
        if now - st.st_mtime < budget.tmp_grace_s:
            continue  # possibly a write in flight
        if dry_run:
            reaped_files += 1
            reaped_bytes += st.st_size
            continue
        size = _unlink_counted(tmp)
        if size >= 0:
            reaped_files += 1
            reaped_bytes += size
    for sidecar in _iter_orphan_sidecars(root):
        if dry_run:
            try:
                reaped_bytes += sidecar.stat().st_size
            except OSError:
                continue
            reaped_files += 1
            continue
        size = _unlink_counted(sidecar)
        if size >= 0:
            reaped_files += 1
            reaped_bytes += size

    # 2. inventory the live entries (no JSON parsing: GC trusts the
    # layout, not the payloads — corrupt entries are get()'s problem).
    items: list[_Inventory] = []
    for path in cache.iter_entry_paths():
        record = read_access_record(path) or _synthesized_record(path)
        if record is None:
            continue  # vanished mid-walk
        items.append(
            _Inventory(path=path, digest=path.stem, record=record)
        )
    examined_entries = len(items)
    examined_bytes = sum(it.record.size_bytes for it in items)

    # 3. decide victims: oldest access first, larger first on ties.
    items.sort(
        key=lambda it: (
            it.record.last_access,
            -it.record.size_bytes,
            it.digest,
        )
    )
    victims: list[tuple[_Inventory, str]] = []
    survivors = items
    if budget.max_lifetime_days is not None:
        cutoff = now - budget.max_lifetime_days * 86400.0
        expired = [it for it in survivors if it.record.created < cutoff]
        victims.extend((it, "lifetime") for it in expired)
        survivors = [it for it in survivors if it.record.created >= cutoff]
    if budget.max_age_days is not None:
        cutoff = now - budget.max_age_days * 86400.0
        expired = [it for it in survivors if it.record.last_access < cutoff]
        victims.extend((it, "age") for it in expired)
        survivors = [
            it for it in survivors if it.record.last_access >= cutoff
        ]
    if budget.max_entries is not None:
        excess = len(survivors) - budget.max_entries
        if excess > 0:
            victims.extend((it, "entries") for it in survivors[:excess])
            survivors = survivors[excess:]
    if budget.max_bytes is not None:
        surviving_bytes = sum(it.record.size_bytes for it in survivors)
        index = 0
        while surviving_bytes > budget.max_bytes and index < len(survivors):
            victim = survivors[index]
            victims.append((victim, "bytes"))
            surviving_bytes -= victim.record.size_bytes
            index += 1
        survivors = survivors[index:]

    # 4. evict.
    evictions: list[Eviction] = []
    evicted_bytes = 0
    for item, reason in victims:
        if not dry_run:
            # Entry + sidecar go as one locked critical section (the
            # lock is keyed by the digest's canonical path, so it also
            # serializes against puts of a legacy-layout entry).
            with entry_lock(cache.canonical_path(item.digest)):
                size = _unlink_counted(item.path)
                if size < 0:
                    continue  # a concurrent clear/gc got there first
                try:
                    sidecar_path(item.path).unlink()
                except OSError:
                    pass
        evictions.append(
            Eviction(
                digest=item.digest,
                size_bytes=item.record.size_bytes,
                reason=reason,
            )
        )
        evicted_bytes += item.record.size_bytes
    if not dry_run:
        # Reap orphaned lock files — pre-existing ones and the ones the
        # evictions above just orphaned.  Uncounted: locks are empty
        # coordination files, not cached bytes, and counting them would
        # make the debris counters depend on locking history.
        for lock_file in _iter_orphan_locks(root):
            try_reap_lock(lock_file)
        for shard in sorted(root.glob("*/*"), reverse=True) + sorted(
            root.glob("*"), reverse=True
        ):
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass

    report = GCReport(
        root=root,
        dry_run=dry_run,
        examined_entries=examined_entries,
        examined_bytes=examined_bytes,
        evicted_entries=len(evictions),
        evicted_bytes=evicted_bytes,
        reaped_tmp_files=reaped_files,
        reaped_tmp_bytes=reaped_bytes,
        surviving_entries=len(survivors),
        surviving_bytes=sum(it.record.size_bytes for it in survivors),
        evictions=tuple(evictions),
    )
    if not dry_run:
        _update_gc_state(root, report, now)
    return report


# -- persistent GC counters ------------------------------------------------


def read_gc_state(root: Path) -> dict[str, Any] | None:
    """Cumulative GC counters for ``root`` (``.gc-state.json``), or
    ``None`` when no collection has run there yet."""
    try:
        payload = json.loads(
            (root / _GC_STATE_NAME).read_text(encoding="utf-8")
        )
    except (OSError, json.JSONDecodeError):
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("gc_state_version") != GC_STATE_VERSION
    ):
        return None
    return payload


def _update_gc_state(root: Path, report: GCReport, now: float) -> None:
    """Fold ``report`` into the cumulative counters (best-effort)."""
    state = read_gc_state(root) or {
        "gc_state_version": GC_STATE_VERSION,
        "collections": 0,
        "evicted_entries": 0,
        "evicted_bytes": 0,
        "reaped_tmp_files": 0,
        "reaped_tmp_bytes": 0,
    }
    state["collections"] = int(state.get("collections", 0)) + 1
    for counter in (
        "evicted_entries",
        "evicted_bytes",
        "reaped_tmp_files",
        "reaped_tmp_bytes",
    ):
        state[counter] = int(state.get(counter, 0)) + getattr(report, counter)
    state["last"] = dict(report.to_dict(), timestamp=now)
    try:
        fd, tmp = tempfile.mkstemp(dir=root, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(state, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, root / _GC_STATE_NAME)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass  # counters are advisory; never fail a collection over them


# -- auto-GC ---------------------------------------------------------------


def auto_collect(cache_dir: "str | os.PathLike[str] | None") -> GCReport | None:
    """The post-run hook: collect under the environment budgets.

    Returns ``None`` (and does nothing) when ``REPRO_CACHE_GC`` is
    ``off``/``0``/``false``/``no`` or when the store does not exist.  A
    misconfigured budget env var still raises :class:`CacheError` —
    silent misconfiguration would unbound the store again."""
    # Operator kill switch for the post-run hook; eviction policy only.
    if os.environ.get("REPRO_CACHE_GC", "").strip().lower() in _GC_OFF_VALUES:  # repro-lint: disable=nondet-env
        return None
    from repro.cache.store import Cache

    cache = Cache(cache_dir)
    if not cache.root.is_dir():
        return None
    return collect(cache, GCBudget.from_env())
