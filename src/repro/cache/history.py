"""Longitudinal bench history: ``BENCH_cache.json`` as a trend line.

A single cold-vs-warm measurement (:mod:`repro.cache.bench`) proves the
store works *today*; it says nothing about drift.  The empirical cache
literature this repro leans on (Barratt & Zhang 2019; Iacono et al.
2019) is blunt about that: cache claims are only credible as
*longitudinal* measurements.  This module turns ``BENCH_cache.json``
from a single point into an append-only history — one record per
``repro bench --history`` invocation, keyed by git revision and
environment tag — plus a trend renderer and a cold/warm-speedup
regression check comparing the newest record against the median of its
comparable predecessors (same environment, quick flag, and worker
count; wall times from different configurations are not comparable).

File layout (schema-versioned like every artifact in this repo)::

    {
      "history_schema_version": 1,
      "benchmark": "cache-cold-vs-warm",
      "records": [ <bench payload>, ... ]   # oldest first
    }

A legacy single-record ``BENCH_cache.json`` (the PR-3 layout, spotted
by its top-level ``bench_schema_version``) is migrated in place on the
first append, so the trend starts from the measurement that already
exists.  See ``docs/ARTIFACTS.md`` for the record schema.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from statistics import median
from typing import Any

from repro.errors import CacheError

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "DEFAULT_REGRESSION_THRESHOLD",
    "DEFAULT_MIN_BASELINE_RECORDS",
    "empty_history",
    "load_history",
    "append_record",
    "render_trend",
    "check_regression",
]

HISTORY_SCHEMA_VERSION = 1

#: Latest speedup below this fraction of the comparable-median flags a
#: regression.  Generous on purpose: CI wall times are noisy, and a
#: false alarm per commit would train everyone to ignore the check.
DEFAULT_REGRESSION_THRESHOLD = 0.5

#: Comparable prior records required before the check enforces.  One
#: lone predecessor is not a baseline: every environment-tag change
#: (interpreter or numpy upgrade) restarts the comparability class, and
#: judging the second-ever measurement against the first would flag —
#: or mask — plain noise.  Until the class has this much history the
#: verdict stays ``"no-baseline"``.
DEFAULT_MIN_BASELINE_RECORDS = 2


def empty_history(benchmark: str = "cache-cold-vs-warm") -> dict[str, Any]:
    """A fresh, record-less history document for ``benchmark``."""
    return {
        "history_schema_version": HISTORY_SCHEMA_VERSION,
        "benchmark": benchmark,
        "records": [],
    }


def load_history(
    path: "str | os.PathLike[str]",
    benchmark: str = "cache-cold-vs-warm",
) -> dict[str, Any]:
    """Read a history file; a missing file is an empty ``benchmark``
    history.

    A legacy single-record ``BENCH_cache.json`` is wrapped as the first
    record.  Corruption is *loud* (:class:`CacheError`): silently
    restarting the trend would erase exactly the longitudinal evidence
    this file exists to keep.
    """
    p = Path(path)
    try:
        text = p.read_text(encoding="utf-8")
    except FileNotFoundError:
        return empty_history(benchmark)
    except OSError as exc:
        raise CacheError(f"cannot read bench history {p}: {exc}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CacheError(
            f"bench history {p} is not valid JSON: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise CacheError(
            f"bench history {p} must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    if "bench_schema_version" in payload and "records" not in payload:
        # PR-3 layout: one bare bench payload.  Adopt it as record 0.
        history = empty_history()
        history["records"] = [payload]
        return history
    version = payload.get("history_schema_version")
    if version != HISTORY_SCHEMA_VERSION:
        raise CacheError(
            f"unsupported bench history schema_version {version!r} in {p}; "
            f"this build reads version {HISTORY_SCHEMA_VERSION}"
        )
    records = payload.get("records")
    if not isinstance(records, list):
        raise CacheError(f"bench history {p} has no records list")
    return payload


def append_record(
    path: "str | os.PathLike[str]",
    record: dict[str, Any],
    benchmark: str = "cache-cold-vs-warm",
) -> dict[str, Any]:
    """Append ``record`` to the history at ``path`` (atomic write) and
    return the updated history.  Reruns at the same revision append —
    they are new measurements, not corrections."""
    p = Path(path)
    history = load_history(p, benchmark)
    history["records"] = list(history["records"]) + [dict(record)]
    p.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=p.parent, prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(history, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, p)
    except Exception as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        if isinstance(exc, OSError):
            raise CacheError(
                f"cannot write bench history {p}: {exc}"
            ) from None
        raise
    return history


def _config_key(record: dict[str, Any]) -> tuple[Any, Any, Any]:
    """Comparability class of one record: only same-environment,
    same-quick, same-jobs measurements share a baseline."""
    return (
        record.get("environment"),
        record.get("quick"),
        record.get("jobs"),
    )


#: Per-benchmark ``(slow key, fast key, slow header, fast header)`` for
#: the trend table; the cache columns double as the fallback so any
#: future benchmark renders (with dashes) before it gets a row here.
_TREND_COLUMNS = {
    "cache-cold-vs-warm": (
        "cold_wall_time_s", "warm_wall_time_s", "cold(s)", "warm(s)"
    ),
    "sim-scalar-vs-chunked": (
        "scalar_wall_time_s", "chunked_wall_time_s", "scalar(s)", "chunked(s)"
    ),
    "machine-scalar-vs-kernel": (
        "scalar_wall_time_s", "chunked_wall_time_s", "scalar(s)", "kernel(s)"
    ),
}


def render_trend(history: dict[str, Any]) -> str:
    """The history as a text table, oldest record first."""
    from repro.util.tables import format_table

    benchmark = str(history.get("benchmark") or "cache-cold-vs-warm")
    slow_key, fast_key, slow_header, fast_header = _TREND_COLUMNS.get(
        benchmark, _TREND_COLUMNS["cache-cold-vs-warm"]
    )
    rows = []
    for index, record in enumerate(history.get("records", []), start=1):
        speedup = record.get("speedup")
        rows.append(
            (
                index,
                record.get("git_revision") or "-",
                record.get("quick"),
                record.get("jobs", "-"),
                record.get(slow_key),
                record.get(fast_key),
                f"{speedup:.1f}x" if isinstance(speedup, (int, float)) else "-",
                record.get("warm_hits", "-"),
                "yes" if record.get("bit_identical") else "NO",
            )
        )
    if not rows:
        return "bench history: no records yet"
    return format_table(
        [
            "#",
            "revision",
            "quick",
            "jobs",
            slow_header,
            fast_header,
            "speedup",
            "hits",
            "identical",
        ],
        rows,
        title=f"bench history ({benchmark})",
    )


def check_regression(
    history: dict[str, Any],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    min_records: int = DEFAULT_MIN_BASELINE_RECORDS,
) -> dict[str, Any]:
    """Compare the newest record's speedup to its comparable history.

    Baseline = median speedup of earlier records in the same
    comparability class (environment, quick, jobs).  ``status`` is
    ``"ok"``, ``"regression"`` (latest < ``threshold`` x baseline), or
    ``"no-baseline"`` — fewer than ``min_records`` comparable prior
    measurements.  The floor keeps an environment-tag change (which
    restarts the comparability class) from silently re-baselining the
    check on a single noisy point.
    """
    if min_records < 1:
        raise CacheError(f"min_records must be >= 1, got {min_records}")
    records = [
        r
        for r in history.get("records", [])
        if isinstance(r.get("speedup"), (int, float))
    ]
    verdict: dict[str, Any] = {
        "status": "no-baseline",
        "threshold": threshold,
        "min_records": min_records,
        "latest_speedup": None,
        "baseline_speedup": None,
        "ratio": None,
        "baseline_records": 0,
    }
    if not records:
        return verdict
    latest = records[-1]
    latest_speedup = float(latest["speedup"])
    verdict["latest_speedup"] = latest_speedup
    prior = [
        float(r["speedup"])
        for r in records[:-1]
        if _config_key(r) == _config_key(latest)
    ]
    verdict["baseline_records"] = len(prior)
    if len(prior) < min_records:
        return verdict
    baseline = float(median(prior))
    ratio = latest_speedup / baseline if baseline > 0 else None
    verdict["baseline_speedup"] = baseline
    verdict["ratio"] = ratio
    verdict["status"] = (
        "regression" if ratio is not None and ratio < threshold else "ok"
    )
    return verdict
