"""Per-entry advisory file locking for the artifact store.

A single-writer store got away with bare ``mkstemp`` → ``os.replace``
atomicity, but a multi-writer service (``repro serve`` workers, parallel
CI jobs, a GC pass racing live puts) needs the *pair* of files that make
up one entry — the payload and its ``.meta-*`` access sidecar — to move
together.  This module provides that critical section: a hidden
``.lock-<digest>.json`` file next to the entry's canonical location,
held via ``fcntl.flock`` for the duration of a put, a discard, an
eviction, or a layout migration.

Design notes:

* Locks are *advisory* and scoped to one digest: readers never block
  (a ``get`` racing an eviction still sees an ordinary miss), and
  writers for different digests never contend.
* Lock files are never unlinked by their holders — unlink-on-release
  races a concurrent opener onto a dead inode.  Orphaned lock files
  (their entry evicted, or never written) are reaped by the GC, which
  must acquire the lock non-blockingly before unlinking
  (:func:`try_reap_lock`); lockers re-verify after acquisition that the
  path still names the inode they locked and retry otherwise.
* On platforms without ``fcntl`` (Windows) the lock degrades to a
  no-op: single-process use stays correct via rename atomicity, and the
  multi-writer service is documented as POSIX-only (``docs/SERVE.md``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

try:  # pragma: no cover - platform gate
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "LOCK_PREFIX",
    "locking_available",
    "ensure_directory",
    "lock_path_for",
    "entry_lock",
    "try_reap_lock",
]

#: Hidden prefix for lock files (dotted, so entry globs never see them).
LOCK_PREFIX = ".lock-"

#: Retry bound for the acquire/re-verify loop.  Each retry means a
#: concurrent reaper unlinked the lock file between our open and our
#: flock; more than a handful in a row would indicate a pathological
#: reap storm, and failing loudly beats spinning forever.
_MAX_ACQUIRE_ATTEMPTS = 64


def locking_available() -> bool:
    """Whether real ``flock``-based locking is in effect on this host."""
    return fcntl is not None


def ensure_directory(directory: Path) -> None:
    """``mkdir -p`` that tolerates a concurrent GC pruning the path.

    ``Path.mkdir(exist_ok=True)`` has a TOCTOU hole: when the directory
    exists at ``os.mkdir`` time but a concurrent empty-shard prune
    removes it before the ``is_dir()`` re-check, pathlib re-raises
    ``FileExistsError`` for a directory that no longer exists.  Retrying
    converges — the prune only removes *empty* directories, so the races
    are transient."""
    for _ in range(_MAX_ACQUIRE_ATTEMPTS):
        try:
            directory.mkdir(parents=True, exist_ok=True)
            return
        except FileExistsError:
            continue
    raise OSError(
        f"could not create {directory} after "
        f"{_MAX_ACQUIRE_ATTEMPTS} attempts"
    )


def lock_path_for(entry_path: Path) -> Path:
    """The lock file guarding ``entry_path``'s digest.

    Lives next to the entry (callers pass the *canonical* entry path, so
    legacy-layout duplicates of the same digest share one lock)."""
    return entry_path.parent / f"{LOCK_PREFIX}{entry_path.name}"


@contextmanager
def entry_lock(entry_path: Path) -> Iterator[None]:
    """Hold the exclusive advisory lock for ``entry_path``'s digest.

    Blocks until acquired.  Creates the shard directory and the lock
    file as needed; never removes either (see module docstring for the
    reap protocol).  No-op where ``fcntl`` is unavailable.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = lock_path_for(entry_path)
    ensure_directory(lock_path.parent)
    fd = _acquire(lock_path)
    try:
        yield
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


def _acquire(lock_path: Path) -> int:
    """Open-and-flock ``lock_path``, re-verifying the inode after each
    acquisition so a concurrent :func:`try_reap_lock` cannot leave us
    holding a lock on an unlinked (hence unshared) inode."""
    assert fcntl is not None
    for _ in range(_MAX_ACQUIRE_ATTEMPTS):
        try:
            fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        except FileNotFoundError:
            # A concurrent GC pruned the (momentarily empty) shard
            # directory between our mkdir and this open.  Recreate and
            # retry — the prune only ever removes empty directories, so
            # no entry was lost with it.
            ensure_directory(lock_path.parent)
            continue
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                current = os.stat(lock_path)
            except FileNotFoundError:
                # Reaped while we blocked: our inode is orphaned and
                # excludes nobody.  Drop it and take the fresh file.
                pass
            else:
                if os.fstat(fd).st_ino == current.st_ino:
                    return fd
        except OSError:
            os.close(fd)
            raise
        os.close(fd)
    raise OSError(
        f"could not acquire entry lock {lock_path} after "
        f"{_MAX_ACQUIRE_ATTEMPTS} attempts"
    )


def try_reap_lock(lock_path: Path) -> bool:
    """Unlink an orphaned lock file if — and only if — nobody holds it.

    The GC's half of the reap protocol: acquire non-blockingly, unlink
    *while holding*, release.  A held lock (``EWOULDBLOCK``) is left
    alone.  Returns whether the file was removed.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        try:
            lock_path.unlink()
        except OSError:
            return False
        return True
    try:
        fd = os.open(lock_path, os.O_RDWR)
    except OSError:
        return False  # already gone
    try:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            return False  # held by a live writer: not an orphan
        try:
            lock_path.unlink()
        except OSError:
            return False
        return True
    finally:
        os.close(fd)
