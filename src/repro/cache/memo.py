"""Keyed LRU memoization for hot pure kernels.

``functools.lru_cache`` keys on the raw argument tuple, which fails for
the kernels worth memoizing here: :func:`repro.analysis.recurrence.
solve_recurrence` takes a :class:`~repro.profiles.distributions.
BoxDistribution` (unhashable numpy support arrays) and
:func:`repro.profiles.worst_case.worst_case_profile` returns large
immutable profiles worth sharing.  :func:`memoized` accepts an explicit
``key`` function instead, and exposes the same observability surface as
``lru_cache`` — ``cache_info()`` / ``cache_clear()`` — so ``repro cache
stats`` and the tests can watch hit rates.

Only memoize *pure* functions returning *immutable* values: the cached
object is returned by reference, never copied.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, NamedTuple, TypeVar

__all__ = ["MemoInfo", "memoized", "distribution_key"]

F = TypeVar("F", bound=Callable[..., Any])


class MemoInfo(NamedTuple):
    """Snapshot of one memoized kernel's counters (``cache_info()``)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


def memoized(
    maxsize: int = 128,
    key: Callable[..., Hashable] | None = None,
) -> Callable[[F], F]:
    """Decorate a pure function with a keyed LRU memo.

    ``key(*args, **kwargs)`` must map the call to a hashable value that
    fully determines the result; when omitted, the positional/keyword
    tuple itself is used (all arguments must then be hashable).  The
    wrapper gains ``cache_info()`` and ``cache_clear()``.
    """
    if maxsize < 1:
        raise ValueError(f"maxsize must be >= 1, got {maxsize}")

    def decorate(func: F) -> F:
        import functools

        table: OrderedDict[Hashable, Any] = OrderedDict()
        lock = threading.Lock()
        hits = misses = 0

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            nonlocal hits, misses
            k = key(*args, **kwargs) if key is not None else (
                args, tuple(sorted(kwargs.items()))
            )
            with lock:
                if k in table:
                    hits += 1
                    table.move_to_end(k)
                    return table[k]
            value = func(*args, **kwargs)
            with lock:
                misses += 1
                table[k] = value
                table.move_to_end(k)
                while len(table) > maxsize:
                    table.popitem(last=False)
            return value

        def cache_info() -> MemoInfo:
            with lock:
                return MemoInfo(hits, misses, maxsize, len(table))

        def cache_clear() -> None:
            nonlocal hits, misses
            with lock:
                table.clear()
                hits = misses = 0

        wrapper.cache_info = cache_info  # type: ignore[attr-defined]
        wrapper.cache_clear = cache_clear  # type: ignore[attr-defined]
        wrapper.__wrapped__ = func
        return wrapper  # type: ignore[return-value]

    return decorate


def distribution_key(dist: Any) -> tuple[Hashable, ...]:
    """Hashable identity of a :class:`BoxDistribution`: the exact support
    and probability vectors (``name`` alone is not unique — two
    ``Empirical`` instances can share a label)."""
    return (
        type(dist).__name__,
        dist.name,
        dist.support.tobytes(),
        dist.probabilities.tobytes(),
    )
