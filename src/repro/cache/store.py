"""Content-addressed on-disk store of experiment artifacts.

The store maps a :class:`CacheKey` — the *complete* identity of a run:
experiment id, ``quick``/``seed`` configuration, the AST-normalized code
fingerprint of the experiment's transitive first-party import closure,
the artifact schema version, and the interpreter/numpy/scipy versions —
to the finalized :class:`~repro.runtime.artifact.RunArtifact` that run
produced.  Because every experiment is a pure function of ``(quick,
seed)`` (the PR-2 determinism contract), two runs with equal keys are
bit-identical modulo timing, so a warm hit can stand in for live
recomputation and ``repro cache verify`` can check the substitution.

Layout: ``<root>/<digest[:2]>/<digest[2:4]>/<digest>.json``, one JSON
document per entry, written atomically (temp file + ``os.replace``)
under a per-entry advisory lock (:mod:`repro.cache.lock`) so the entry
and its sidecar move together even with many concurrent writers — the
regime the ``repro serve`` daemon lives in.  The two-level fan-out
bounds directory width at 256 either level, which keeps shard scans flat
for stores holding hundreds of thousands of entries.  Entries written by
older builds into the *legacy* layouts (``<digest[:2]>/<digest>.json``
or a completely flat ``<digest>.json``) stay readable: ``get`` finds
them, migrates them into the sharded location on first touch, and
:meth:`Cache.migrate` relocates a whole store in one pass.

Corrupt or unreadable entries are treated as misses, never as errors: a
cache must degrade to recomputation, not take the run down with it.

The store is *bounded*: every entry carries a hidden sidecar access
record (``.meta-<digest>.json``, maintained by :meth:`Cache.get` /
:meth:`Cache.put`) and :meth:`Cache.gc` evicts under byte/entry/age
budgets in LRU order — see :mod:`repro.cache.gc` and ``docs/CACHE.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.cache.lock import ensure_directory, entry_lock
from repro.errors import ArtifactError, CacheError
from repro.runtime.artifact import SCHEMA_VERSION, RunArtifact
from repro.util.rng import RNG_SCHEME

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.gc import GCBudget, GCReport

__all__ = [
    "CACHE_ENTRY_VERSION",
    "default_cache_dir",
    "environment_tag",
    "CacheKey",
    "CacheEntry",
    "CacheStats",
    "Cache",
    "cache_key_for",
]

CACHE_ENTRY_VERSION = 1


def default_cache_dir() -> Path:
    """Resolve the artifact store location: ``$REPRO_CACHE_DIR``, else
    ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    # Store *location* knobs: they decide where entries live, never
    # what any entry contains.
    env = os.environ.get("REPRO_CACHE_DIR")  # repro-lint: disable=nondet-env
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")  # repro-lint: disable=nondet-env
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


def environment_tag() -> str:
    """The numeric-environment part of the key: interpreter and the two
    numeric libraries whose versions can move float results."""
    import numpy
    import scipy

    py = ".".join(str(v) for v in sys.version_info[:2])
    return f"py{py}-numpy{numpy.__version__}-scipy{scipy.__version__}"


@dataclass(frozen=True)
class CacheKey:
    """Complete identity of one experiment run for caching purposes.

    ``rng_scheme`` names the random-number addressing scheme the run's
    draws came from (:data:`repro.util.rng.RNG_SCHEME`); entries written
    before the field existed load as ``"positional-v1"``, so they can
    never satisfy a key built by a counter-addressed build."""

    experiment_id: str
    quick: bool
    seed: int
    fingerprint: str
    schema_version: int = SCHEMA_VERSION
    rng_scheme: str = RNG_SCHEME
    environment: str = field(default_factory=environment_tag)

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "quick": self.quick,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "schema_version": self.schema_version,
            "rng_scheme": self.rng_scheme,
            "environment": self.environment,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CacheKey":
        try:
            return cls(
                experiment_id=payload["experiment_id"],
                quick=payload["quick"],
                seed=payload["seed"],
                fingerprint=payload["fingerprint"],
                schema_version=payload["schema_version"],
                rng_scheme=payload.get("rng_scheme", "positional-v1"),
                environment=payload["environment"],
            )
        except (KeyError, TypeError) as exc:
            raise CacheError(f"malformed cache key payload: {exc}") from None

    @property
    def digest(self) -> str:
        """Content address: SHA-256 of the canonical key JSON."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One stored artifact plus the key it was stored under."""

    key: CacheKey
    artifact: RunArtifact
    path: Path

    @property
    def stored_wall_time_s(self) -> float:
        """The compute time a hit on this entry saves."""
        return self.artifact.wall_time_s or 0.0


@dataclass(frozen=True)
class CacheStats:
    """On-disk accounting for ``repro cache stats``.

    ``tmp_files``/``tmp_bytes`` count orphaned ``.tmp-*`` write debris
    (invisible to the entry globs, reaped by :meth:`Cache.gc`); ``gc``
    carries the cumulative collection counters from ``.gc-state.json``,
    or ``None`` when no collection has ever run on this store.
    ``legacy_entries`` counts entries still sitting in a pre-sharding
    layout (relocated lazily by ``get`` or in bulk by ``migrate``)."""

    root: Path
    entries: int
    total_bytes: int
    by_experiment: dict[str, int]
    stored_wall_time_s: float
    tmp_files: int = 0
    tmp_bytes: int = 0
    gc: dict[str, Any] | None = None
    legacy_entries: int = 0


def cache_key_for(
    experiment_id: str, quick: bool, seed: int
) -> CacheKey:
    """Build the cache key for a registry experiment as the code stands
    now: fingerprints the experiment's closure on the fly.

    Granularity follows :func:`~repro.cache.fingerprint.fingerprint_mode`
    (``REPRO_CACHE_FINGERPRINT``): per-symbol reachability by default,
    whole-module closure as the conservative fallback."""
    from repro.cache.fingerprint import (
        fingerprint_mode,
        fingerprint_module,
        fingerprint_symbols,
    )
    from repro.experiments.registry import EXPERIMENTS

    try:
        exp = EXPERIMENTS[experiment_id]
    except KeyError:
        from repro.errors import ExperimentError

        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    # A runner may be wrapped in functools.partial (no __name__ of its
    # own); the underlying function carries the real identity.
    import functools

    runner = exp.runner
    while isinstance(runner, functools.partial):
        runner = runner.func
    if fingerprint_mode() == "symbol":
        fp = fingerprint_symbols(runner.__module__, entry=runner.__name__)
    else:
        fp = fingerprint_module(runner.__module__)
    return CacheKey(
        experiment_id=experiment_id, quick=quick, seed=seed, fingerprint=fp.digest
    )


def _is_digest_name(name: str) -> bool:
    """Whether a ``<stem>.json`` file name looks like an entry (64 hex
    chars), so foreign files dropped into the store are never treated —
    or discarded — as entries."""
    stem = name[:-5] if name.endswith(".json") else name
    if len(stem) != 64:
        return False
    return all(c in "0123456789abcdef" for c in stem)


class Cache:
    """The content-addressed artifact store (``repro.api.Cache``).

    ``root=None`` resolves via :func:`default_cache_dir`.  All methods
    are safe on a store that does not exist yet; ``put`` creates it.
    Writes (``put``, eviction, migration, corrupt-entry discard) hold
    the entry's advisory lock so concurrent writers — pool workers, the
    serve daemon, a GC pass — can share one store (``docs/CACHE.md``).
    """

    def __init__(self, root: "str | os.PathLike[str] | None" = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def __repr__(self) -> str:
        return f"Cache(root={str(self.root)!r})"

    def path_for(self, key: CacheKey) -> Path:
        return self.canonical_path(key.digest)

    def canonical_path(self, digest: str) -> Path:
        """Where ``digest``'s entry lives in the sharded layout:
        ``<root>/<digest[:2]>/<digest[2:4]>/<digest>.json``."""
        return self.root / digest[:2] / digest[2:4] / f"{digest}.json"

    def legacy_paths(self, digest: str) -> tuple[Path, ...]:
        """Where older builds may have written ``digest``: the one-level
        PR-3 layout, then a completely flat store."""
        return (
            self.root / digest[:2] / f"{digest}.json",
            self.root / f"{digest}.json",
        )

    # -- read ----------------------------------------------------------
    def get(self, key: CacheKey) -> CacheEntry | None:
        """The stored entry for ``key``, or ``None`` on miss.

        A corrupt, unparsable, or mismatched entry is a miss (and is
        unlinked so it cannot shadow a future put).  An entry found in a
        legacy (pre-sharding) location is migrated into the sharded
        layout before being returned.

        All of that stays true on a store ``get`` cannot write to (a
        read-only mount, e.g. a shared CI cache): migration and discard
        are best-effort, and a legacy entry that cannot be relocated is
        simply served from where it sits — never an error."""
        path = self.canonical_path(key.digest)
        entry = self._load(path)
        if entry is None:
            for legacy in self.legacy_paths(key.digest):
                if legacy.exists():
                    try:
                        self._migrate_entry(legacy)
                    except OSError:
                        # Migration needs to create the shard directory
                        # and a lock file; on a read-only store neither
                        # is possible.  Read the entry where it lies.
                        pass
                    entry = self._load(path) or self._load(legacy)
                    break
        if entry is None:
            return None
        if entry.key != key:  # hash collision or tampering: distrust it
            self._discard(entry.path)
            return None
        from repro.cache.gc import record_hit

        record_hit(entry.path)
        return entry

    def _load(self, path: Path) -> CacheEntry | None:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None  # plain miss: nothing (readable) there
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            # A file that exists but does not parse is a dead entry: it
            # can never hit, so leaving it would make it uncounted and
            # unevictable.  Discard, per get()'s contract.
            self._discard(path)
            return None
        if not isinstance(payload, dict):
            self._discard(path)
            return None
        if payload.get("cache_entry_version") != CACHE_ENTRY_VERSION:
            self._discard(path)
            return None
        try:
            key = CacheKey.from_dict(payload["key"])
            artifact = RunArtifact.from_dict(payload["artifact"])
        except (KeyError, CacheError, ArtifactError):
            self._discard(path)
            return None
        return CacheEntry(key=key, artifact=artifact, path=path)

    def _discard(self, path: Path) -> None:
        """Remove ``path`` and its sidecar as one locked critical
        section, so a concurrent put can never interleave into a state
        where the sidecar survives its entry.

        Best-effort end to end: acquiring the lock creates the lock
        file (and possibly the shard directory), which a read-only
        store forbids — ``get`` must answer a miss there, not raise."""
        from repro.cache.gc import sidecar_path

        try:
            with entry_lock(self.canonical_path(path.stem)):
                for stale in (path, sidecar_path(path)):
                    try:
                        stale.unlink()
                    except OSError:
                        pass
        except OSError:
            pass  # cannot lock (read-only store): leave the entry be

    # -- write ---------------------------------------------------------
    def put(self, key: CacheKey, artifact: RunArtifact) -> Path:
        """Store ``artifact`` under ``key`` (atomic, last writer wins).

        The artifact is stored in canonical live form — cache bookkeeping
        fields cleared — so a future hit compares bit-identically against
        live recomputation.  The entry rename, its sidecar stamp, and the
        removal of any legacy-layout duplicate happen under the entry's
        advisory lock: concurrent writers serialize per digest, so a
        racing put/GC pair can no longer orphan a ``.meta-*`` sidecar."""
        canonical = artifact.without_cache_stamp()
        payload = {
            "cache_entry_version": CACHE_ENTRY_VERSION,
            "key": key.to_dict(),
            "artifact": canonical.to_dict(),
        }
        path = self.path_for(key)
        ensure_directory(path.parent)
        from repro.cache.gc import record_put, sidecar_path

        with entry_lock(path):
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=2)
                    fh.write("\n")
                os.replace(tmp, path)
            except Exception as exc:
                # Cleanup must cover *every* failure: json.dump raising a
                # non-OSError (e.g. TypeError on an unserializable value)
                # would otherwise strand the mkstemp file as .tmp-* debris.
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                if isinstance(exc, OSError):
                    raise CacheError(
                        f"cannot write cache entry {path}: {exc}"
                    ) from None
                raise
            record_put(path)
            # A legacy-layout duplicate would make the digest double-
            # counted (and resurrectable); the sharded copy wins.
            for legacy in self.legacy_paths(key.digest):
                for stale in (legacy, sidecar_path(legacy)):
                    try:
                        stale.unlink()
                    except OSError:
                        pass
        return path

    # -- layout migration ----------------------------------------------
    def _migrate_entry(self, legacy: Path) -> None:
        """Relocate one legacy-layout entry (and its sidecar) into the
        sharded layout, atomically, under the entry lock.  A concurrent
        migration or put of the same digest wins harmlessly: the rename
        simply finds its source gone."""
        from repro.cache.gc import sidecar_path

        if not _is_digest_name(legacy.name):
            return
        target = self.canonical_path(legacy.stem)
        ensure_directory(target.parent)
        with entry_lock(target):
            if target.exists():
                # Sharded copy already present: drop the stale duplicate.
                for stale in (legacy, sidecar_path(legacy)):
                    try:
                        stale.unlink()
                    except OSError:
                        pass
                return
            try:
                os.replace(legacy, target)
            except OSError:
                return  # source vanished under a concurrent writer
            try:
                os.replace(sidecar_path(legacy), sidecar_path(target))
            except OSError:
                pass  # no sidecar to carry over (pre-GC store)

    def migrate(self) -> int:
        """Relocate every legacy-layout entry into the sharded layout;
        returns how many entries moved.  Safe to run concurrently with
        readers and writers (each move holds the entry lock), and
        idempotent — a second pass finds nothing to do."""
        moved = 0
        for legacy in self._iter_legacy_paths():
            target = self.canonical_path(legacy.stem)
            self._migrate_entry(legacy)
            if target.exists() and not legacy.exists():
                moved += 1
        # Legacy one-level shard dirs that emptied out can go.
        for shard in sorted(self.root.glob("*")):
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass
        return moved

    # -- maintenance ---------------------------------------------------
    def _iter_legacy_paths(self) -> Iterator[Path]:
        """Entry files still in a pre-sharding location (one-level
        ``ab/<digest>.json`` or flat ``<digest>.json``), skipping any
        digest that already has a sharded copy (the sharded copy wins)."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")) + sorted(
            self.root.glob("*.json")
        ):
            if path.name.startswith(".") or not _is_digest_name(path.name):
                continue
            if self.canonical_path(path.stem).exists():
                continue
            yield path

    def iter_entry_paths(self) -> Iterator[Path]:
        """Every entry *file*, in stable (digest) order, without
        parsing: sharded entries (``ab/cd/<digest>.json``) plus any
        not-yet-migrated legacy entries.  The hidden-file filter is
        load-bearing: pathlib's ``*``-glob matches dotfiles (unlike the
        ``glob`` module), so without it ``.tmp-*`` write debris,
        ``.meta-*`` sidecars, and ``.lock-*`` files would be picked up
        and mis-discarded as corrupt entries."""
        if not self.root.is_dir():
            return
        seen: dict[str, Path] = {}
        for path in sorted(self.root.glob("*/*/*.json")):
            if not path.name.startswith(".") and _is_digest_name(path.name):
                seen[path.stem] = path
        for path in self._iter_legacy_paths():
            seen.setdefault(path.stem, path)
        for digest in sorted(seen):
            yield seen[digest]

    def iter_entries(self) -> Iterator[CacheEntry]:
        """Every readable entry in the store, in stable (digest) order."""
        for path in self.iter_entry_paths():
            entry = self._load(path)
            if entry is not None:
                yield entry

    def stats(self) -> CacheStats:
        from repro.cache.gc import iter_debris, read_gc_state

        entries = 0
        total_bytes = 0
        by_experiment: dict[str, int] = {}
        stored_wall = 0.0
        for entry in self.iter_entries():
            entries += 1
            try:
                total_bytes += entry.path.stat().st_size
            except OSError:
                pass
            eid = entry.key.experiment_id
            by_experiment[eid] = by_experiment.get(eid, 0) + 1
            stored_wall += entry.stored_wall_time_s
        tmp_files = 0
        tmp_bytes = 0
        for debris in iter_debris(self.root):
            try:
                tmp_bytes += debris.stat().st_size
            except OSError:
                continue
            tmp_files += 1
        legacy = sum(1 for _ in self._iter_legacy_paths())
        return CacheStats(
            root=self.root,
            entries=entries,
            total_bytes=total_bytes,
            by_experiment=dict(sorted(by_experiment.items())),
            stored_wall_time_s=stored_wall,
            tmp_files=tmp_files,
            tmp_bytes=tmp_bytes,
            gc=read_gc_state(self.root),
            legacy_entries=legacy,
        )

    def gc(
        self,
        budget: "GCBudget | None" = None,
        dry_run: bool = False,
    ) -> "GCReport":
        """Collect garbage under ``budget`` (default: the environment
        budgets — see :class:`repro.cache.gc.GCBudget`).  Reaps orphaned
        ``.tmp-*`` debris, then evicts LRU-first under the byte/entry/
        age limits.  ``dry_run`` reports without deleting."""
        from repro.cache.gc import GCBudget, collect

        return collect(
            self,
            budget if budget is not None else GCBudget.from_env(),
            dry_run=dry_run,
        )

    def clear(self) -> int:
        """Remove every entry (plus sidecars, ``.tmp-*`` write debris,
        and unheld ``.lock-*`` files); returns how many *entries* were
        removed.  Leaves the root directory (and any foreign files in
        it) alone."""
        from repro.cache.gc import iter_debris, iter_lock_files, sidecar_path
        from repro.cache.lock import try_reap_lock

        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.iter_entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
            try:
                sidecar_path(path).unlink()
            except OSError:
                pass
        for debris in iter_debris(self.root):
            try:
                debris.unlink()
            except OSError:
                pass
        for lock_file in iter_lock_files(self.root):
            try_reap_lock(lock_file)
        for shard in sorted(
            self.root.glob("*/*"), reverse=True
        ) + sorted(self.root.glob("*"), reverse=True):
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass
        return removed
