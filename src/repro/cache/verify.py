"""Cache verification: prove a stored artifact can stand in for a run.

``repro cache verify`` samples entries from the store, re-runs each
sampled experiment live (``cache="off"``), and compares the stored
artifact against the fresh one under :meth:`RunArtifact.without_timing`
— the bit-identity contract modulo wall time and cache bookkeeping.
Entries whose code fingerprint no longer matches the current tree are
*stale*: they cannot be compared against a live run of different code,
so they are reported but never counted as failures (a future ``auto``
run will simply miss them).

Comparison is on canonical JSON, not dataclass equality, so a live
artifact holding numpy scalars compares equal to its round-tripped
stored twin exactly when the serialized evidence agrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.rng import as_generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import Cache

__all__ = ["VerifyRecord", "VerifyReport", "verify_store"]


@dataclass(frozen=True)
class VerifyRecord:
    """Outcome for one store entry: ``ok``, ``mismatch``, or ``stale``."""

    experiment_id: str
    quick: bool
    seed: int
    digest: str
    status: str
    detail: str = ""


@dataclass(frozen=True)
class VerifyReport:
    """Aggregate outcome of one verification pass."""

    records: tuple[VerifyRecord, ...]
    jobs: int

    @property
    def checked(self) -> int:
        return sum(1 for r in self.records if r.status != "stale")

    @property
    def mismatches(self) -> int:
        return sum(1 for r in self.records if r.status == "mismatch")

    @property
    def stale(self) -> int:
        return sum(1 for r in self.records if r.status == "stale")

    @property
    def ok(self) -> bool:
        """True when no checked entry diverged from live recomputation."""
        return self.mismatches == 0


def _canonical(artifact) -> str:
    return artifact.without_timing().to_json()


def verify_store(
    store: "Cache",
    sample: int | None = 3,
    seed: int = 0,
    jobs: int = 1,
) -> VerifyReport:
    """Re-run up to ``sample`` cached entries live and diff the artifacts.

    ``sample=None`` verifies every fresh entry.  Sampling is a
    deterministic draw (``seed``) without replacement over the store's
    digest-ordered entries; ``jobs > 1`` fans the live re-runs over a
    process pool.  Stale entries (code fingerprint differs from the
    current tree) are reported as ``stale`` and skipped.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.cache.store import cache_key_for
    from repro.runtime.runner import run_one

    entries = list(store.iter_entries())
    fresh = []
    records: list[VerifyRecord] = []
    for entry in entries:
        key = entry.key
        current = cache_key_for(key.experiment_id, key.quick, key.seed)
        if current != key:
            records.append(
                VerifyRecord(
                    experiment_id=key.experiment_id,
                    quick=key.quick,
                    seed=key.seed,
                    digest=key.digest,
                    status="stale",
                    detail="code fingerprint or environment changed since store",
                )
            )
        else:
            fresh.append(entry)

    if sample is not None and len(fresh) > sample:
        gen = as_generator(seed)
        chosen = gen.choice(len(fresh), size=sample, replace=False)
        fresh = [fresh[i] for i in sorted(int(i) for i in chosen)]

    def record_for(entry, live) -> VerifyRecord:
        key = entry.key
        stored, fresh_json = _canonical(entry.artifact), _canonical(live)
        if stored == fresh_json:
            return VerifyRecord(
                experiment_id=key.experiment_id,
                quick=key.quick,
                seed=key.seed,
                digest=key.digest,
                status="ok",
            )
        return VerifyRecord(
            experiment_id=key.experiment_id,
            quick=key.quick,
            seed=key.seed,
            digest=key.digest,
            status="mismatch",
            detail="stored artifact differs from live recomputation",
        )

    if jobs <= 1 or len(fresh) <= 1:
        lives = [
            run_one(e.key.experiment_id, quick=e.key.quick, seed=e.key.seed)
            for e in fresh
        ]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(fresh))) as pool:
            futures = [
                pool.submit(
                    run_one, e.key.experiment_id, e.key.quick, e.key.seed
                )
                for e in fresh
            ]
            lives = [f.result() for f in futures]
    records.extend(record_for(e, live) for e, live in zip(fresh, lives))
    records.sort(key=lambda r: (r.experiment_id, r.digest))
    return VerifyReport(records=tuple(records), jobs=jobs)
