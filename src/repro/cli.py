"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands (a shared flag vocabulary — ``--quick/--full``, ``--seed``,
``--json DIR``, ``--cache-dir`` — means the same thing everywhere it
appears):

* ``list`` — enumerate registered experiments with their claims;
* ``run <id> [...ids|all]`` — run experiments through the
  :mod:`repro.runtime` layer and print their tables; ``--jobs N`` fans
  experiments over a process pool (bit-identical results at any worker
  count), ``-o FILE`` writes the rendered text, ``--json DIR`` writes
  one schema-versioned ``RunArtifact`` per experiment plus a
  ``manifest.json`` with timings and counters (``docs/ARTIFACTS.md``).
  Runs consult the content-addressed artifact store by default
  (``docs/CACHE.md``); ``--no-cache`` disables it, ``--refresh``
  recomputes and overwrites, ``--cache-dir DIR`` relocates it;
* ``show-profile`` — render the worst-case profile ``M_{8,4}(n)``;
  ``--full`` adds the exact box census, ``--json DIR`` writes
  ``profile.json``;
* ``solve`` — print the exact Lemma-3 recurrence table for a named
  spec, problem size, and box-size distribution (DSL:
  ``point:16``, ``uniform:4:1:5``, ``pareto:4:1:6:0.5``,
  ``worstcase:8:4:256``, ...); ``--quick`` swaps the exact renewal DP
  for the Wald midpoint, ``--json DIR`` writes ``solve.json``;
* ``cache stats|clear|migrate|verify|gc`` — inspect, empty, relayout,
  spot-check, or garbage-collect the artifact store (``migrate`` moves
  legacy flat/one-level entries into the sharded ``ab/cd/`` layout;
  ``verify`` re-runs sampled entries live and diffs against the stored
  artifacts; ``gc`` reaps ``.tmp-*`` write debris and evicts LRU-first
  under ``--max-bytes/--max-entries/--max-age-days`` budgets,
  ``--dry-run`` to preview);
* ``serve`` — the asyncio artifact-serving daemon: answers
  ``GET /v1/run/{experiment}?quick&seed`` from the store, coalesces
  identical in-flight misses onto one :class:`RunRequest` computation,
  applies ``--max-inflight`` backpressure (429), and drains cleanly on
  SIGTERM (``docs/SERVE.md``);
* ``bench`` — benchmark suites: ``--suite cache`` (cold-vs-warm over
  the registry; writes ``BENCH_cache.json``), ``--suite sim``
  (scalar-vs-chunked simulator workloads; writes ``BENCH_sim.json``),
  or ``--suite machine`` (scalar-vs-kernel trace-machine replays;
  writes ``BENCH_machine.json``).  With ``--history``, appends a record
  to the suite's longitudinal trend line and runs (and fails on) the
  speedup regression check;
* ``lint`` — run the repo's AST-based invariant linter (RNG/units/
  float-equality/frozen-artifact/exports/profile discipline) over
  source trees; exit 1 on findings, for CI.  See ``docs/DEVTOOLS.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _add_quick_full(
    parser: argparse.ArgumentParser, default_quick: bool, what: str
) -> None:
    """The shared ``--quick/--full`` paired toggle (``args.quick``)."""
    group = parser.add_mutually_exclusive_group()
    default_note = "the default" if default_quick else "default is --full"
    group.add_argument(
        "--quick",
        dest="quick",
        action="store_true",
        default=default_quick,
        help=f"quick configuration: {what} ({default_note})",
    )
    group.add_argument(
        "--full",
        dest="quick",
        action="store_false",
        help="full configuration (slower, exhaustive)"
        + ("" if default_quick else " — the default"),
    )


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="random seed (stamped into JSON artifacts; default 0)",
    )


def _add_json_dir(parser: argparse.ArgumentParser, what: str) -> None:
    parser.add_argument(
        "--json",
        dest="json_dir",
        default=None,
        metavar="DIR",
        help=f"write {what} into DIR (created if missing)",
    )


def _add_cache_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="artifact store location (default: $REPRO_CACHE_DIR, else "
        "$XDG_CACHE_HOME/repro, else ~/.cache/repro)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Cache-adaptive analysis toolkit — reproduction of 'Closing the "
            "Gap Between Cache-oblivious and Cache-adaptive Analysis' "
            "(SPAA 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run_p = sub.add_parser("run", help="run experiments by id (or 'all')")
    run_p.add_argument("ids", nargs="+", help="experiment ids, or 'all'")
    _add_quick_full(run_p, default_quick=True, what="small sweeps")
    _add_seed(run_p)
    run_p.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the rendered reports to this file",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments across N worker processes (default 1); "
        "results are bit-identical at any worker count",
    )
    _add_json_dir(
        run_p, "one RunArtifact JSON per experiment plus manifest.json"
    )
    _add_cache_dir(run_p)
    cache_group = run_p.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--no-cache",
        dest="cache",
        action="store_const",
        const="off",
        default="auto",
        help="always compute; no artifact-store reads or writes",
    )
    cache_group.add_argument(
        "--refresh",
        dest="cache",
        action="store_const",
        const="refresh",
        help="recompute and overwrite the artifact store unconditionally",
    )

    prof_p = sub.add_parser(
        "show-profile", help="render the worst-case profile M_{8,4}(n)"
    )
    prof_p.add_argument(
        "pos_n",
        type=int,
        nargs="?",
        default=None,
        metavar="n",
        help="problem size (a power of 4); alternative to --n",
    )
    prof_p.add_argument(
        "--n", type=int, default=None, help="problem size (a power of 4)"
    )
    _add_quick_full(
        prof_p, default_quick=True, what="sparkline + summary only"
    )
    _add_seed(prof_p)
    _add_json_dir(prof_p, "profile.json (box census, potential, duration)")

    solve_p = sub.add_parser(
        "solve",
        help="exact expected-cost table from the Lemma-3 recurrence",
    )
    solve_p.add_argument("--spec", default="MM-SCAN", help="named algorithm spec")
    solve_p.add_argument("--n", type=int, required=True, help="problem size (blocks)")
    solve_p.add_argument(
        "--dist",
        required=True,
        help="box-size distribution (e.g. uniform:4:1:5, point:16, "
        "pareto:4:1:6:0.5, worstcase:8:4:256)",
    )
    _add_quick_full(
        solve_p,
        default_quick=False,
        what="Wald-midpoint scans instead of the exact renewal DP",
    )
    _add_seed(solve_p)
    _add_json_dir(solve_p, "solve.json (the recurrence table)")

    cache_p = sub.add_parser(
        "cache", help="inspect or manage the content-addressed artifact store"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    stats_p = cache_sub.add_parser(
        "stats", help="entry counts, size on disk, stored compute time"
    )
    _add_cache_dir(stats_p)
    _add_json_dir(stats_p, "cache_stats.json")
    clear_p = cache_sub.add_parser("clear", help="remove every cache entry")
    _add_cache_dir(clear_p)
    migrate_p = cache_sub.add_parser(
        "migrate",
        help="relocate entries from legacy (flat / one-level) layouts "
        "into the sharded ab/cd/ layout in one pass",
    )
    _add_cache_dir(migrate_p)
    gc_p = cache_sub.add_parser(
        "gc",
        help="reap .tmp-* write debris and evict LRU-first under "
        "byte/entry/age budgets (defaults from REPRO_CACHE_MAX_*)",
    )
    _add_cache_dir(gc_p)
    gc_p.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="byte budget for surviving entries (default: "
        "$REPRO_CACHE_MAX_BYTES, else 1 GiB; <= 0 disables)",
    )
    gc_p.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="entry-count budget (default: $REPRO_CACHE_MAX_ENTRIES, "
        "else unlimited; <= 0 disables)",
    )
    gc_p.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="D",
        help="evict entries not accessed for D days (default: "
        "$REPRO_CACHE_MAX_AGE_DAYS, else unlimited; <= 0 disables)",
    )
    gc_p.add_argument(
        "--max-lifetime-days",
        type=float,
        default=None,
        metavar="D",
        help="evict entries created more than D days ago, hits "
        "notwithstanding (default: $REPRO_CACHE_MAX_LIFETIME_DAYS, "
        "else unlimited; <= 0 disables)",
    )
    gc_p.add_argument(
        "--tmp-grace-s",
        type=float,
        default=None,
        metavar="S",
        help=".tmp-* files younger than S seconds are left alone as "
        "possible writes in flight (default 3600; 0 reaps everything "
        "— for CI debris checks on a quiesced store)",
    )
    gc_p.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted/reaped without deleting",
    )
    gc_p.add_argument(
        "--fail-on-debris",
        action="store_true",
        help="exit 1 if any orphaned .tmp-* debris was found (CI guard)",
    )
    _add_json_dir(gc_p, "cache_gc.json")
    verify_p = cache_sub.add_parser(
        "verify",
        help="re-run sampled entries live and diff against the store "
        "(exit 1 on mismatch)",
    )
    _add_cache_dir(verify_p)
    _add_seed(verify_p)
    verify_p.add_argument(
        "--sample",
        type=int,
        default=3,
        metavar="N",
        help="how many fresh entries to re-run (0 = every entry; default 3)",
    )
    verify_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan live re-runs over N worker processes (default 1)",
    )

    bench_p = sub.add_parser(
        "bench",
        help="benchmark suites: cache (cold-vs-warm over the registry, "
        "writes BENCH_cache.json), sim (scalar-vs-chunked simulator, "
        "writes BENCH_sim.json), or machine (scalar-vs-kernel trace "
        "replays, writes BENCH_machine.json)",
    )
    bench_p.add_argument(
        "ids",
        nargs="*",
        default=None,
        help="experiment ids to benchmark (cache suite only; "
        "default: the full registry)",
    )
    bench_p.add_argument(
        "--suite",
        choices=("cache", "sim", "machine"),
        default="cache",
        help="which benchmark to run: the cache cold-vs-warm suite, the "
        "simulator scalar-vs-chunked suite, or the trace-machine "
        "scalar-vs-kernel suite (default cache)",
    )
    _add_quick_full(bench_p, default_quick=True, what="small sweeps")
    _add_seed(bench_p)
    bench_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for both passes (cache suite only; default 1)",
    )
    bench_p.add_argument(
        "-o",
        "--output",
        default=None,
        help="where to write the benchmark report (default "
        "BENCH_cache.json / BENCH_sim.json / BENCH_machine.json "
        "per suite)",
    )
    bench_p.add_argument(
        "--history",
        action="store_true",
        help="append this run as a record to the bench-history file at "
        "OUTPUT (migrating a legacy single-record file), print the "
        "trend line, and run the speedup regression check",
    )
    _add_cache_dir(bench_p)

    serve_p = sub.add_parser(
        "serve",
        help="run the artifact-serving daemon: answers "
        "GET /v1/run/{experiment}?quick&seed from the artifact store, "
        "coalescing identical in-flight misses onto one computation "
        "(docs/SERVE.md)",
    )
    serve_p.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve_p.add_argument(
        "--port",
        type=int,
        default=8023,
        metavar="N",
        help="TCP port to listen on (default 8023; 0 picks a free port)",
    )
    serve_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cache misses (default 1; 0 computes "
        "in-process on a thread)",
    )
    serve_p.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        metavar="N",
        help="most distinct computations in flight before misses are "
        "answered 429 (default 16; hits are always admitted)",
    )
    serve_p.add_argument(
        "--max-requests-per-conn",
        type=int,
        default=1000,
        metavar="N",
        help="requests one keep-alive connection may carry before the "
        "daemon closes it (default 1000)",
    )
    serve_p.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long a keep-alive connection may sit idle between "
        "requests before the daemon closes it (default 30)",
    )
    serve_p.add_argument(
        "--hot-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="hard byte budget for the in-memory hot tier of rendered "
        "responses (default 64 MiB; 0 disables the tier)",
    )
    _add_cache_dir(serve_p)

    lint_p = sub.add_parser(
        "lint",
        help="run the repro invariant linter (exit 1 on findings)",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "examples"],
        help="files or directories to lint (default: src benchmarks examples)",
    )
    lint_p.add_argument(
        "--include-tests",
        action="store_true",
        help="also lint test files (exempt by default)",
    )
    lint_p.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="run only this rule (repeatable)",
    )
    lint_p.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    lint_p.add_argument(
        "--deep",
        action="store_true",
        help="also run the interprocedural determinism analysis "
        "(repro analyze) over the same paths and merge its findings",
    )
    lint_p.add_argument(
        "--stale",
        action="store_true",
        help="also report repro-lint suppression pragmas that no longer "
        "match any diagnostic (stale waivers)",
    )

    analyze_p = sub.add_parser(
        "analyze",
        help="whole-program determinism analysis: call graph, taint "
        "propagation from nondeterminism sources, per-experiment "
        "impurity chains (exit 1 on findings)",
    )
    analyze_p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories whose first-party import closure "
        "to analyze (default: src)",
    )
    analyze_p.add_argument(
        "--include-tests",
        action="store_true",
        help="also analyze test files (exempt by default)",
    )
    analyze_p.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the full report (symbols, classifications, chains) "
        "as JSON on stdout",
    )
    analyze_p.add_argument(
        "--graph",
        metavar="DOT",
        default=None,
        help="write the classified call graph as Graphviz DOT to this path",
    )
    return parser


def _write_json(json_dir: str, name: str, payload: dict) -> str:
    import json
    import os

    os.makedirs(json_dir, exist_ok=True)
    path = os.path.join(json_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _cmd_list() -> int:
    from repro.experiments.registry import EXPERIMENTS

    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, exp in EXPERIMENTS.items():
        print(f"{eid.ljust(width)}  {exp.title}")
    return 0


def _cmd_run(
    ids: list[str],
    quick: bool,
    seed: int,
    output: str | None,
    jobs: int = 1,
    json_dir: str | None = None,
    cache: str = "auto",
    cache_dir: str | None = None,
) -> int:
    from time import perf_counter

    from repro.experiments.registry import EXPERIMENTS
    from repro.runtime.runner import ExperimentRunner

    targets = list(EXPERIMENTS) if ids == ["all"] else ids
    runner = ExperimentRunner(jobs=jobs, cache=cache, cache_dir=cache_dir)
    failures = 0
    chunks: list[str] = []
    artifacts = []
    # Display-only timing for the cache-savings summary line.
    start = perf_counter()  # repro-lint: disable=nondet-wallclock
    for i, artifact in enumerate(
        runner.run_iter(targets, quick=quick, seed=seed)
    ):
        text = artifact.render()
        if i:
            print()
        print(text)
        chunks.append(text)
        artifacts.append(artifact)
        if not artifact.reproduced:
            failures += 1
    total_wall_time_s = perf_counter() - start  # repro-lint: disable=nondet-wallclock
    hits = sum(1 for a in artifacts if a.cache_hit)
    if cache != "off" and hits:
        saved = sum(a.saved_wall_time_s or 0.0 for a in artifacts)
        print(
            f"cache: {hits}/{len(artifacts)} hit(s), "
            f"saved {saved:.2f}s of compute",
            file=sys.stderr,
        )
    if output is not None:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(chunks) + "\n")
    if json_dir is not None:
        _write_artifact_dir(
            json_dir,
            artifacts,
            seed=seed,
            quick=quick,
            jobs=jobs,
            total_wall_time_s=total_wall_time_s,
            gc=_last_gc_counters(cache, cache_dir),
        )
    return 1 if failures else 0


def _last_gc_counters(cache: str, cache_dir: str | None) -> dict | None:
    """Counters of the auto-GC pass that followed this run (from the
    store's ``.gc-state.json``), for the manifest.  ``None`` when the
    run never touched a store or no collection has run."""
    if cache == "off":
        return None
    from repro.cache.gc import read_gc_state
    from repro.cache.store import Cache

    state = read_gc_state(Cache(cache_dir).root)
    if state is None:
        return None
    last = state.get("last")
    return dict(last) if isinstance(last, dict) else None


def _write_artifact_dir(
    json_dir: str,
    artifacts: list,
    seed: int,
    quick: bool,
    jobs: int,
    total_wall_time_s: float,
    gc: dict | None = None,
) -> None:
    """Write one ``<id>.json`` per artifact plus ``manifest.json``."""
    import os

    from repro.runtime.manifest import RunManifest

    os.makedirs(json_dir, exist_ok=True)
    names = {}
    for artifact in artifacts:
        name = f"{artifact.experiment_id}.json"
        names[artifact.experiment_id] = name
        with open(os.path.join(json_dir, name), "w", encoding="utf-8") as fh:
            fh.write(artifact.to_json() + "\n")
    manifest = RunManifest.build(
        artifacts,
        seed=seed,
        quick=quick,
        jobs=jobs,
        total_wall_time_s=total_wall_time_s,
        artifact_names=names,
        gc=gc,
    )
    with open(os.path.join(json_dir, "manifest.json"), "w", encoding="utf-8") as fh:
        fh.write(manifest.to_json() + "\n")


def _cmd_solve(
    spec_name: str,
    n: int,
    dist_text: str,
    quick: bool = False,
    seed: int = 0,
    json_dir: str | None = None,
) -> int:
    from repro.algorithms.library import get_spec
    from repro.analysis.recurrence import solve_recurrence
    from repro.profiles.parsing import parse_distribution
    from repro.util.tables import format_table

    spec = get_spec(spec_name)
    dist = parse_distribution(dist_text)
    solution = solve_recurrence(spec, n, dist, scan_dp=not quick)
    print(f"{spec.describe()}")
    print(f"Sigma = {dist.name}  (mean box {dist.mean():.4g})")
    if quick:
        print("quick mode: Wald-midpoint scans (approximate, not exact DP)")
    rows = [
        (rec.n, rec.f, rec.f_prime, rec.q, rec.m_n, rec.cost_ratio)
        for rec in solution.levels
    ]
    print(
        format_table(
            ["n", "f(n)", "f'(n)", "q", "m_n", "E[ratio]"],
            rows,
            title="exact Lemma-3 recurrence (Definition-3 cost = f(n)*m_n/n^e)",
        )
    )
    print(f"Eq-8 product of f/f' over levels: {solution.eq8_product():.6g}")
    if json_dir is not None:
        payload = {
            "command": "solve",
            "spec": spec_name,
            "spec_description": spec.describe(),
            "n": n,
            "dist": dist_text,
            "dist_name": dist.name,
            "dist_mean": float(dist.mean()),
            "quick": quick,
            "seed": seed,
            "levels": [
                {
                    "n": int(rec.n),
                    "f": float(rec.f),
                    "f_prime": float(rec.f_prime),
                    "q": float(rec.q),
                    "m_n": float(rec.m_n),
                    "cost_ratio": float(rec.cost_ratio),
                }
                for rec in solution.levels
            ],
            "eq8_product": float(solution.eq8_product()),
        }
        path = _write_json(json_dir, "solve.json", payload)
        print(f"wrote {path}", file=sys.stderr)
    return 0


def _cmd_show_profile(
    n: int | None,
    pos_n: int | None = None,
    quick: bool = True,
    seed: int = 0,
    json_dir: str | None = None,
) -> int:
    from repro.errors import ProfileError
    from repro.profiles.worst_case import worst_case_potential, worst_case_profile

    if n is None:
        n = pos_n
    elif pos_n is not None and pos_n != n:
        raise ProfileError(
            f"conflicting problem sizes: positional {pos_n} vs --n {n}"
        )
    if n is None:
        raise ProfileError("show-profile needs a problem size (positional or --n)")
    profile = worst_case_profile(8, 4, n)
    potential_ratio = worst_case_potential(8, 4, n) / n**1.5
    print(f"M_{{8,4}}({n}): {len(profile)} boxes, duration {profile.total_time}")
    print(f"total potential / n^1.5 = {potential_ratio:.3f}")
    print(profile.sparkline(width=100))
    if not quick:
        census = profile.size_census()
        print("box census (size: count):")
        for size, count in census.items():
            print(f"  {size}: {count}")
    if json_dir is not None:
        payload = {
            "command": "show-profile",
            "a": 8,
            "b": 4,
            "n": n,
            "quick": quick,
            "seed": seed,
            "boxes": len(profile),
            "duration": profile.total_time,
            "potential_over_n_1_5": potential_ratio,
            "size_census": {
                str(size): count for size, count in profile.size_census().items()
            },
        }
        path = _write_json(json_dir, "profile.json", payload)
        print(f"wrote {path}", file=sys.stderr)
    return 0


def _cmd_cache_stats(
    cache_dir: str | None, json_dir: str | None = None
) -> int:
    from repro.cache.store import Cache

    store = Cache(cache_dir)
    stats = store.stats()
    print(f"cache root: {stats.root}")
    print(f"entries: {stats.entries}")
    print(f"size on disk: {stats.total_bytes} bytes")
    print(f"stored compute time: {stats.stored_wall_time_s:.2f}s")
    print(f"temp debris: {stats.tmp_files} file(s), {stats.tmp_bytes} bytes")
    if stats.gc is not None:
        print(
            f"gc: {stats.gc.get('collections', 0)} collection(s), "
            f"evicted {stats.gc.get('evicted_entries', 0)} entr"
            f"{'y' if stats.gc.get('evicted_entries', 0) == 1 else 'ies'} / "
            f"{stats.gc.get('evicted_bytes', 0)} bytes, "
            f"reaped {stats.gc.get('reaped_tmp_files', 0)} temp file(s)"
        )
    if stats.by_experiment:
        width = max(len(eid) for eid in stats.by_experiment)
        for eid, count in stats.by_experiment.items():
            print(f"  {eid.ljust(width)}  {count}")
    if json_dir is not None:
        payload = {
            "command": "cache-stats",
            "root": str(stats.root),
            "entries": stats.entries,
            "total_bytes": stats.total_bytes,
            "stored_wall_time_s": stats.stored_wall_time_s,
            "tmp_files": stats.tmp_files,
            "tmp_bytes": stats.tmp_bytes,
            "gc": stats.gc,
            "by_experiment": stats.by_experiment,
        }
        path = _write_json(json_dir, "cache_stats.json", payload)
        print(f"wrote {path}", file=sys.stderr)
    return 0


def _cmd_cache_clear(cache_dir: str | None) -> int:
    from repro.cache.store import Cache

    removed = Cache(cache_dir).clear()
    print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
    return 0


def _cmd_cache_migrate(cache_dir: str | None) -> int:
    from repro.cache.store import Cache

    store = Cache(cache_dir)
    moved = store.migrate()
    print(
        f"migrated {moved} entr{'y' if moved == 1 else 'ies'} into the "
        f"sharded layout under {store.root}"
    )
    return 0


def _cmd_serve(
    host: str,
    port: int,
    jobs: int,
    max_inflight: int,
    cache_dir: str | None,
    max_requests_per_conn: int = 1000,
    idle_timeout: float = 30.0,
    hot_bytes: int | None = None,
) -> int:
    import asyncio

    from repro.serve.app import ServeConfig, serve_forever
    from repro.serve.hotcache import DEFAULT_HOT_BYTES

    config = ServeConfig(
        host=host,
        port=port,
        jobs=jobs,
        max_inflight=max_inflight,
        cache_dir=cache_dir,
        max_requests_per_conn=max_requests_per_conn,
        idle_timeout_s=idle_timeout,
        hot_bytes=DEFAULT_HOT_BYTES if hot_bytes is None else hot_bytes,
    )
    return asyncio.run(serve_forever(config))


def _cmd_cache_gc(
    cache_dir: str | None,
    max_bytes: int | None,
    max_entries: int | None,
    max_age_days: float | None,
    tmp_grace_s: float | None,
    dry_run: bool,
    fail_on_debris: bool,
    json_dir: str | None = None,
    max_lifetime_days: float | None = None,
) -> int:
    import dataclasses

    from repro.cache.gc import GCBudget
    from repro.cache.store import Cache

    budget = GCBudget.from_env()
    if max_bytes is not None:
        budget = dataclasses.replace(
            budget, max_bytes=max_bytes if max_bytes > 0 else None
        )
    if max_entries is not None:
        budget = dataclasses.replace(
            budget, max_entries=max_entries if max_entries > 0 else None
        )
    if max_age_days is not None:
        budget = dataclasses.replace(
            budget, max_age_days=max_age_days if max_age_days > 0 else None
        )
    if max_lifetime_days is not None:
        budget = dataclasses.replace(
            budget,
            max_lifetime_days=(
                max_lifetime_days if max_lifetime_days > 0 else None
            ),
        )
    if tmp_grace_s is not None:
        budget = dataclasses.replace(budget, tmp_grace_s=max(tmp_grace_s, 0.0))
    store = Cache(cache_dir)
    report = store.gc(budget, dry_run=dry_run)
    verb = "would reap" if dry_run else "reaped"
    print(f"cache root: {report.root}")
    print(
        f"{verb} {report.reaped_tmp_files} temp file(s) "
        f"({report.reaped_tmp_bytes} bytes of write debris)"
    )
    verb = "would evict" if dry_run else "evicted"
    print(
        f"{verb} {report.evicted_entries}/{report.examined_entries} "
        f"entr{'y' if report.evicted_entries == 1 else 'ies'} "
        f"({report.evicted_bytes} bytes)"
    )
    shown = report.evictions[:20]
    for eviction in shown:
        print(
            f"  {eviction.digest[:16]}  {eviction.size_bytes} bytes  "
            f"({eviction.reason})"
        )
    if len(report.evictions) > len(shown):
        print(f"  ... and {len(report.evictions) - len(shown)} more")
    print(
        f"surviving: {report.surviving_entries} entr"
        f"{'y' if report.surviving_entries == 1 else 'ies'}, "
        f"{report.surviving_bytes} bytes"
    )
    if json_dir is not None:
        payload = dict(report.to_dict(), command="cache-gc", root=str(report.root))
        path = _write_json(json_dir, "cache_gc.json", payload)
        print(f"wrote {path}", file=sys.stderr)
    if fail_on_debris and report.reaped_tmp_files:
        print(
            f"error: {report.reaped_tmp_files} orphaned .tmp-* file(s) in "
            "the store (--fail-on-debris)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_cache_verify(
    cache_dir: str | None, sample: int, seed: int, jobs: int
) -> int:
    from repro.cache.store import Cache
    from repro.cache.verify import verify_store

    store = Cache(cache_dir)
    report = verify_store(
        store, sample=None if sample <= 0 else sample, seed=seed, jobs=jobs
    )
    for record in report.records:
        line = (
            f"{record.status:<8}  {record.experiment_id} "
            f"(quick={record.quick}, seed={record.seed})"
        )
        if record.detail:
            line += f" — {record.detail}"
        print(line)
    print(
        f"cache verify: {report.checked} checked, "
        f"{report.mismatches} mismatch(es), {report.stale} stale "
        f"(jobs={report.jobs})"
    )
    return 0 if report.ok else 1


def _cmd_bench(
    ids: list[str] | None,
    quick: bool,
    seed: int,
    jobs: int,
    output: str | None,
    cache_dir: str | None,
    history: bool = False,
    suite: str = "cache",
) -> int:
    import json

    if suite == "sim":
        from repro.simulation.bench import SIM_BENCHMARK_NAME, run_sim_bench

        if ids:
            print(
                "error: the sim suite benchmarks fixed simulator "
                "workloads, not registry ids",
                file=sys.stderr,
            )
            return 2
        payload = run_sim_bench(quick=quick, seed=seed)
        benchmark = SIM_BENCHMARK_NAME
        output = output or "BENCH_sim.json"
    elif suite == "machine":
        from repro.machine.bench import (
            MACHINE_BENCHMARK_NAME,
            run_machine_bench,
        )

        if ids:
            print(
                "error: the machine suite benchmarks fixed trace-machine "
                "workloads, not registry ids",
                file=sys.stderr,
            )
            return 2
        payload = run_machine_bench(quick=quick, seed=seed)
        benchmark = MACHINE_BENCHMARK_NAME
        output = output or "BENCH_machine.json"
    else:
        from repro.cache.bench import run_cache_bench

        payload = run_cache_bench(
            quick=quick,
            seed=seed,
            jobs=jobs,
            cache_dir=cache_dir,
            ids=ids or None,
        )
        benchmark = "cache-cold-vs-warm"
        output = output or "BENCH_cache.json"
    regressed = False
    if history:
        from repro.cache.history import (
            append_record,
            check_regression,
            render_trend,
        )

        doc = append_record(output, payload, benchmark=benchmark)
        print(render_trend(doc))
        check = check_regression(doc)
        if check["status"] == "no-baseline":
            print(
                f"regression check: no baseline yet "
                f"({check['baseline_records']} of {check['min_records']} "
                f"comparable prior record(s) on file)"
            )
        else:
            print(
                f"regression check: {check['status']} — latest "
                f"{check['latest_speedup']:.1f}x vs baseline median "
                f"{check['baseline_speedup']:.1f}x over "
                f"{check['baseline_records']} comparable record(s) "
                f"(threshold {check['threshold']:.2f})"
            )
        regressed = check["status"] == "regression"
    else:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    speedup = payload["speedup"]
    if suite in ("sim", "machine"):
        fast_name = "chunked" if suite == "sim" else "kernel"
        print(
            f"{suite} bench: scalar {payload['scalar_wall_time_s']:.2f}s, "
            f"{fast_name} {payload['chunked_wall_time_s']:.2f}s"
            + (f", min speedup {speedup:.1f}x" if speedup else "")
        )
        for workload in payload["workloads"]:
            wsp = workload["speedup"]
            print(
                f"  {workload['name']}: "
                f"{workload['scalar_wall_time_s']:.2f}s -> "
                f"{workload['chunked_wall_time_s']:.2f}s"
                + (f" ({wsp:.1f}x)" if wsp else "")
            )
        print(f"bit-identical: {payload['bit_identical']}")
    else:
        print(
            f"cache bench: cold {payload['cold_wall_time_s']:.2f}s, "
            f"warm {payload['warm_wall_time_s']:.2f}s"
            + (f", speedup {speedup:.1f}x" if speedup else "")
        )
        print(
            f"warm hits: "
            f"{payload['warm_hits']}/{len(payload['experiments'])}, "
            f"bit-identical: {payload['bit_identical']}"
        )
    print(f"wrote {output}", file=sys.stderr)
    return 0 if payload["bit_identical"] and not regressed else 1


def _cmd_lint(
    paths: list[str],
    include_tests: bool,
    rules: list[str] | None,
    list_rules: bool,
    deep: bool = False,
    stale: bool = False,
) -> int:
    from repro.devtools import all_rules, lint_paths

    if list_rules:
        width = max(len(rule.rule_id) for rule in all_rules())
        for rule in all_rules():
            print(f"{rule.rule_id.ljust(width)}  {rule.summary}")
        return 0
    diagnostics = list(
        lint_paths(
            paths,
            include_tests=include_tests,
            rule_ids=rules,
            report_stale=stale,
        )
    )
    if deep:
        from repro.devtools.analyze import analyze_paths

        report = analyze_paths(paths, include_tests=include_tests)
        diagnostics.extend(report.diagnostics)
        diagnostics.sort()
    for diag in diagnostics:
        print(diag.format())
    if diagnostics:
        print(
            f"repro lint: {len(diagnostics)} finding(s)"
            " — see docs/DEVTOOLS.md for rules and suppressions",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_analyze(
    paths: list[str],
    include_tests: bool,
    as_json: bool,
    graph: str | None,
) -> int:
    from repro.devtools.analyze import analyze_paths, render_dot, render_json

    report = analyze_paths(paths, include_tests=include_tests)
    if graph is not None:
        with open(graph, "w", encoding="utf-8") as fh:
            fh.write(render_dot(report))
        print(f"wrote {graph}", file=sys.stderr)
    if as_json:
        print(render_json(report))
        return 0 if report.ok else 1
    for diag in report.diagnostics:
        print(diag.format())
    impure = sum(
        1 for verdict in report.classifications.values() if verdict == "impure"
    )
    chains = sum(len(exp.chains) for exp in report.experiments)
    print(
        f"repro analyze: {len(report.graph.tables)} module(s), "
        f"{len(report.graph.symbols)} symbol(s), {impure} impure, "
        f"{len(report.experiments)} experiment(s) with {chains} tainted "
        f"chain(s), {report.waived} waived finding(s)",
        file=sys.stderr,
    )
    if report.diagnostics:
        print(
            f"repro analyze: {len(report.diagnostics)} finding(s)"
            " — see docs/DEVTOOLS.md ('Deep analysis') for rules, chains, "
            "and suppressions",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(
                args.ids,
                args.quick,
                args.seed,
                args.output,
                jobs=args.jobs,
                json_dir=args.json_dir,
                cache=args.cache,
                cache_dir=args.cache_dir,
            )
        if args.command == "show-profile":
            return _cmd_show_profile(
                args.n,
                pos_n=args.pos_n,
                quick=args.quick,
                seed=args.seed,
                json_dir=args.json_dir,
            )
        if args.command == "solve":
            return _cmd_solve(
                args.spec,
                args.n,
                args.dist,
                quick=args.quick,
                seed=args.seed,
                json_dir=args.json_dir,
            )
        if args.command == "cache":
            if args.cache_command == "stats":
                return _cmd_cache_stats(args.cache_dir, json_dir=args.json_dir)
            if args.cache_command == "clear":
                return _cmd_cache_clear(args.cache_dir)
            if args.cache_command == "migrate":
                return _cmd_cache_migrate(args.cache_dir)
            if args.cache_command == "gc":
                return _cmd_cache_gc(
                    args.cache_dir,
                    args.max_bytes,
                    args.max_entries,
                    args.max_age_days,
                    args.tmp_grace_s,
                    args.dry_run,
                    args.fail_on_debris,
                    json_dir=args.json_dir,
                    max_lifetime_days=args.max_lifetime_days,
                )
            if args.cache_command == "verify":
                return _cmd_cache_verify(
                    args.cache_dir, args.sample, args.seed, args.jobs
                )
        if args.command == "serve":
            return _cmd_serve(
                args.host,
                args.port,
                args.jobs,
                args.max_inflight,
                args.cache_dir,
                max_requests_per_conn=args.max_requests_per_conn,
                idle_timeout=args.idle_timeout,
                hot_bytes=args.hot_bytes,
            )
        if args.command == "bench":
            return _cmd_bench(
                args.ids,
                args.quick,
                args.seed,
                args.jobs,
                args.output,
                args.cache_dir,
                history=args.history,
                suite=args.suite,
            )
        if args.command == "lint":
            return _cmd_lint(
                args.paths,
                args.include_tests,
                args.rules,
                args.list_rules,
                deep=args.deep,
                stale=args.stale,
            )
        if args.command == "analyze":
            return _cmd_analyze(
                args.paths,
                args.include_tests,
                args.as_json,
                args.graph,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
