"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands:

* ``list`` — enumerate registered experiments with their claims;
* ``run <id> [...ids|all]`` — run experiments through the
  :mod:`repro.runtime` layer and print their tables; ``--jobs N`` fans
  experiments over a process pool (bit-identical results at any worker
  count), ``-o FILE`` writes the rendered text, ``--json DIR`` writes
  one schema-versioned ``RunArtifact`` per experiment plus a
  ``manifest.json`` with timings and counters (``docs/ARTIFACTS.md``);
* ``show-profile <n>`` — render the worst-case profile ``M_{8,4}(n)``;
* ``solve`` — print the exact Lemma-3 recurrence table for a named
  spec, problem size, and box-size distribution (DSL:
  ``point:16``, ``uniform:4:1:5``, ``pareto:4:1:6:0.5``,
  ``worstcase:8:4:256``, ...);
* ``lint`` — run the repo's AST-based invariant linter (RNG/units/
  float-equality/frozen-artifact/exports discipline) over source trees;
  exit 1 on findings, for CI.  See ``docs/DEVTOOLS.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Cache-adaptive analysis toolkit — reproduction of 'Closing the "
            "Gap Between Cache-oblivious and Cache-adaptive Analysis' "
            "(SPAA 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run_p = sub.add_parser("run", help="run experiments by id (or 'all')")
    run_p.add_argument("ids", nargs="+", help="experiment ids, or 'all'")
    run_p.add_argument(
        "--full",
        action="store_true",
        help="full-size sweeps (slower); default is the quick configuration",
    )
    run_p.add_argument("--seed", type=int, default=0, help="random seed")
    run_p.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the rendered reports to this file",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments across N worker processes (default 1); "
        "results are bit-identical at any worker count",
    )
    run_p.add_argument(
        "--json",
        dest="json_dir",
        default=None,
        metavar="DIR",
        help="write one RunArtifact JSON per experiment plus manifest.json "
        "into DIR (created if missing)",
    )

    prof_p = sub.add_parser(
        "show-profile", help="render the worst-case profile M_{8,4}(n)"
    )
    prof_p.add_argument("n", type=int, help="problem size (a power of 4)")

    solve_p = sub.add_parser(
        "solve",
        help="exact expected-cost table from the Lemma-3 recurrence",
    )
    solve_p.add_argument("--spec", default="MM-SCAN", help="named algorithm spec")
    solve_p.add_argument("--n", type=int, required=True, help="problem size (blocks)")
    solve_p.add_argument(
        "--dist",
        required=True,
        help="box-size distribution (e.g. uniform:4:1:5, point:16, "
        "pareto:4:1:6:0.5, worstcase:8:4:256)",
    )

    lint_p = sub.add_parser(
        "lint",
        help="run the repro invariant linter (exit 1 on findings)",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "examples"],
        help="files or directories to lint (default: src benchmarks examples)",
    )
    lint_p.add_argument(
        "--include-tests",
        action="store_true",
        help="also lint test files (exempt by default)",
    )
    lint_p.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE",
        help="run only this rule (repeatable)",
    )
    lint_p.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _cmd_list() -> int:
    from repro.experiments.registry import EXPERIMENTS

    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, exp in EXPERIMENTS.items():
        print(f"{eid.ljust(width)}  {exp.title}")
    return 0


def _cmd_run(
    ids: list[str],
    full: bool,
    seed: int,
    output: str | None,
    jobs: int = 1,
    json_dir: str | None = None,
) -> int:
    from time import perf_counter

    from repro.experiments.registry import EXPERIMENTS
    from repro.runtime.runner import ExperimentRunner

    targets = list(EXPERIMENTS) if ids == ["all"] else ids
    runner = ExperimentRunner(jobs=jobs)
    failures = 0
    chunks: list[str] = []
    artifacts = []
    start = perf_counter()
    for i, artifact in enumerate(
        runner.run_iter(targets, quick=not full, seed=seed)
    ):
        text = artifact.render()
        if i:
            print()
        print(text)
        chunks.append(text)
        artifacts.append(artifact)
        if not artifact.reproduced:
            failures += 1
    total_wall_time_s = perf_counter() - start
    if output is not None:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write("\n\n".join(chunks) + "\n")
    if json_dir is not None:
        _write_artifact_dir(
            json_dir,
            artifacts,
            seed=seed,
            quick=not full,
            jobs=jobs,
            total_wall_time_s=total_wall_time_s,
        )
    return 1 if failures else 0


def _write_artifact_dir(
    json_dir: str,
    artifacts: list,
    seed: int,
    quick: bool,
    jobs: int,
    total_wall_time_s: float,
) -> None:
    """Write one ``<id>.json`` per artifact plus ``manifest.json``."""
    import os

    from repro.runtime.manifest import RunManifest

    os.makedirs(json_dir, exist_ok=True)
    names = {}
    for artifact in artifacts:
        name = f"{artifact.experiment_id}.json"
        names[artifact.experiment_id] = name
        with open(os.path.join(json_dir, name), "w", encoding="utf-8") as fh:
            fh.write(artifact.to_json() + "\n")
    manifest = RunManifest.build(
        artifacts,
        seed=seed,
        quick=quick,
        jobs=jobs,
        total_wall_time_s=total_wall_time_s,
        artifact_names=names,
    )
    with open(os.path.join(json_dir, "manifest.json"), "w", encoding="utf-8") as fh:
        fh.write(manifest.to_json() + "\n")


def _cmd_solve(spec_name: str, n: int, dist_text: str) -> int:
    from repro.algorithms.library import get_spec
    from repro.analysis.recurrence import solve_recurrence
    from repro.profiles.parsing import parse_distribution
    from repro.util.tables import format_table

    spec = get_spec(spec_name)
    dist = parse_distribution(dist_text)
    solution = solve_recurrence(spec, n, dist)
    print(f"{spec.describe()}")
    print(f"Sigma = {dist.name}  (mean box {dist.mean():.4g})")
    rows = [
        (rec.n, rec.f, rec.f_prime, rec.q, rec.m_n, rec.cost_ratio)
        for rec in solution.levels
    ]
    print(
        format_table(
            ["n", "f(n)", "f'(n)", "q", "m_n", "E[ratio]"],
            rows,
            title="exact Lemma-3 recurrence (Definition-3 cost = f(n)*m_n/n^e)",
        )
    )
    print(f"Eq-8 product of f/f' over levels: {solution.eq8_product():.6g}")
    return 0


def _cmd_show_profile(n: int) -> int:
    from repro.profiles.worst_case import worst_case_potential, worst_case_profile

    profile = worst_case_profile(8, 4, n)
    print(f"M_{{8,4}}({n}): {len(profile)} boxes, duration {profile.total_time}")
    print(f"total potential / n^1.5 = {worst_case_potential(8, 4, n) / n**1.5:.3f}")
    print(profile.sparkline(width=100))
    return 0


def _cmd_lint(
    paths: list[str],
    include_tests: bool,
    rules: list[str] | None,
    list_rules: bool,
) -> int:
    from repro.devtools import all_rules, lint_paths

    if list_rules:
        width = max(len(rule.rule_id) for rule in all_rules())
        for rule in all_rules():
            print(f"{rule.rule_id.ljust(width)}  {rule.summary}")
        return 0
    diagnostics = lint_paths(paths, include_tests=include_tests, rule_ids=rules)
    for diag in diagnostics:
        print(diag.format())
    if diagnostics:
        print(
            f"repro lint: {len(diagnostics)} finding(s)"
            " — see docs/DEVTOOLS.md for rules and suppressions",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(
                args.ids,
                args.full,
                args.seed,
                args.output,
                jobs=args.jobs,
                json_dir=args.json_dir,
            )
        if args.command == "show-profile":
            return _cmd_show_profile(args.n)
        if args.command == "solve":
            return _cmd_solve(args.spec, args.n, args.dist)
        if args.command == "lint":
            return _cmd_lint(
                args.paths, args.include_tests, args.rules, args.list_rules
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
