"""repro.devtools — the ``repro lint`` invariant linter.

An AST-based static-analysis pass enforcing the repository's
paper-faithfulness invariants: RNG discipline (bit-for-bit Monte-Carlo
replay), units discipline (blocks, never bytes, in capacity arithmetic),
tolerance-explicit float comparison in ``analysis/``, frozen measurement
artifacts, no mutable defaults, and a complete ``__all__`` on every
library module.

Programmatic use::

    from repro.devtools import lint_paths

    for diag in lint_paths(["src", "benchmarks", "examples"]):
        print(diag.format())

CLI use: ``python -m repro lint [paths...]`` (exit 1 on findings, the
CI gate).  Suppress a finding with ``# repro-lint: disable=<rule>`` on
the offending line, or ``# repro-lint: disable-file=<rule>`` for a
module-wide waiver; see ``docs/DEVTOOLS.md``.
"""

from repro.devtools import rules as _rules  # noqa: F401  (registers built-ins)
from repro.devtools.context import ModuleContext, classify_role
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.engine import iter_python_files, lint_file, lint_paths, lint_source
from repro.devtools.registry import LintRule, all_rules, get_rules, register_rule
from repro.devtools.suppressions import SuppressionIndex, scan_suppressions

__all__ = [
    "Diagnostic",
    "LintRule",
    "ModuleContext",
    "SuppressionIndex",
    "all_rules",
    "classify_role",
    "get_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
    "scan_suppressions",
]
