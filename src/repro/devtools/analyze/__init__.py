"""Whole-program determinism analysis (``repro analyze``).

Public surface:

* :func:`analyze_paths` — run the full pipeline, get an
  :class:`AnalysisReport`;
* :func:`build_graph` / :class:`CallGraph` — the reference graph shared
  with the per-symbol cache fingerprints;
* :func:`render_json` / :func:`render_dot` — serializers for
  ``repro analyze --json`` / ``--graph``.
"""

from repro.devtools.analyze.callgraph import (
    CallGraph,
    SymbolKey,
    build_graph,
    reachable_from,
)
from repro.devtools.analyze.effects import EFFECT_RULES, scan_effects
from repro.devtools.analyze.project import ModuleInfo, Project, module_name_for
from repro.devtools.analyze.report import (
    AnalysisReport,
    ExperimentReport,
    SourceFinding,
    TaintChain,
    analyze_paths,
    find_experiments,
    render_dot,
    render_json,
)
from repro.devtools.analyze.symbols import (
    MODULE_SYMBOL,
    Binding,
    ModuleSymbols,
    Symbol,
    build_module_symbols,
    import_time_digest,
    symbol_digest,
    symbol_scan_nodes,
)
from repro.devtools.analyze.taint import TAINT_RULES, collect_aliases, scan_taints

__all__ = [
    "AnalysisReport",
    "Binding",
    "CallGraph",
    "EFFECT_RULES",
    "ExperimentReport",
    "MODULE_SYMBOL",
    "ModuleInfo",
    "ModuleSymbols",
    "Project",
    "SourceFinding",
    "Symbol",
    "SymbolKey",
    "TAINT_RULES",
    "TaintChain",
    "analyze_paths",
    "build_graph",
    "build_module_symbols",
    "collect_aliases",
    "find_experiments",
    "import_time_digest",
    "module_name_for",
    "reachable_from",
    "render_dot",
    "render_json",
    "scan_effects",
    "scan_taints",
    "symbol_digest",
    "symbol_scan_nodes",
]
