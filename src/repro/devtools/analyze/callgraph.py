"""Project-wide symbol reference graph (the "call graph").

Edges over-approximate "executing S may execute T": every *reference*
from S's code to a first-party symbol T becomes an edge, whether the
reference is a call, a decorator, a default value, or a function passed
by name.  That conservatism is what lets both consumers trust the
reachable set:

* the taint pass (:mod:`repro.devtools.analyze.report`) — a
  nondeterminism source anywhere in the reachable set taints the entry;
* the per-symbol cache fingerprints
  (:func:`repro.cache.fingerprint.fingerprint_symbols`) — a cache entry
  stays warm only while nothing in the reachable set changed.

Resolution rules:

* a name bound by ``from m import f`` resolves through re-export chains
  to the defining module;
* an attribute chain rooted at a module binding descends submodules and
  stops at the first symbol;
* importing a module (any form, anywhere) adds an edge to its
  ``<module>`` body and to every ancestor package's ``<module>`` (they
  all execute on import);
* an attribute of a first-party module that resolves to nothing — e.g.
  a PEP 562 ``__getattr__`` export — degrades to a *module-wide* edge
  (every symbol of that module) and marks the referent ``unknown``.
"""

# repro-lint: disable-file=nondet-id -- id() keys in-process AST-node
# maps (one tree, one pass); identities are never compared across runs
# or emitted.

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.devtools.analyze.project import Project
from repro.devtools.analyze.symbols import (
    MODULE_SYMBOL,
    Binding,
    ModuleSymbols,
    Symbol,
    build_module_symbols,
    has_opaque_decorator,
    symbol_scan_nodes,
)

__all__ = [
    "SymbolKey",
    "CallGraph",
    "GraphBuilder",
    "build_graph",
    "reachable_from",
]

SymbolKey = tuple[str, str]


@dataclass
class CallGraph:
    """Symbols, edges, and unresolved-reference markers."""

    project: Project
    tables: dict[str, ModuleSymbols] = field(default_factory=dict)
    symbols: dict[SymbolKey, Symbol] = field(default_factory=dict)
    edges: dict[SymbolKey, set[SymbolKey]] = field(default_factory=dict)
    #: symbol -> dotted references that could not be resolved (feeds the
    #: "unknown" classification).
    unresolved: dict[SymbolKey, set[str]] = field(default_factory=dict)

    def add_edge(self, src: SymbolKey, dst: SymbolKey) -> None:
        if dst != src:
            self.edges.setdefault(src, set()).add(dst)

    def successors(self, key: SymbolKey) -> set[SymbolKey]:
        return self.edges.get(key, set())

    def reverse_edges(self) -> dict[SymbolKey, set[SymbolKey]]:
        reverse: dict[SymbolKey, set[SymbolKey]] = {}
        for src, dsts in self.edges.items():
            for dst in dsts:
                reverse.setdefault(dst, set()).add(src)
        return reverse

    def iter_module_symbols(self, module: str) -> Iterator[Symbol]:
        table = self.tables.get(module)
        if table is not None:
            yield from table.symbols.values()


def _ancestor_modules(module: str) -> list[str]:
    parts = module.split(".")
    return [".".join(parts[:i]) for i in range(1, len(parts))]


class GraphBuilder:
    """Incremental graph builder: ``build`` may be called repeatedly
    with new seeds; already-processed modules are never re-scanned, so
    one builder can serve many entry points (the per-symbol fingerprint
    memo does exactly that)."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph = CallGraph(project=project)
        self._pending: list[str] = []

    # -- module loading ---------------------------------------------------

    def ensure_module(self, module: str) -> ModuleSymbols | None:
        """Load (and queue for edge-processing) ``module``'s table."""
        table = self.graph.tables.get(module)
        if table is not None:
            return table
        info = self.project.get(module)
        if info is None:
            return None
        table = build_module_symbols(self.project, info)
        self.graph.tables[module] = table
        for sym in table.symbols.values():
            self.graph.symbols[sym.key] = sym
        self._pending.append(module)
        return table

    # -- edge helpers -----------------------------------------------------

    def module_import_edges(self, src: SymbolKey, module: str) -> None:
        """``src`` imports ``module``: edge to its body and every
        ancestor package body (they execute along the import chain)."""
        for mod in [module, *_ancestor_modules(module)]:
            if self.ensure_module(mod) is not None:
                self.graph.add_edge(src, (mod, MODULE_SYMBOL))

    def module_wide_edges(self, src: SymbolKey, module: str, ref: str) -> None:
        """Unresolvable attribute on a first-party module: depend on
        everything it defines, and mark the reference unresolved."""
        table = self.ensure_module(module)
        self.graph.unresolved.setdefault(src, set()).add(ref)
        if table is None:
            return
        for sym in table.symbols.values():
            self.graph.add_edge(src, sym.key)

    def resolve_symbol(
        self, module: str, name: str, _seen: frozenset[SymbolKey] = frozenset()
    ) -> SymbolKey | None:
        """Follow re-export chains to the defining module's symbol.

        Returns ``None`` when the chain dead-ends (dynamic export);
        callers degrade to a module-wide edge."""
        key = (module, name)
        if key in _seen:
            return None  # re-export cycle
        table = self.ensure_module(module)
        if table is None:
            return None
        if name in table.symbols:
            return key
        binding = table.bindings.get(name)
        if binding is None:
            if name in table.module_assigns:
                # a module-level constant: defined by the module body,
                # digested and tainted through ``<module>``
                return (module, MODULE_SYMBOL)
            return None
        if binding.kind == "module":
            return (binding.module, MODULE_SYMBOL)
        assert binding.symbol is not None
        return self.resolve_symbol(
            binding.module, binding.symbol, _seen | {key}
        )

    def binding_edges(self, src: SymbolKey, binding: Binding, ref: str) -> None:
        if binding.kind == "module":
            self.module_import_edges(src, binding.module)
            return
        assert binding.symbol is not None
        resolved = self.resolve_symbol(binding.module, binding.symbol)
        if resolved is None:
            self.module_wide_edges(src, binding.module, ref)
        else:
            self.graph.add_edge(src, resolved)

    def attribute_edges(
        self, src: SymbolKey, chain: tuple[str, ...], table: ModuleSymbols
    ) -> bool:
        """Edges for a dotted chain rooted at a module binding.  Returns
        True when the chain was handled (rooted first-party)."""
        binding = table.bindings.get(chain[0])
        if binding is None:
            return False
        if binding.kind == "symbol":
            self.binding_edges(src, binding, ".".join(chain))
            return True
        current = binding.module
        self.module_import_edges(src, current)
        for attr in chain[1:]:
            submodule = f"{current}.{attr}"
            if self.project.resolve_path(submodule) is not None:
                current = submodule
                self.module_import_edges(src, current)
                continue
            resolved = self.resolve_symbol(current, attr)
            if resolved is None:
                self.module_wide_edges(src, current, ".".join(chain))
            else:
                self.graph.add_edge(src, resolved)
            return True
        return True

    # -- per-symbol reference scan ---------------------------------------

    def scan_refs(
        self, src: SymbolKey, nodes: list[ast.AST], table: ModuleSymbols
    ) -> None:
        """Add edges for every first-party reference inside ``nodes``."""
        # A module-level ``from m import f`` only *binds* a name — the
        # import executes m's body, not f.  Uses of f elsewhere resolve
        # through the binding table.  Inside a def the binding is local
        # (not in the table), so there the alias itself must edge to f.
        binding_only = src[1] == MODULE_SYMBOL
        skip_names: set[int] = set()
        for top in nodes:
            for node in ast.walk(top):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if self.project.is_first_party(alias.name):
                            self.module_import_edges(src, alias.name)
                elif isinstance(node, ast.ImportFrom):
                    self._local_import_from(
                        src, node, table, binding_only=binding_only
                    )
                elif isinstance(node, ast.Attribute):
                    chain = _dotted_chain(node)
                    if chain is not None and self.attribute_edges(
                        src, chain, table
                    ):
                        # the root Name is covered by the chain edges
                        root = _chain_root(node)
                        if root is not None:
                            skip_names.add(id(root))
                elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Load
                ):
                    if id(node) in skip_names:
                        continue
                    binding = table.bindings.get(node.id)
                    if binding is not None:
                        self.binding_edges(src, binding, node.id)

    def _local_import_from(
        self,
        src: SymbolKey,
        node: ast.ImportFrom,
        table: ModuleSymbols,
        binding_only: bool = False,
    ) -> None:
        from repro.devtools.analyze.symbols import resolve_relative_import

        if node.level:
            importing = table.module
            path = self.project.resolve_path(importing)
            is_pkg = path is not None and path.name == "__init__.py"
            base = resolve_relative_import(
                node.module or "", importing, node.level, is_pkg
            )
            if base is None:
                return
        else:
            base = node.module or ""
        if not base or not self.project.is_first_party(base):
            return
        self.module_import_edges(src, base)
        for alias in node.names:
            if alias.name == "*":
                # star-imported names never land in the binding table,
                # so uses of them cannot resolve later — stay sound by
                # depending on everything the source module defines.
                self.module_wide_edges(src, base, f"{base}.*")
                continue
            submodule = f"{base}.{alias.name}"
            if self.project.resolve_path(submodule) is not None:
                # ``from pkg import submod`` does execute submod's body
                self.module_import_edges(src, submodule)
                continue
            if binding_only:
                continue
            resolved = self.resolve_symbol(base, alias.name)
            if resolved is None:
                self.module_wide_edges(src, base, submodule)
            else:
                self.graph.add_edge(src, resolved)

    # -- module processing ------------------------------------------------

    def process_module(self, module: str) -> None:
        table = self.graph.tables[module]
        module_key = (module, MODULE_SYMBOL)
        for name, nodes in symbol_scan_nodes(table).items():
            self.scan_refs((module, name), nodes, table)
        for name, node in table.nodes.items():
            if not isinstance(node, ast.ClassDef):
                continue
            # A class body executes at import: its non-method statements
            # (base classes, field defaults, class attrs) are module
            # import-time behavior even though the class symbol owns them.
            class_level: list[ast.AST] = [
                stmt
                for stmt in node.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            ]
            self.scan_refs(module_key, class_level, table)
            if has_opaque_decorator(node):
                # an opaque class decorator may instantiate the class at
                # import: its whole body is import-time behavior
                self.graph.add_edge(module_key, (module, name))

    def build(self, seeds: list[str]) -> CallGraph:
        for seed in seeds:
            self.ensure_module(seed)
        while self._pending:
            module = self._pending.pop()
            self.process_module(module)
        return self.graph


def _dotted_chain(node: ast.AST) -> tuple[str, ...] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def _chain_root(node: ast.Attribute) -> ast.Name | None:
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        current = current.value
    return current if isinstance(current, ast.Name) else None


def build_graph(project: Project, seeds: list[str]) -> CallGraph:
    """Build the reference graph over ``seeds`` and everything they
    transitively touch (lazily resolved through ``project``)."""
    return GraphBuilder(project).build(list(seeds))


def reachable_from(
    graph: CallGraph, entries: set[SymbolKey]
) -> dict[SymbolKey, SymbolKey | None]:
    """BFS over forward edges; maps each reachable symbol to its BFS
    parent (``None`` for entries) so callers can rebuild shortest
    chains."""
    parents: dict[SymbolKey, SymbolKey | None] = {
        key: None for key in entries if key in graph.symbols
    }
    frontier = list(parents)
    while frontier:
        nxt: list[SymbolKey] = []
        for key in frontier:
            for succ in sorted(graph.successors(key)):
                if succ in parents or succ not in graph.symbols:
                    continue
                parents[succ] = key
                nxt.append(succ)
        frontier = nxt
    return parents
