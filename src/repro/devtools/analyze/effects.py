"""Effect inference: observable state a symbol leaks between calls.

Two effects, one rule id each:

* ``effect-global-mutation`` — a function (or method) rebinding a
  module-level name via ``global``, or mutating a module-level container
  in place (``CACHE.append``, ``TABLE[k] = v``, ``STATS += ...``).  Such
  state makes a function's output depend on call *order*, which the
  cache's pure-function-of-``(id, quick, seed)`` contract forbids.
  Module bodies are exempt: initializing a global at import time is how
  globals are born.
* ``effect-mutable-default`` — a ``def`` whose default value is a
  mutable literal (``[]``, ``{}``, ``set()``…).  The default is created
  once at import and shared across calls, so any mutation leaks between
  invocations.

Both are *intra*-symbol checks; reachability (does an experiment hit
this function?) is layered on by the report pass, same as the taint
seeds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.analyze.symbols import ModuleSymbols
from repro.devtools.analyze.taint import Finding

__all__ = ["EFFECT_RULES", "scan_effects"]

EFFECT_RULES = {
    "effect-global-mutation": "mutates module-level state from a function",
    "effect-mutable-default": "mutable default value shared across calls",
}

#: In-place container mutators worth flagging on a module-level name.
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "add",
    "discard",
    "remove",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "appendleft",
    "popleft",
}


def _scope_walk(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func``'s own scope: a nested def/class is yielded (it
    binds a name here) but not descended into (its body is a different
    scope, scanned in its own pass)."""
    stack: list[ast.AST] = [func]
    while stack:
        node = stack.pop()
        yield node
        if node is not func and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound in ``func``'s own scope: params plus plain
    assignments.  A bare-name Store anywhere in the body shadows the
    module global for the whole function (Python scoping), so mutations
    through it are local, not global."""
    args = func.args
    names = {
        a.arg
        for a in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
    }
    for node in _scope_walk(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if node is not func:
                names.add(node.name)
    return names


def _subscript_root(node: ast.AST) -> str | None:
    """Root name of ``X[...]...`` / ``X.attr...`` assignment targets."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"list", "dict", "set", "bytearray", "deque"}
    )


def _scan_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    module_globals: set[str],
    findings: list[Finding],
) -> None:
    declared_global: set[str] = set()
    for node in _scope_walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    locals_ = _local_names(func) - declared_global

    def emit(node: ast.AST, what: str) -> None:
        findings.append(
            Finding(
                rule="effect-global-mutation",
                lineno=getattr(node, "lineno", func.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                message=(
                    f"{what} in {func.name}() — "
                    f"{EFFECT_RULES['effect-global-mutation']}"
                ),
            )
        )

    for node in _scope_walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id in declared_global:
                emit(node, f"rebinds global {node.id!r}")
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, (ast.Subscript, ast.Attribute)):
                    continue
                root = _subscript_root(target)
                if (
                    root is not None
                    and root in module_globals
                    and root not in locals_
                ):
                    emit(node, f"writes into module-level {root!r}")
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr not in _MUTATORS:
                continue
            root = _subscript_root(node.func.value)
            if (
                root is not None
                and root in module_globals
                and root not in locals_
            ):
                emit(node, f"{root}.{node.func.attr}()")


def scan_effects(node: ast.stmt, table: ModuleSymbols) -> list[Finding]:
    """Effect findings for one top-level def/class symbol."""
    findings: list[Finding] = []
    module_globals = table.module_assigns
    for func in ast.walk(node):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        _scan_function(func, module_globals, findings)
        for default in [
            *func.args.defaults,
            *[d for d in func.args.kw_defaults if d is not None],
        ]:
            if _mutable_default(default):
                findings.append(
                    Finding(
                        rule="effect-mutable-default",
                        lineno=default.lineno,
                        col=default.col_offset + 1,
                        message=(
                            f"mutable default in {func.name}() — "
                            f"{EFFECT_RULES['effect-mutable-default']}"
                        ),
                    )
                )
    return findings
