"""Module discovery and lazy first-party resolution for deep analysis.

A :class:`Project` is the static mirror of an import graph: it maps
dotted module names to parsed source files under one or more package
roots, without ever importing anything.  The seed modules come from the
paths handed to ``repro analyze``; everything they transitively import
is resolved *lazily* against the same roots, so analyzing
``src/repro/experiments`` still sees taint sources three layers down in
``repro.simulation`` even though only the experiments were named.

The resolution machinery (``module_path``, relative-import math) is
shared with :mod:`repro.cache.fingerprint` — the analyzer and the cache
fingerprints must agree on what "the first-party closure" means, or a
symbol the analyzer reasons about could be missing from the fingerprint
that caches its output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.cache.fingerprint import module_path
from repro.errors import AnalysisError

__all__ = ["ModuleInfo", "Project", "module_name_for"]


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed first-party module."""

    name: str
    path: Path
    source: str
    tree: ast.Module


def module_name_for(path: Path) -> tuple[str, Path] | None:
    """Dotted module name of ``path`` plus the package root above it.

    Climbs parent directories while they carry ``__init__.py``; the
    first directory without one is the root (``src`` for
    ``src/repro/cli.py`` -> ``("repro.cli", .../src)``).  Returns
    ``None`` for files outside any package (no containing
    ``__init__.py``, and not a plain top-level module).
    """
    path = path.resolve()
    if path.name == "__init__.py":
        parts: list[str] = []
        current = path.parent
    else:
        parts = [path.stem]
        current = path.parent
    while (current / "__init__.py").is_file():
        parts.append(current.name)
        current = current.parent
    if not parts:
        return None
    return ".".join(reversed(parts)), current


class Project:
    """Lazy, parse-only view of the first-party module tree.

    ``roots`` are directories containing top-level packages;
    ``prefixes`` optionally restricts which top-level package names
    count as first-party (``None`` = anything resolvable under a root).
    Modules parse once and memoize; a module that exists but does not
    parse raises :class:`~repro.errors.AnalysisError` — a broken file
    must fail the analysis, not silently shrink the closure.
    """

    def __init__(
        self,
        roots: Sequence[Path | str],
        prefixes: Iterable[str] | None = None,
    ) -> None:
        self.roots = [Path(r).resolve() for r in roots]
        self.prefixes = None if prefixes is None else frozenset(prefixes)
        self._cache: dict[str, ModuleInfo | None] = {}

    @classmethod
    def from_paths(
        cls,
        paths: Sequence[Path | str],
        include_tests: bool = False,
    ) -> tuple["Project", list[str]]:
        """Build a project from CLI-style paths; returns it plus the
        seed module names (sorted, deduplicated) the paths name."""
        from repro.devtools.engine import iter_python_files

        roots: list[Path] = []
        seeds: list[str] = []
        for file in iter_python_files(paths, include_tests=include_tests):
            named = module_name_for(Path(file))
            if named is None:
                continue
            name, root = named
            if root not in roots:
                roots.append(root)
            if name not in seeds:
                seeds.append(name)
        if not roots:
            raise AnalysisError(
                f"no python modules found under {[str(p) for p in paths]}"
            )
        return cls(roots), sorted(seeds)

    def resolve_path(self, module: str) -> Path | None:
        """Source file for dotted ``module`` under the roots, if any."""
        for root in self.roots:
            found = module_path(module, root)
            if found is not None:
                return found
        return None

    def is_first_party(self, module: str) -> bool:
        """Whether ``module`` belongs to the analyzed tree."""
        top = module.split(".", 1)[0]
        if self.prefixes is not None and top not in self.prefixes:
            return False
        return self.resolve_path(top) is not None

    def get(self, module: str) -> ModuleInfo | None:
        """The parsed module, or ``None`` when no file resolves (a
        namespace fragment, or genuinely not first-party)."""
        if module in self._cache:
            return self._cache[module]
        path = self.resolve_path(module)
        info: ModuleInfo | None = None
        if path is not None:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise AnalysisError(f"cannot read {path}: {exc}") from None
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                raise AnalysisError(f"cannot parse {path}: {exc}") from None
            info = ModuleInfo(name=module, path=path, source=source, tree=tree)
        self._cache[module] = info
        return info
