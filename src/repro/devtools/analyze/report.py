"""The deep-analysis driver: classify, propagate, report.

Pipeline (one call to :func:`analyze_paths`):

1. discover modules under the given paths, build the project-wide
   reference graph (:mod:`callgraph`);
2. run the intrinsic passes per symbol — taint seeds (:mod:`taint`) and
   effects (:mod:`effects`) — dropping findings waived by
   ``# repro-lint: disable=...`` comments *before* propagation (a waiver
   is a reviewed claim of determinism, so it must stop the taint at the
   source, not just hide the message);
3. propagate over reverse edges: a symbol that can reach a source is
   ``impure`` (lattice ``impure > unknown > pure``; ``unknown`` comes
   from unresolved references such as PEP 562 dynamic exports);
4. for every registered experiment entry (a module with a top-level
   ``EXPERIMENT_ID = "..."`` constant and a ``run`` symbol), reconstruct
   the shortest call chain from ``run`` (or the module body) to each
   reachable source;
5. emit one :class:`~repro.devtools.diagnostics.Diagnostic` per
   unsuppressed source site, annotated with the experiments it poisons.

``repro analyze`` exits non-zero iff step 5 produced diagnostics.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.devtools.analyze.callgraph import (
    CallGraph,
    SymbolKey,
    build_graph,
    reachable_from,
)
from repro.devtools.analyze.effects import scan_effects
from repro.devtools.analyze.project import Project
from repro.devtools.analyze.symbols import (
    MODULE_SYMBOL,
    symbol_scan_nodes,
)
from repro.devtools.analyze.taint import (
    Finding,
    collect_aliases,
    scan_taints,
)
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.suppressions import scan_suppressions

__all__ = [
    "SourceFinding",
    "TaintChain",
    "ExperimentReport",
    "AnalysisReport",
    "analyze_paths",
    "find_experiments",
    "render_json",
    "render_dot",
]

PURE = "pure"
IMPURE = "impure"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class SourceFinding:
    """One unwaived intrinsic source site, pinned to its symbol."""

    symbol: SymbolKey
    rule: str
    path: str
    lineno: int
    col: int
    message: str


@dataclass(frozen=True)
class TaintChain:
    """Shortest path from an experiment entry down to one source."""

    rule: str
    source: SymbolKey
    chain: tuple[str, ...]  # display names, entry first

    def render(self) -> str:
        return " -> ".join(self.chain)


@dataclass
class ExperimentReport:
    experiment_id: str
    module: str
    chains: list[TaintChain] = field(default_factory=list)


@dataclass
class AnalysisReport:
    graph: CallGraph
    findings: list[SourceFinding]
    waived: int
    classifications: dict[SymbolKey, str]
    #: symbol -> nearest source symbol justifying an ``impure`` verdict.
    impure_via: dict[SymbolKey, SymbolKey]
    experiments: list[ExperimentReport]
    diagnostics: list[Diagnostic]

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def _display_path(path: Path) -> str:
    display = path.as_posix()
    if path.is_absolute():
        try:
            display = path.relative_to(Path.cwd()).as_posix()
        except ValueError:
            pass
    return display


def find_experiments(graph: CallGraph) -> list[tuple[str, str]]:
    """``(experiment_id, module)`` pairs among the analyzed modules.

    The static mirror of the runtime registry contract: an experiment
    module exposes a top-level ``EXPERIMENT_ID = "<str>"`` constant and
    a ``run`` callable."""
    found: list[tuple[str, str]] = []
    for module, table in sorted(graph.tables.items()):
        if "run" not in table.symbols:
            continue
        for stmt in table.info.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "EXPERIMENT_ID"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    found.append((stmt.value.value, module))
    return found


def _collect_intrinsic(
    graph: CallGraph,
) -> tuple[dict[SymbolKey, list[SourceFinding]], int]:
    """Per-symbol unwaived findings plus the waived count."""
    intrinsic: dict[SymbolKey, list[SourceFinding]] = {}
    waived = 0
    for module, table in graph.tables.items():
        info = table.info
        display = _display_path(info.path)
        aliases = collect_aliases(info.tree)
        suppressions = scan_suppressions(info.source, info.tree)
        per_symbol: dict[str, list[Finding]] = {}
        for name, nodes in symbol_scan_nodes(table).items():
            per_symbol[name] = scan_taints(nodes, aliases)
        for name, node in table.nodes.items():
            per_symbol.setdefault(name, []).extend(scan_effects(node, table))
        for name, raw in per_symbol.items():
            for finding in raw:
                diag = Diagnostic(
                    path=display,
                    line=finding.lineno,
                    col=finding.col,
                    rule=finding.rule,
                    message=finding.message,
                )
                if suppressions.is_suppressed(diag):
                    waived += 1
                    continue
                intrinsic.setdefault((module, name), []).append(
                    SourceFinding(
                        symbol=(module, name),
                        rule=finding.rule,
                        path=display,
                        lineno=finding.lineno,
                        col=finding.col,
                        message=finding.message,
                    )
                )
    return intrinsic, waived


def _propagate(
    graph: CallGraph, seeds: set[SymbolKey]
) -> dict[SymbolKey, SymbolKey]:
    """Reverse-BFS: symbol -> nearest seed it can reach."""
    reverse = graph.reverse_edges()
    via: dict[SymbolKey, SymbolKey] = {seed: seed for seed in seeds}
    frontier = sorted(seeds)
    while frontier:
        nxt: list[SymbolKey] = []
        for key in frontier:
            for pred in sorted(reverse.get(key, ())):
                if pred in via:
                    continue
                via[pred] = via[key]
                nxt.append(pred)
        frontier = nxt
    return via


def analyze_paths(
    paths: Sequence[str], include_tests: bool = False
) -> AnalysisReport:
    """Run the whole pipeline over the files/directories in ``paths``."""
    project, seeds = Project.from_paths(paths, include_tests=include_tests)
    graph = build_graph(project, seeds)

    intrinsic, waived = _collect_intrinsic(graph)
    findings = sorted(
        (f for group in intrinsic.values() for f in group),
        key=lambda f: (f.path, f.lineno, f.col, f.rule),
    )

    impure_via = _propagate(graph, set(intrinsic))
    unknown_via = _propagate(graph, set(graph.unresolved))
    classifications: dict[SymbolKey, str] = {}
    for key in graph.symbols:
        if key in impure_via:
            classifications[key] = IMPURE
        elif key in unknown_via:
            classifications[key] = UNKNOWN
        else:
            classifications[key] = PURE

    # Per-experiment chains: forward-BFS from the entry, then backtrack
    # parents from each reachable source.
    experiments: list[ExperimentReport] = []
    poisoned_by: dict[SymbolKey, list[str]] = {}
    for experiment_id, module in find_experiments(graph):
        entries = {(module, "run"), (module, MODULE_SYMBOL)}
        parents = reachable_from(graph, entries)
        report = ExperimentReport(experiment_id=experiment_id, module=module)
        for source in sorted(intrinsic):
            if source not in parents:
                continue
            chain: list[SymbolKey] = [source]
            while parents[chain[-1]] is not None:
                nxt = parents[chain[-1]]
                assert nxt is not None
                chain.append(nxt)
            chain.reverse()
            display = tuple(graph.symbols[k].display() for k in chain)
            for f in intrinsic[source]:
                report.chains.append(
                    TaintChain(rule=f.rule, source=source, chain=display)
                )
            poisoned_by.setdefault(source, []).append(experiment_id)
        experiments.append(report)

    diagnostics: list[Diagnostic] = []
    for f in findings:
        message = f.message
        affected = poisoned_by.get(f.symbol)
        if affected:
            chain = next(
                (
                    c
                    for exp in experiments
                    for c in exp.chains
                    if c.source == f.symbol and c.rule == f.rule
                ),
                None,
            )
            message += f" [poisons: {', '.join(sorted(set(affected)))}"
            if chain is not None:
                message += f"; chain: {chain.render()}"
            message += "]"
        diagnostics.append(
            Diagnostic(
                path=f.path,
                line=f.lineno,
                col=f.col,
                rule=f.rule,
                message=message,
            )
        )

    return AnalysisReport(
        graph=graph,
        findings=findings,
        waived=waived,
        classifications=classifications,
        impure_via=impure_via,
        experiments=experiments,
        diagnostics=sorted(diagnostics),
    )


def render_json(report: AnalysisReport) -> str:
    """Machine-readable summary (stable key order)."""
    counts = {PURE: 0, IMPURE: 0, UNKNOWN: 0}
    for verdict in report.classifications.values():
        counts[verdict] += 1
    payload = {
        "modules": sorted(report.graph.tables),
        "symbols": {
            f"{m}::{n}": report.classifications[(m, n)]
            for (m, n) in sorted(report.classifications)
        },
        "summary": {
            "modules": len(report.graph.tables),
            "symbols": len(report.graph.symbols),
            "pure": counts[PURE],
            "impure": counts[IMPURE],
            "unknown": counts[UNKNOWN],
            "findings": len(report.findings),
            "waived": report.waived,
        },
        "findings": [
            {
                "rule": f.rule,
                "symbol": f"{f.symbol[0]}::{f.symbol[1]}",
                "path": f.path,
                "line": f.lineno,
                "col": f.col,
                "message": f.message,
            }
            for f in report.findings
        ],
        "experiments": [
            {
                "experiment_id": exp.experiment_id,
                "module": exp.module,
                "tainted": [
                    {
                        "rule": c.rule,
                        "source": f"{c.source[0]}::{c.source[1]}",
                        "chain": list(c.chain),
                    }
                    for c in exp.chains
                ],
            }
            for exp in report.experiments
        ],
        "unresolved": {
            f"{m}::{n}": sorted(refs)
            for (m, n), refs in sorted(report.graph.unresolved.items())
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


_DOT_COLORS = {PURE: "white", IMPURE: "lightsalmon", UNKNOWN: "lightgray"}


def render_dot(report: AnalysisReport) -> str:
    """Graphviz dump of the reference graph, colored by verdict."""
    lines = [
        "digraph repro_analyze {",
        "  rankdir=LR;",
        '  node [shape=box, style=filled, fontname="monospace"];',
    ]
    ids: dict[SymbolKey, str] = {}
    for i, key in enumerate(sorted(report.graph.symbols)):
        ids[key] = f"n{i}"
        sym = report.graph.symbols[key]
        verdict = report.classifications.get(key, UNKNOWN)
        color = _DOT_COLORS[verdict]
        label = sym.display().replace('"', r"\"")
        lines.append(
            f'  {ids[key]} [label="{label}", fillcolor={color}];'
        )
    for src in sorted(report.graph.edges):
        if src not in ids:
            continue
        for dst in sorted(report.graph.edges[src]):
            if dst in ids:
                lines.append(f"  {ids[src]} -> {ids[dst]};")
    lines.append("}")
    return "\n".join(lines) + "\n"
