"""Per-module symbol tables for the interprocedural analysis.

Granularity: one symbol per top-level ``def``/``class``, plus one
pseudo-symbol ``<module>`` holding everything that executes at import
time.  Methods are *not* separate symbols — referencing a class pulls in
the whole class — because method dispatch is rarely resolvable
statically and an over-approximation here must err toward inclusion.

The same tables drive the per-symbol cache fingerprints
(:func:`repro.cache.fingerprint.fingerprint_symbols`), so the digest
helpers live here too:

* :func:`symbol_digest` — SHA-256 of ``ast.dump`` of the full ``def``/
  ``class`` node (comments and whitespace never reach the tree);
* :func:`import_time_digest` — digest of the module with the bodies of
  top-level functions (and of methods inside *undecorated* classes)
  replaced by ``pass``.  Signatures, decorators, default values, and
  annotations stay: they all execute at import.  Decorated classes stay
  whole — a registration decorator may instantiate the class at import,
  so their bodies are import-time behavior.
"""

from __future__ import annotations

import ast
import copy
import hashlib
from dataclasses import dataclass, field

from repro.devtools.analyze.project import ModuleInfo, Project

__all__ = [
    "MODULE_SYMBOL",
    "Binding",
    "Symbol",
    "ModuleSymbols",
    "build_module_symbols",
    "symbol_scan_nodes",
    "symbol_digest",
    "import_time_digest",
    "has_opaque_decorator",
    "resolve_relative_import",
]

#: Name of the pseudo-symbol holding a module's import-time code.
MODULE_SYMBOL = "<module>"


@dataclass(frozen=True)
class Binding:
    """What a module-level name resolves to.

    ``kind`` is ``"module"`` (the name is a first-party module object)
    or ``"symbol"`` (the name is — or is re-exported as — a symbol
    defined in ``module``; follow :meth:`ModuleSymbols` chains to the
    defining module)."""

    kind: str
    module: str
    symbol: str | None = None


@dataclass(frozen=True)
class Symbol:
    """One analysis node: a top-level def/class or the module body."""

    module: str
    name: str  # MODULE_SYMBOL, or the def/class name
    kind: str  # "module" | "function" | "class"
    lineno: int

    @property
    def key(self) -> tuple[str, str]:
        return (self.module, self.name)

    def display(self) -> str:
        """Human form: ``pkg.mod.func`` / plain ``pkg.mod`` for the
        module body."""
        if self.name == MODULE_SYMBOL:
            return self.module
        return f"{self.module}.{self.name}"


@dataclass
class ModuleSymbols:
    """Symbol table plus name bindings for one module."""

    info: ModuleInfo
    symbols: dict[str, Symbol] = field(default_factory=dict)
    nodes: dict[str, ast.stmt] = field(default_factory=dict)
    bindings: dict[str, Binding] = field(default_factory=dict)
    #: Names assigned at module level (constants, caches) — the targets
    #: the global-mutation effect pass checks mutations against.
    module_assigns: set[str] = field(default_factory=set)

    @property
    def module(self) -> str:
        return self.info.name


def resolve_relative_import(
    module: str, importing: str, level: int, is_package: bool
) -> str | None:
    """Absolute module named by ``from <dots><module> import ...``
    inside ``importing`` (mirrors the cache-fingerprint resolution)."""
    from repro.cache.fingerprint import _resolve_relative

    return _resolve_relative(module, importing, level, is_package)


def _is_package(project: Project, module: str) -> bool:
    path = project.resolve_path(module)
    return path is not None and path.name == "__init__.py"


def _bind_import(
    table: ModuleSymbols, project: Project, node: ast.Import
) -> None:
    for alias in node.names:
        if not project.is_first_party(alias.name):
            continue
        if alias.asname:
            table.bindings[alias.asname] = Binding("module", alias.name)
        else:
            # ``import a.b.c`` binds the *top* package; attribute chains
            # descend from there.
            top = alias.name.split(".", 1)[0]
            table.bindings[top] = Binding("module", top)


def _bind_import_from(
    table: ModuleSymbols, project: Project, node: ast.ImportFrom
) -> None:
    importing = table.module
    if node.level:
        base = resolve_relative_import(
            node.module or "",
            importing,
            node.level,
            _is_package(project, importing),
        )
        if base is None:
            return
    else:
        base = node.module or ""
    if not base or not project.is_first_party(base):
        return
    for alias in node.names:
        if alias.name == "*":
            continue  # star imports are handled as whole-module deps
        bound = alias.asname or alias.name
        if project.resolve_path(f"{base}.{alias.name}") is not None:
            table.bindings[bound] = Binding("module", f"{base}.{alias.name}")
        else:
            table.bindings[bound] = Binding("symbol", base, alias.name)


def build_module_symbols(project: Project, info: ModuleInfo) -> ModuleSymbols:
    """Symbol table for one module: top-level defs, import bindings,
    module-level assignment targets."""
    table = ModuleSymbols(info=info)
    table.symbols[MODULE_SYMBOL] = Symbol(
        module=info.name, name=MODULE_SYMBOL, kind="module", lineno=1
    )
    for stmt in info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table.symbols[stmt.name] = Symbol(
                module=info.name,
                name=stmt.name,
                kind="function",
                lineno=stmt.lineno,
            )
            table.nodes[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            table.symbols[stmt.name] = Symbol(
                module=info.name,
                name=stmt.name,
                kind="class",
                lineno=stmt.lineno,
            )
            table.nodes[stmt.name] = stmt
        elif isinstance(stmt, ast.Import):
            _bind_import(table, project, stmt)
        elif isinstance(stmt, ast.ImportFrom):
            _bind_import_from(table, project, stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        table.module_assigns.add(node.id)
    # A def/class name is also a module-level binding (so ``helper()``
    # inside a sibling function resolves to the local symbol).
    for name, sym in table.symbols.items():
        if name != MODULE_SYMBOL:
            table.bindings.setdefault(
                name, Binding("symbol", info.name, name)
            )
    return table


def symbol_scan_nodes(table: ModuleSymbols) -> dict[str, list[ast.AST]]:
    """Partition the module's AST among its symbols.

    A def/class symbol owns its full node.  ``<module>`` owns every
    other top-level statement *plus* the import-time slice of each def:
    decorators, base classes, class keywords, and default values — all
    of which evaluate when the module is imported.
    """
    parts: dict[str, list[ast.AST]] = {MODULE_SYMBOL: []}
    toplevel = parts[MODULE_SYMBOL]
    for stmt in table.info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            parts[stmt.name] = [stmt]
            toplevel.extend(stmt.decorator_list)
            args = stmt.args
            toplevel.extend(d for d in args.defaults if d is not None)
            toplevel.extend(d for d in args.kw_defaults if d is not None)
        elif isinstance(stmt, ast.ClassDef):
            parts[stmt.name] = [stmt]
            toplevel.extend(stmt.decorator_list)
            toplevel.extend(stmt.bases)
            toplevel.extend(kw.value for kw in stmt.keywords)
        else:
            toplevel.append(stmt)
    return parts


# -- digests ---------------------------------------------------------------


def _is_dataclass_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    while isinstance(target, ast.Attribute):
        if target.attr == "dataclass":
            return True
        target = target.value
    return isinstance(target, ast.Name) and target.id == "dataclass"


def has_opaque_decorator(cls: ast.ClassDef) -> bool:
    """Whether any decorator on ``cls`` might run the class body's
    methods at import time (instantiate, call, register-and-invoke).

    ``@dataclass`` (bare, called, or ``dataclasses.dataclass``) is the
    one decorator known *not* to: it only synthesizes methods from the
    already-executed class body.  Everything else is treated as opaque.
    """
    return any(
        not _is_dataclass_decorator(d) for d in cls.decorator_list
    )


def _sha256_of_dump(node: ast.AST) -> str:
    dump = ast.dump(node, include_attributes=False)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()


def symbol_digest(node: ast.stmt) -> str:
    """Digest of one top-level def/class (the full node, decorators and
    docstring included — both are runtime behavior)."""
    return _sha256_of_dump(node)


def _strip_body(node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
    node.body = [ast.Pass()]


def import_time_digest(info: ModuleInfo) -> str:
    """Digest of the module's import-time surface.

    Bodies of top-level functions and of methods inside classes without
    an opaque decorator (see :func:`has_opaque_decorator`; ``@dataclass``
    is transparent) are replaced by ``pass`` — they run only when
    called, and callers depend on them through their own symbol digests.
    Everything else (imports, constants, signatures, decorators,
    defaults, annotations, class-level assignments, opaquely-decorated
    classes in full) executes at import and stays in the digest.
    """
    tree = copy.deepcopy(info.tree)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _strip_body(stmt)
        elif isinstance(stmt, ast.ClassDef) and not has_opaque_decorator(stmt):
            for inner in stmt.body:
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _strip_body(inner)
    return _sha256_of_dump(tree)
