"""Intrinsic nondeterminism-source detection (the taint seeds).

This pass looks at one symbol's AST in isolation and answers: does this
code *itself* consult something that can differ between two runs with
the same ``(experiment_id, quick, seed)``?  Interprocedural spread is
the call graph's job (:mod:`repro.devtools.analyze.report`); this module
only plants the seeds.

Sources, one rule id each:

==================  =====================================================
``nondet-wallclock``  ``time.time``/``perf_counter``/``monotonic`` and
                      friends, ``datetime.now``/``utcnow``/``today``
``nondet-env``        ``os.environ`` reads, ``os.getenv``, ``os.urandom``
``nondet-rng``        module-level ``random.*`` / ``numpy.random.*``
                      APIs (the hidden global, unseedable-per-run RNG);
                      explicit ``random.Random(seed)`` /
                      ``numpy.random.default_rng(seed)`` construction is
                      fine
``nondet-set-order``  iterating a ``set``/``frozenset`` into ordered
                      output (``for``, comprehensions, ``list()``,
                      ``join``) without ``sorted``
``nondet-id``         ``id()`` — CPython address, differs per process
``nondet-fs-order``   ``os.listdir``/``scandir``/``walk``, ``glob``,
                      ``Path.glob``/``rglob``/``iterdir`` without an
                      immediate ``sorted`` wrapper
==================  =====================================================

Alias tracking is textual but honest: ``import numpy as np`` makes
``np.random.shuffle`` canonicalize to ``numpy.random.shuffle``;
``from time import perf_counter as tick`` makes ``tick()`` canonicalize
to ``time.perf_counter``.
"""

# repro-lint: disable-file=nondet-id -- id() keys the in-process AST
# parent maps (one tree, one pass); identities are never compared
# across runs or emitted.

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = [
    "Finding",
    "TAINT_RULES",
    "canonical_name",
    "collect_aliases",
    "scan_taints",
]

#: rule id -> one-line summary (feeds --json and the docs table).
TAINT_RULES = {
    "nondet-wallclock": "reads the wall clock or a process timer",
    "nondet-env": "reads the process environment or OS entropy",
    "nondet-rng": "uses the global (unseeded-per-run) RNG APIs",
    "nondet-set-order": "iterates a set into ordered output without sorted()",
    "nondet-id": "depends on object identity (id())",
    "nondet-fs-order": "enumerates the filesystem without sorted()",
}

_WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_ENV_CALLS = {"os.getenv", "os.putenv", "os.urandom", "uuid.uuid1", "uuid.uuid4"}

#: Seeded-RNG constructors: explicitly passing a seed is the sanctioned
#: pattern, so constructing these is never a finding.
_RNG_FACTORIES = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.BitGenerator",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
}

_FS_CALLS = {
    "os.listdir",
    "os.scandir",
    "os.walk",
    "glob.glob",
    "glob.iglob",
}

#: ``<receiver>.<attr>()`` filesystem enumerators (receiver type unknown
#: statically — assume ``pathlib.Path``-like).
_FS_METHODS = {"glob", "rglob", "iterdir"}

#: Tracked third-party/stdlib roots; anything else never canonicalizes,
#: keeping the alias map small and lookups cheap.
_TRACKED_TOPS = {
    "time",
    "datetime",
    "os",
    "glob",
    "random",
    "numpy",
    "secrets",
    "uuid",
}


@dataclass(frozen=True)
class Finding:
    """One intrinsic source site inside one symbol."""

    rule: str
    lineno: int
    col: int
    message: str


def collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to canonical dotted paths for tracked modules.

    Scans *every* import in the module (function-local imports
    included): the binding scope does not matter for canonicalization,
    only what the name means where it is used.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".", 1)[0]
                if top not in _TRACKED_TOPS:
                    continue
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and not node.level:
            base = node.module or ""
            if base.split(".", 1)[0] not in _TRACKED_TOPS:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{base}.{alias.name}"
    return aliases


def _dotted_chain(node: ast.AST) -> tuple[str, ...] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def canonical_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Canonical dotted path of a Name/Attribute expression, or None."""
    chain = _dotted_chain(node)
    if chain is None:
        return None
    base = aliases.get(chain[0])
    if base is None:
        return None
    return ".".join([base, *chain[1:]])


def _parent_map(roots: list[ast.AST]) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for root in roots:
        for parent in ast.walk(root):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
    return parents


#: Combinators that preserve *set*-determinism: feeding them an
#: unordered enumeration and sorting the result is still a pure
#: function of the enumerated items.
_ORDER_INSENSITIVE = {"chain", "filter", "list", "tuple", "set", "frozenset"}


def _is_sorted_wrapped(node: ast.AST, parents: dict[int, ast.AST]) -> bool:
    """True when ``node`` reaches ``sorted(...)``, possibly through
    order-insensitive combinators (``sorted(chain(a.glob(), b.glob()))``
    is deterministic; ``islice`` or ``enumerate`` in between is not)."""
    while True:
        parent = parents.get(id(node))
        if not (isinstance(parent, ast.Call) and node in parent.args):
            return False
        func = parent.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name == "sorted":
            return True
        if name not in _ORDER_INSENSITIVE:
            return False
        node = parent


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


#: Callables that turn their (set) argument into ordered output.
_ORDERING_CONSUMERS = {"list", "tuple", "enumerate", "iter", "next"}


def _set_order_sink(node: ast.AST, parents: dict[int, ast.AST]) -> bool:
    """Does this set expression feed order-sensitive consumption?"""
    if _is_sorted_wrapped(node, parents):
        return False
    parent = parents.get(id(node))
    if isinstance(parent, ast.For) and parent.iter is node:
        return True
    if isinstance(parent, ast.comprehension) and parent.iter is node:
        return True
    if isinstance(parent, ast.Call) and node in parent.args:
        func = parent.func
        if isinstance(func, ast.Name) and func.id in _ORDERING_CONSUMERS:
            return True
        if isinstance(func, ast.Attribute) and func.attr == "join":
            return True
    return False


def scan_taints(
    nodes: list[ast.AST], aliases: dict[str, str]
) -> list[Finding]:
    """All intrinsic source sites in one symbol's AST slice."""
    findings: list[Finding] = []
    parents = _parent_map(nodes)

    def emit(rule: str, node: ast.AST, what: str) -> None:
        findings.append(
            Finding(
                rule=rule,
                lineno=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=f"{what} — {TAINT_RULES[rule]}",
            )
        )

    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                canon = canonical_name(node.func, aliases)
                if canon is not None:
                    if canon in _WALLCLOCK_CALLS:
                        emit("nondet-wallclock", node, f"call to {canon}()")
                        continue
                    if canon in _ENV_CALLS:
                        emit("nondet-env", node, f"call to {canon}()")
                        continue
                    if canon in _RNG_FACTORIES:
                        continue  # seeded construction is the blessed path
                    if canon.startswith(("random.", "numpy.random.")):
                        emit(
                            "nondet-rng", node, f"call to {canon}()"
                        )
                        continue
                    if canon in _FS_CALLS and not _is_sorted_wrapped(
                        node, parents
                    ):
                        emit("nondet-fs-order", node, f"call to {canon}()")
                        continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "id"
                    and node.args
                ):
                    emit("nondet-id", node, "call to id()")
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _FS_METHODS
                    and canonical_name(node.func.value, aliases) is None
                    and not _is_sorted_wrapped(node, parents)
                ):
                    emit(
                        "nondet-fs-order",
                        node,
                        f"call to .{node.func.attr}()",
                    )
                    continue
            elif isinstance(node, (ast.Attribute, ast.Name)):
                # ``os.environ`` in any form — bare, subscripted,
                # ``.get``/``.setdefault`` — flagged once at the top of
                # the attribute chain.
                canon = canonical_name(node, aliases)
                if (
                    canon is not None
                    and (canon == "os.environ" or canon.startswith("os.environ."))
                    and not isinstance(parents.get(id(node)), ast.Attribute)
                ):
                    emit("nondet-env", node, "read of os.environ")
            if _is_set_expr(node) and _set_order_sink(node, parents):
                emit(
                    "nondet-set-order",
                    node,
                    "set iterated into ordered output",
                )
    return findings
