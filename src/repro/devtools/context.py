"""Per-module context handed to every lint rule.

The context bundles the parsed AST with the path-derived facts rules
dispatch on: whether the module is library code (under ``src/``), a
script (``benchmarks/``, ``examples/``), or a test; whether it *is* the
RNG module that the RNG-discipline rules exempt; and whether it lives in
``analysis/`` where exact float comparison is banned.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath

__all__ = ["ModuleContext", "classify_role"]


def classify_role(path: PurePosixPath) -> str:
    """Classify ``path`` as ``"library"``, ``"script"``, or ``"test"``.

    Anything under a ``tests`` directory (or named ``test_*.py`` /
    ``conftest.py``) is a test; anything under ``src`` is library code;
    the rest (benchmarks, examples, ad-hoc scripts) are scripts.
    """
    name = path.name
    if (
        "tests" in path.parts
        or name.startswith("test_")
        or name == "conftest.py"
    ):
        return "test"
    if "src" in path.parts:
        return "library"
    return "script"


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module."""

    path: str
    tree: ast.Module
    source: str
    lines: list[str] = field(default_factory=list)
    role: str = "script"

    @classmethod
    def build(cls, path: str, source: str, tree: ast.Module) -> "ModuleContext":
        posix = PurePosixPath(path.replace("\\", "/"))
        ctx = cls(
            path=str(posix),
            tree=tree,
            source=source,
            lines=source.splitlines(),
            role=classify_role(posix),
        )
        return ctx

    # -- path-derived facts rules dispatch on --------------------------
    @property
    def posix_path(self) -> PurePosixPath:
        return PurePosixPath(self.path)

    @property
    def is_rng_module(self) -> bool:
        """True for ``repro/util/rng.py`` — the one place allowed to
        touch ``np.random`` constructors directly."""
        return self.posix_path.parts[-2:] == ("util", "rng.py")

    @property
    def in_analysis(self) -> bool:
        """True for modules in the ``analysis`` package, where the
        float-equality ban applies."""
        return "analysis" in self.posix_path.parts

    @property
    def is_dunder_main(self) -> bool:
        return self.posix_path.name == "__main__.py"
