"""Diagnostic records emitted by the ``repro lint`` pass.

A diagnostic pins one rule violation to a source location.  The rendered
form follows the conventional compiler format
``file:line:col: rule: message`` so editors, CI annotations, and humans
can all parse it the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location.

    Ordering is lexicographic on ``(path, line, col, rule)`` so a sorted
    diagnostic list reads like a compiler's output.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def __str__(self) -> str:
        return self.format()
