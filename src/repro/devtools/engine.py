"""The ``repro lint`` engine: walk files, parse, run rules, filter.

The engine is deliberately dependency-free (stdlib ``ast`` only) so the
invariant checks run anywhere the library runs — CI, a contributor
laptop, or a notebook.  Tests are exempt by default: they intentionally
construct generators directly, compare floats exactly, and poke at
internals; pass ``include_tests=True`` to lint them anyway.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.devtools.context import ModuleContext, classify_role
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import LintRule, get_rules
from repro.devtools.suppressions import scan_suppressions
from repro.errors import LintError

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files"]

_EXCLUDED_DIRS = {".git", "__pycache__", ".venv", "venv", "build", "dist", ".eggs"}


def _is_test_path(path: Path) -> bool:
    from pathlib import PurePosixPath

    return classify_role(PurePosixPath(path.as_posix())) == "test"


def iter_python_files(
    paths: Sequence[str | os.PathLike],
    include_tests: bool = False,
) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths`` in sorted order.

    Files named explicitly are always yielded (even tests); directories
    are walked recursively with tests and tool caches skipped.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise LintError(f"no such file or directory: {raw}")
        for candidate in sorted(path.rglob("*.py")):
            if _EXCLUDED_DIRS.intersection(candidate.parts):
                continue
            if not include_tests and _is_test_path(candidate):
                continue
            yield candidate


def lint_source(
    source: str,
    path: str = "<string>",
    rule_ids: Iterable[str] | None = None,
    report_stale: bool = False,
) -> list[Diagnostic]:
    """Lint one module given as text; ``path`` steers path-scoped rules.

    ``report_stale`` adds a ``stale-suppression`` diagnostic for every
    pragma naming a rule that ran here yet matched nothing (see
    :meth:`~repro.devtools.suppressions.SuppressionIndex.iter_stale`).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule="parse-error",
                message=f"could not parse module: {exc.msg}",
            )
        ]
    ctx = ModuleContext.build(path, source, tree)
    suppressions = scan_suppressions(source, tree)
    diagnostics: list[Diagnostic] = []
    rules = get_rules(rule_ids)
    for rule in rules:
        for diag in rule.check(ctx):
            if not suppressions.is_suppressed(diag):
                diagnostics.append(diag)
    if report_stale:
        known = {rule.rule_id for rule in rules}
        for lineno, rule_id in suppressions.iter_stale(known):
            what = (
                "blanket 'all' suppression"
                if rule_id == "all"
                else f"suppression for {rule_id!r}"
            )
            diagnostics.append(
                Diagnostic(
                    path=path,
                    line=lineno,
                    col=1,
                    rule="stale-suppression",
                    message=f"{what} never matched a diagnostic — "
                    "remove the pragma (or the rule name) so the audit "
                    "trail only lists live waivers",
                )
            )
    return sorted(diagnostics)


def lint_file(
    path: str | os.PathLike,
    rule_ids: Iterable[str] | None = None,
    report_stale: bool = False,
) -> list[Diagnostic]:
    """Lint one file from disk."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {p}: {exc}") from exc
    display = p.as_posix()
    cwd = Path.cwd()
    if p.is_absolute():
        try:
            display = p.relative_to(cwd).as_posix()
        except ValueError:
            pass
    return lint_source(
        source, path=display, rule_ids=rule_ids, report_stale=report_stale
    )


def lint_paths(
    paths: Sequence[str | os.PathLike],
    include_tests: bool = False,
    rule_ids: Iterable[str] | None = None,
    report_stale: bool = False,
) -> list[Diagnostic]:
    """Lint every python file under ``paths`` and return sorted diagnostics."""
    get_rules(rule_ids)  # validate rule ids up front
    diagnostics: list[Diagnostic] = []
    for path in iter_python_files(paths, include_tests=include_tests):
        diagnostics.extend(
            lint_file(path, rule_ids=rule_ids, report_stale=report_stale)
        )
    return sorted(diagnostics)
