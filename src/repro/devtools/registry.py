"""Pluggable rule registry for ``repro lint``.

A rule is a class with a unique kebab-case ``rule_id``, a one-line
``summary``, and a ``check(ctx)`` generator yielding
:class:`~repro.devtools.diagnostics.Diagnostic` objects.  Registering is
one decorator; the engine runs every registered rule (or a caller-chosen
subset) over each module.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Type

from repro.devtools.context import ModuleContext
from repro.devtools.diagnostics import Diagnostic
from repro.errors import LintError

__all__ = ["LintRule", "register_rule", "get_rules", "all_rules"]


class LintRule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` and ``summary`` and implement
    :meth:`check`.  ``diag`` is a convenience for emitting a diagnostic
    anchored at an AST node.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, ctx: ModuleContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )


_REGISTRY: dict[str, LintRule] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    if not cls.rule_id:
        raise LintError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise LintError(f"duplicate rule id {cls.rule_id!r}")
    # Import-time registration: populated once while modules load, then
    # read-only — duplicate ids raise above, so the result is
    # import-order-independent.
    _REGISTRY[cls.rule_id] = cls()  # repro-lint: disable=effect-global-mutation
    return cls


def all_rules() -> list[LintRule]:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rules(rule_ids: Iterable[str] | None = None) -> list[LintRule]:
    """Resolve ``rule_ids`` (or all rules when ``None``)."""
    if rule_ids is None:
        return all_rules()
    rules = []
    for rid in rule_ids:
        try:
            rules.append(_REGISTRY[rid])
        except KeyError:
            known = ", ".join(sorted(_REGISTRY))
            raise LintError(f"unknown lint rule {rid!r}; known rules: {known}") from None
    return rules
