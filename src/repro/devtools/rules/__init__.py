"""Built-in ``repro lint`` rules.

Importing this package registers every rule with
:mod:`repro.devtools.registry`.  Third-party or experiment-local rules
can register the same way: subclass
:class:`~repro.devtools.registry.LintRule` and decorate with
:func:`~repro.devtools.registry.register_rule` before calling the
engine.
"""

from repro.devtools.rules.dataclass_rules import FrozenResultRule, MutableDefaultRule
from repro.devtools.rules.export_rules import ModuleExportsRule
from repro.devtools.rules.float_rules import FloatEqualityRule
from repro.devtools.rules.nocatchup_rules import NocatchupMonotonicityRule
from repro.devtools.rules.profile_rules import ProfileDisciplineRule
from repro.devtools.rules.rng_rules import RngCoerceRule, RngFactoryRule
from repro.devtools.rules.time_rules import WallclockDisciplineRule
from repro.devtools.rules.units_rules import UnitsMixingRule

__all__ = [
    "FrozenResultRule",
    "MutableDefaultRule",
    "ModuleExportsRule",
    "FloatEqualityRule",
    "NocatchupMonotonicityRule",
    "ProfileDisciplineRule",
    "RngCoerceRule",
    "RngFactoryRule",
    "UnitsMixingRule",
    "WallclockDisciplineRule",
]
