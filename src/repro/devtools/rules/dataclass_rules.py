"""Value-type and default-argument rules.

``*Result``/``*Record`` dataclasses are the library's measurement
artifacts: a :class:`RunRecord` is evidence for a theorem, and evidence
must not drift after it is produced.  Freezing them makes every
downstream consumer (tables, metrics, cross-checks) safe by
construction.  Mutable default arguments are the classic Python
footgun version of the same disease: state shared across calls that
should have been per-call.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.context import ModuleContext
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import LintRule, register_rule

__all__ = ["FrozenResultRule", "MutableDefaultRule"]

_VALUE_TYPE_SUFFIXES = ("Result", "Record")


def _dataclass_decorator(cls: ast.ClassDef) -> Optional[ast.expr]:
    """The ``@dataclass`` / ``@dataclass(...)`` decorator node, if any."""
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return deco
    return None


@register_rule
class FrozenResultRule(LintRule):
    """``*Result``/``*Record`` dataclasses must be ``frozen=True``."""

    rule_id = "frozen-dataclass"
    summary = "*Result/*Record dataclasses must declare frozen=True"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith(_VALUE_TYPE_SUFFIXES):
                continue
            deco = _dataclass_decorator(node)
            if deco is None:
                continue  # not a dataclass: a behaviour-carrying class
            frozen = False
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        frozen = True
            if not frozen:
                yield self.diag(
                    ctx,
                    node,
                    f"dataclass {node.name!r} is a measurement artifact "
                    "(*Result/*Record) and must be @dataclass(frozen=True); "
                    "accumulate in locals and construct it once, complete",
                )


_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    ):
        return True
    return False


@register_rule
class MutableDefaultRule(LintRule):
    """Ban mutable default arguments."""

    rule_id = "mutable-default"
    summary = "no list/dict/set literals (or constructors) as parameter defaults"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [*fn.args.defaults, *fn.args.kw_defaults]
            for default in defaults:
                if default is not None and _is_mutable_default(default):
                    label = (
                        "<lambda>" if isinstance(fn, ast.Lambda) else fn.name
                    )
                    yield self.diag(
                        ctx,
                        default,
                        f"mutable default argument in {label!r} is shared "
                        "across calls; default to None and create it inside",
                    )
