"""``__all__`` discipline for library modules.

The integration suite (``tests/integration/test_exports.py``) and the
API docs treat ``__all__`` as the source of truth for the public
surface.  That only works if every library module declares one, every
listed name exists, and every public class/function is listed — an
unlisted public helper is an API leak waiting to be depended on.
Modules with a PEP 562 ``__getattr__`` are exempt from the existence
check (their exports are computed), and scripts/benchmarks/examples
only get checked if they opt in by defining ``__all__``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.context import ModuleContext
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import LintRule, register_rule

__all__ = ["ModuleExportsRule"]


def _find_all_assignment(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return node
    return None


def _literal_entries(node: ast.Assign) -> Optional[list[tuple[str, ast.AST]]]:
    """``__all__`` entries as (name, node) pairs; None if not a literal."""
    value = node.value
    if not isinstance(value, (ast.List, ast.Tuple)):
        return None
    entries = []
    for elt in value.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        entries.append((elt.value, elt))
    return entries


def _top_level_names(tree: ast.Module) -> set[str]:
    """Every name bound at module top level (defs, classes, assigns, imports)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # names bound under TYPE_CHECKING / try-import guards
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        names.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    names.add(sub.name)
    return names


@register_rule
class ModuleExportsRule(LintRule):
    """Library modules declare a complete, dangling-free ``__all__``."""

    rule_id = "module-exports"
    summary = "library modules need __all__; entries must exist and cover public defs"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if ctx.role == "test" or ctx.is_dunder_main:
            return
        assignment = _find_all_assignment(ctx.tree)
        if assignment is None:
            if ctx.role == "library":
                yield Diagnostic(
                    path=ctx.path,
                    line=1,
                    col=1,
                    rule=self.rule_id,
                    message="library module defines no __all__; declare its "
                    "public surface explicitly",
                )
            return
        entries = _literal_entries(assignment)
        if entries is None:
            return  # computed __all__: out of static reach
        defined = _top_level_names(ctx.tree)
        has_getattr = "__getattr__" in defined
        seen: set[str] = set()
        for name, node in entries:
            if name in seen:
                yield self.diag(ctx, node, f"duplicate __all__ entry {name!r}")
            seen.add(name)
            if name == "__version__":
                continue
            if name not in defined and not has_getattr:
                yield self.diag(
                    ctx,
                    node,
                    f"__all__ lists {name!r} but the module never binds it",
                )
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            if node.name.startswith("_"):
                continue
            if node.name not in seen:
                yield self.diag(
                    ctx,
                    node,
                    f"public {'class' if isinstance(node, ast.ClassDef) else 'function'} "
                    f"{node.name!r} is missing from __all__ (or rename it _{node.name})",
                )
