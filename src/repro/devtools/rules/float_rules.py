"""Float-equality ban for the ``analysis`` package.

The analysis layer checks the paper's *equalities*: Eq 6–9, the Lemma-3
recurrence invariants, potential identities.  A reproduction that
asserts ``ratio == 1.5`` passes or fails on rounding noise, not on the
theorem — every such check must state its tolerance (``math.isclose``,
``abs(x - y) <= eps``, ``pytest.approx`` in tests).  Exact comparison
against float literals (or ``float(...)`` coercions) is therefore banned
in ``analysis/``; integer and symbolic comparisons are untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.context import ModuleContext
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import LintRule, register_rule

__all__ = ["FloatEqualityRule"]


def _is_floatish(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    return False


@register_rule
class FloatEqualityRule(LintRule):
    """Ban ``==``/``!=`` against float values inside ``analysis/``."""

    rule_id = "float-equality"
    summary = "analysis/ must compare floats with explicit tolerances, not ==/!="

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if not ctx.in_analysis:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left) or _is_floatish(right):
                    yield self.diag(
                        ctx,
                        node,
                        "exact float equality in analysis/ asserts on rounding "
                        "noise; use math.isclose or an explicit tolerance",
                    )
                    break
