"""No-Catch-up monotonicity rule.

Lemma 2 (``analysis/nocatchup.py``) is a statement about a *monotone*
axis: "starting earlier never finishes later" is checked by comparing
finish positions of adjacent start positions, and that comparison is
only evidence about the lemma when the starts are sorted.  The runtime
side of the contract is :func:`repro.analysis.nocatchup.
require_monotone_starts`; this rule is the static side — it flags call
sites that hand the No-Catch-up entry points a start sequence that is
*syntactically guaranteed* to be out of order:

- a ``reversed(...)`` wrapper (the classic way to iterate starts
  backwards for a "later start first" sweep — the finish comparison
  then reads the lemma inverted);
- a list/tuple literal of integer constants that is not nondecreasing.

Anything not provably non-monotone (names, computed sequences,
``sorted(...)`` results) is left to the runtime contract; the rule
over-flags nothing it cannot read off the AST.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.context import ModuleContext
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import LintRule, register_rule

__all__ = ["NocatchupMonotonicityRule"]

# entry point name -> (argument keyword, positional index of the start
# sequence).  Both No-Catch-up entry points take the starts in slot 3.
_ENTRY_POINTS = {
    "finish_positions": ("start_positions", 3),
    "check_no_catchup": ("starts", 3),
    "require_monotone_starts": ("starts", 0),
}


def _callee_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _starts_argument(
    node: ast.Call, keyword: str, index: int
) -> Optional[ast.AST]:
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(node.args) > index:
        arg = node.args[index]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    return None


def _literal_inversion(node: ast.AST) -> Optional[tuple[int, int]]:
    """The first descending adjacent pair in an all-int-constant
    list/tuple literal, or ``None`` when the literal is nondecreasing
    or not statically readable."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    values: list[int] = []
    for elt in node.elts:
        if not (
            isinstance(elt, ast.Constant)
            and isinstance(elt.value, int)
            and not isinstance(elt.value, bool)
        ):
            return None
        values.append(elt.value)
    for i in range(len(values) - 1):
        if values[i] > values[i + 1]:
            return values[i], values[i + 1]
    return None


@register_rule
class NocatchupMonotonicityRule(LintRule):
    """No-Catch-up entry points need monotone nondecreasing starts."""

    rule_id = "nocatchup-monotonicity"
    summary = (
        "pass sorted (monotone) start positions to No-Catch-up entry "
        "points; finish comparisons across unsorted starts invert Lemma 2"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _callee_name(node.func)
            if name not in _ENTRY_POINTS:
                continue
            keyword, index = _ENTRY_POINTS[name]
            starts = _starts_argument(node, keyword, index)
            if starts is None:
                continue
            if (
                isinstance(starts, ast.Call)
                and _callee_name(starts.func) == "reversed"
            ):
                yield self.diag(
                    ctx,
                    starts,
                    f"{name}() receives reversed(...) start positions; "
                    "Lemma 2 comparisons require a monotone nondecreasing "
                    "start axis — drop the reversed() (or sort and keep "
                    "finishes paired with the sorted starts)",
                )
                continue
            inversion = _literal_inversion(starts)
            if inversion is not None:
                lo, hi = inversion
                yield self.diag(
                    ctx,
                    starts,
                    f"{name}() receives out-of-order start positions "
                    f"({lo} precedes {hi}); Lemma 2 comparisons require "
                    "a monotone nondecreasing start axis — sort the "
                    "literal (see require_monotone_starts)",
                )
