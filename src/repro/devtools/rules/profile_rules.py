"""Profile-discipline rule.

Simulator entry points (``run_boxes``, ``run_repeated``,
``run_adaptive``, ``SymbolicSimulator.run`` / ``run_to_completion``)
accept ``SquareProfile | Iterable[int]`` for historical reasons, but the
*profile* form is the contract the analysis layer relies on: a
``SquareProfile`` is immutable, hashable (memo-shareable), and carries
the census/potential accessors the artifact tables are built from.
Feeding a raw inline box container — a list/tuple/set literal, a
comprehension, or an ``iter(...)``/``range(...)``-style builtin — at the
call site bypasses the profile validation (positive sizes, int64
canonicalization) and silently pins the run to a one-shot consumable
source.

The rule flags only *syntactically obvious* raw sources at the call
site.  Deliberately lazy streams stay legal: generator *functions* like
``worst_case_boxes(...)`` (profiles too large to materialize) and
``itertools.repeat(...)`` are indistinguishable from profile builders at
the AST level and are exactly the cases the escape hatch exists for.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.context import ModuleContext
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import LintRule, register_rule

__all__ = ["ProfileDisciplineRule"]

# entry point name -> index of the boxes argument in the positional list
_FUNCTION_ENTRY_POINTS = {
    "run_boxes": 2,
    "run_repeated": 2,
    "run_adaptive": 2,
}
# method names checked on simulator-looking receivers (``sim.run(...)``);
# ``run_to_completion`` is distinctive enough to check on any receiver.
_METHOD_ENTRY_POINTS = {
    "run": 0,
    "run_to_completion": 0,
}

# builtins that produce one-shot/unvalidated box sources inline
_RAW_SOURCE_CALLS = frozenset(
    {"iter", "range", "map", "filter", "zip", "reversed", "sorted", "list", "tuple"}
)


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _looks_like_simulator(receiver: ast.AST) -> bool:
    name = _terminal_name(receiver)
    return name is not None and "sim" in name.lower()


def _raw_source_kind(node: ast.AST) -> Optional[str]:
    """A human-readable label when ``node`` is an inline raw box source."""
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return f"a {type(node).__name__.lower()} literal"
    if isinstance(node, (ast.ListComp, ast.SetComp)):
        return "a comprehension"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(node, ast.Call):
        name = _terminal_name(node.func)
        if name in _RAW_SOURCE_CALLS:
            return f"a {name}(...) call"
    return None


def _boxes_argument(node: ast.Call, index: int) -> Optional[ast.AST]:
    for kw in node.keywords:
        if kw.arg == "boxes":
            return kw.value
    if len(node.args) > index:
        arg = node.args[index]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    return None


@register_rule
class ProfileDisciplineRule(LintRule):
    """Simulator entry points take a SquareProfile, not an inline raw
    box container."""

    rule_id = "profile-discipline"
    summary = (
        "pass SquareProfile to simulator entry points, not inline "
        "list/comprehension/iter() box sources"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            entry: Optional[str] = None
            index = 0
            name = _terminal_name(func)
            if name in _FUNCTION_ENTRY_POINTS and (
                isinstance(func, ast.Name)
                or (isinstance(func, ast.Attribute) and name is not None)
            ):
                entry, index = name, _FUNCTION_ENTRY_POINTS[name]
            elif isinstance(func, ast.Attribute) and func.attr in _METHOD_ENTRY_POINTS:
                if func.attr == "run_to_completion" or _looks_like_simulator(
                    func.value
                ):
                    entry, index = func.attr, _METHOD_ENTRY_POINTS[func.attr]
            if entry is None:
                continue
            boxes = _boxes_argument(node, index)
            if boxes is None:
                continue
            kind = _raw_source_kind(boxes)
            if kind is not None:
                yield self.diag(
                    ctx,
                    boxes,
                    f"{entry}() receives {kind} as its box source; wrap "
                    "finite box sequences in SquareProfile(...) so the "
                    "simulator sees a validated, reusable profile",
                )
