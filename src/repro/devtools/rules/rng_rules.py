"""RNG-discipline rules.

Every Monte-Carlo estimate behind Theorems 1–3 must be bit-for-bit
reproducible from one integer seed.  That holds only if *all* randomness
flows through :mod:`repro.util.rng`: ``as_generator`` coerces seeds,
``spawn``/``fixed_seeds`` derive independent sub-streams.  Ad-hoc
``np.random.default_rng(...)`` calls (or stdlib ``random``) create
untracked entropy streams that silently break replay, so they are banned
everywhere except ``util/rng.py`` itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.context import ModuleContext
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import LintRule, register_rule

__all__ = ["RngFactoryRule", "RngCoerceRule", "RngDisciplineRule"]

# numpy.random attributes that are types/utilities, not entropy sources;
# referencing them (annotations, isinstance) is fine anywhere.
_ALLOWED_NP_RANDOM_ATTRS = {"Generator", "BitGenerator", "SeedSequence"}

_ROUTE_HINT = "route randomness through repro.util.rng (as_generator/spawn/fixed_seeds)"


def _dotted_chain(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` -> ("a", "b", "c"); None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def _collect_numpy_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names bound to the ``numpy`` module and to ``numpy.random``."""
    numpy_aliases: set[str] = set()
    random_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name == "numpy.random" and alias.asname:
                    random_aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
    return numpy_aliases, random_aliases


@register_rule
class RngFactoryRule(LintRule):
    """Ban direct RNG construction outside ``repro/util/rng.py``."""

    rule_id = "rng-factory"
    summary = (
        "no direct np.random.* entropy sources or stdlib random outside util/rng.py"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if ctx.is_rng_module:
            return
        numpy_aliases, random_aliases = _collect_numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.diag(
                            ctx,
                            node,
                            f"stdlib 'random' is banned for reproducibility; {_ROUTE_HINT}",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.diag(
                        ctx,
                        node,
                        f"stdlib 'random' is banned for reproducibility; {_ROUTE_HINT}",
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _ALLOWED_NP_RANDOM_ATTRS:
                            yield self.diag(
                                ctx,
                                node,
                                f"direct import of numpy.random.{alias.name}; {_ROUTE_HINT}",
                            )
            elif isinstance(node, ast.Call):
                chain = _dotted_chain(node.func)
                if chain is None:
                    continue
                attr = None
                if (
                    len(chain) == 3
                    and chain[0] in numpy_aliases
                    and chain[1] == "random"
                ):
                    attr = chain[2]
                elif len(chain) == 2 and chain[0] in random_aliases:
                    attr = chain[1]
                if attr is not None and attr not in _ALLOWED_NP_RANDOM_ATTRS:
                    yield self.diag(
                        ctx,
                        node,
                        f"direct call to numpy.random.{attr}; {_ROUTE_HINT}",
                    )


def _annotation_is_generator(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return "Generator" in text


def _rng_like_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Loosely-typed rng/seed parameters of ``fn`` that still need coercion."""
    params = set()
    args = fn.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *( [args.vararg] if args.vararg else [] ),
        *( [args.kwarg] if args.kwarg else [] ),
    ]:
        if arg.arg in ("rng", "seed") and not _annotation_is_generator(arg.annotation):
            params.add(arg.arg)
    return params


@register_rule
class RngCoerceRule(LintRule):
    """Randomized functions must coerce their ``rng``/``seed`` parameter
    through ``as_generator`` before drawing from it."""

    rule_id = "rng-coerce"
    summary = "coerce rng/seed parameters via as_generator before drawing"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if ctx.is_rng_module:
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = _rng_like_params(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                # as_generator() with no seed draws fresh OS entropy:
                # irreproducible by construction.
                chain = _dotted_chain(node.func)
                if (
                    chain is not None
                    and chain[-1] == "as_generator"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.diag(
                        ctx,
                        node,
                        "as_generator() with no argument draws fresh OS entropy; "
                        "thread an explicit seed or rng parameter through",
                    )
                    continue
                if not params:
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in params
                ):
                    yield self.diag(
                        ctx,
                        node,
                        f"drawing from raw parameter {func.value.id!r}; coerce it "
                        f"first (gen = as_generator({func.value.id})) so int seeds, "
                        "SeedSequences, and Generators are all accepted",
                    )


# Generator methods that consume stream *position*: each call's value
# depends on every draw before it, which is exactly what addressed
# streams exist to avoid.  Inspection-only attributes are not listed.
_POSITIONAL_DRAWS = {
    "random",
    "integers",
    "uniform",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "standard_normal",
    "exponential",
    "bytes",
}

_ADDRESSED_HINT = (
    "draw by logical index instead (ReplayableStream.uniforms_at/"
    "integers_at/generator_at, or BoxDistribution.sample_at) so chunked "
    "and scalar consumers see identical values; a deliberate legacy "
    "branch can carry '# repro-lint: disable=rng-discipline'"
)


def _annotation_mentions_stream(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return "ReplayableStream" in text


def _stream_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound to a ReplayableStream inside ``fn``: parameters named
    or annotated as streams, plus locals assigned from a stream
    constructor or substream derivation."""
    names: set[str] = set()
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        ann = arg.annotation
        if arg.arg == "stream" or (
            ann is not None
            and _annotation_mentions_stream(ann)
            and "Generator" not in (ast.unparse(ann) if ann else "")
        ):
            names.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            chain = _dotted_chain(node.value.func)
            if chain is None:
                continue
            if chain[-1] in ("ReplayableStream", "substream", "for_trial"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _stream_in_scope(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when ``fn`` handles a ReplayableStream at all — including
    union-annotated parameters that might be one."""
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "stream" or _annotation_mentions_stream(arg.annotation):
            return True
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            chain = _dotted_chain(node.value.func)
            if chain is not None and chain[-1] in (
                "ReplayableStream",
                "substream",
                "for_trial",
            ):
                return True
    return False


@register_rule
class RngDisciplineRule(LintRule):
    """In the replay-critical layers, a function that has an addressed
    stream in scope must not also draw *positionally* from a Generator:
    mixing the two desynchronizes the chunked and scalar paths the
    stream was introduced to keep bit-identical."""

    rule_id = "rng-discipline"
    summary = (
        "no positional Generator draws where a ReplayableStream is in scope "
        "(repro.simulation / repro.profiles)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        parts = set(ctx.posix_path.parts)
        if "repro" not in parts or not ({"simulation", "profiles"} & parts):
            return
        seen: set[tuple[int, int]] = set()
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _stream_in_scope(fn):
                continue
            streams = _stream_names(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    not isinstance(func, ast.Attribute)
                    or func.attr not in _POSITIONAL_DRAWS
                    or not isinstance(func.value, ast.Name)
                    or func.value.id in streams
                ):
                    continue
                key = (node.lineno, node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield self.diag(
                    ctx,
                    node,
                    f"positional draw {func.value.id}.{func.attr}(...) in a "
                    f"function with a ReplayableStream in scope; {_ADDRESSED_HINT}",
                )
