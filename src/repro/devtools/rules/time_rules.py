"""Wall-clock discipline rule.

Every timing in the runtime layer (per-experiment ``wall_time_s``, the
run manifest's totals) must come from ``time.perf_counter()``:
``time.time()`` is civil wall-clock time, subject to NTP slews and
backwards jumps, so durations measured with it are not trustworthy
evidence.  The rule bans referencing ``time.time`` (through any import
alias) and importing it via ``from time import time`` in library and
script code; monotonic clocks (``perf_counter``, ``monotonic``,
``process_time``) and civil-time *formatting* (``datetime``) stay legal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.context import ModuleContext
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import LintRule, register_rule

__all__ = ["WallclockDisciplineRule"]

_HINT = (
    "time.time() is civil wall-clock (NTP can slew it backwards); "
    "measure durations with time.perf_counter()"
)


def _time_module_aliases(tree: ast.Module) -> set[str]:
    """Names bound to the ``time`` module (``import time [as t]``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


@register_rule
class WallclockDisciplineRule(LintRule):
    """Ban ``time.time()`` in measurement paths; use ``perf_counter``."""

    rule_id = "wallclock-discipline"
    summary = "no time.time() in measurement paths; use time.perf_counter()"

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        aliases = _time_module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        yield self.diag(
                            ctx,
                            node,
                            f"'from time import time' imports the civil "
                            f"wall clock; {_HINT}",
                        )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "time"
                and isinstance(node.value, ast.Name)
                and node.value.id in aliases
            ):
                yield self.diag(ctx, node, _HINT)
