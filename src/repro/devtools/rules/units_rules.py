"""Units-discipline rule.

The paper's model counts cache capacity in *blocks* (``m(t)`` is the
number of size-``B`` blocks after the ``t``-th I/O, Section 2).  The
simulators, profiles, and the DAM baseline all follow that convention:
capacities flow through ``*_blocks`` variables, ``MemoryProfile``, or
``SquareProfile``.  Mixing a byte-denominated quantity (``*_bytes``,
``*_B``) into block arithmetic without an explicit conversion is exactly
the class of bug that corrupts every downstream I/O count while keeping
the code runnable — so the linter refuses the arithmetic outright.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.context import ModuleContext
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.registry import LintRule, register_rule

__all__ = ["UnitsMixingRule"]

_BYTE_SUFFIXES = ("_bytes", "_byte", "_nbytes", "_B")
_BLOCK_SUFFIXES = ("_blocks", "_block")

# +/- and ordering/equality demand like units; * / // are how conversions
# are written (bytes // block_size_bytes) and stay legal.
_CHECKED_BINOPS = (ast.Add, ast.Sub)
_CHECKED_CMPOPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _unit_of(node: ast.AST) -> Optional[str]:
    name = _terminal_name(node)
    if name is None:
        return None
    if name.endswith(_BYTE_SUFFIXES):
        return "bytes"
    if name.endswith(_BLOCK_SUFFIXES):
        return "blocks"
    return None


@register_rule
class UnitsMixingRule(LintRule):
    """Flag arithmetic/comparison mixing byte- and block-denominated names."""

    rule_id = "units-mixing"
    summary = "no +,-,comparison between *_bytes/*_B and *_blocks quantities"

    def _report(self, ctx: ModuleContext, node: ast.AST,
                left: ast.AST, right: ast.AST) -> Diagnostic:
        lname = _terminal_name(left)
        rname = _terminal_name(right)
        return self.diag(
            ctx,
            node,
            f"{lname!r} and {rname!r} carry different units (bytes vs blocks); "
            "convert explicitly (e.g. n_bytes // block_size_bytes) before combining",
        )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _CHECKED_BINOPS):
                lu, ru = _unit_of(node.left), _unit_of(node.right)
                if lu and ru and lu != ru:
                    yield self._report(ctx, node, node.left, node.right)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, _CHECKED_CMPOPS):
                        continue
                    lu, ru = _unit_of(left), _unit_of(right)
                    if lu and ru and lu != ru:
                        yield self._report(ctx, node, left, right)
