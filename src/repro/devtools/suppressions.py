"""Suppression comments for ``repro lint``.

Two forms are recognized:

* line-level — ``# repro-lint: disable=rule-a,rule-b`` silences the
  named rules on the line carrying the comment (trailing form) or on the
  line immediately below (standalone-comment form);
* file-level — ``# repro-lint: disable-file=rule-a`` anywhere in the
  file silences the named rules for the whole module.

The keyword ``all`` silences every rule at that scope.  Suppressions are
deliberately loud in review diffs: grepping for ``repro-lint:`` is the
audit trail for every waived invariant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.devtools.diagnostics import Diagnostic

__all__ = ["SuppressionIndex", "scan_suppressions"]

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable(?P<filewide>-file)?=(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass
class SuppressionIndex:
    """Which rules are silenced where, for one module."""

    file_rules: set[str] = field(default_factory=set)
    line_rules: dict[int, set[str]] = field(default_factory=dict)

    def is_suppressed(self, diag: Diagnostic) -> bool:
        if "all" in self.file_rules or diag.rule in self.file_rules:
            return True
        rules = self.line_rules.get(diag.line, ())
        return "all" in rules or diag.rule in rules


def scan_suppressions(source: str) -> SuppressionIndex:
    """Build the suppression index for ``source``."""
    index = SuppressionIndex()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        if match.group("filewide"):
            index.file_rules |= rules
            continue
        # A standalone comment guards the next line; a trailing comment
        # guards its own line.
        target = lineno + 1 if line.lstrip().startswith("#") else lineno
        index.line_rules.setdefault(target, set()).update(rules)
    return index
