"""Suppression comments for ``repro lint`` and ``repro analyze``.

Two forms are recognized:

* line-level — ``# repro-lint: disable=rule-a,rule-b`` silences the
  named rules on the line carrying the comment (trailing form) or on the
  line immediately below (standalone-comment form);
* file-level — ``# repro-lint: disable-file=rule-a`` anywhere in the
  file silences the named rules for the whole module.

The keyword ``all`` silences every rule at that scope.  Suppressions are
deliberately loud in review diffs: grepping for ``repro-lint:`` is the
audit trail for every waived invariant.

Two refinements on top of the plain line map:

* **Decorated definitions.**  Rules anchor their diagnostics at the
  ``def``/``class`` line, but a suppression naturally reads best above
  the whole definition — above its decorators.  When the scanner is
  given the module's AST, any pragma landing on a decorator line (or on
  the line a standalone comment above the first decorator guards) also
  covers the definition line itself.
* **Stale suppressions.**  Every pragma records whether it ever matched
  a diagnostic; :meth:`SuppressionIndex.iter_stale` reports the ones
  that never did, so waivers outlive the code they excused by at most
  one ``repro lint --stale`` run.  Rule ids unknown to the caller are
  skipped — a ``nondet-*`` waiver consumed by ``repro analyze`` is not
  stale just because plain ``repro lint`` never fires that rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Collection, Iterator

from repro.devtools.diagnostics import Diagnostic

__all__ = ["Suppression", "SuppressionIndex", "scan_suppressions"]

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable(?P<filewide>-file)?=(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass
class Suppression:
    """One parsed pragma: where it is, what it names, whether it fired."""

    lineno: int  # line carrying the pragma comment
    filewide: bool
    rules: tuple[str, ...]
    used: set[str] = field(default_factory=set)  # rules that matched


@dataclass
class SuppressionIndex:
    """Which rules are silenced where, for one module."""

    file_rules: set[str] = field(default_factory=set)
    line_rules: dict[int, set[str]] = field(default_factory=dict)
    suppressions: list[Suppression] = field(default_factory=list)
    #: diagnostic line -> pragmas guarding it (for usage attribution)
    _line_sources: dict[int, list[Suppression]] = field(default_factory=dict)

    def _mark(self, suppression: Suppression, rule: str) -> None:
        suppression.used.add("all" if "all" in suppression.rules else rule)

    def is_suppressed(self, diag: Diagnostic) -> bool:
        """Whether ``diag`` is silenced; matching pragmas are marked used."""
        hit = False
        for sup in self.suppressions:
            if not sup.filewide:
                continue
            if "all" in sup.rules or diag.rule in sup.rules:
                self._mark(sup, diag.rule)
                hit = True
        for sup in self._line_sources.get(diag.line, ()):
            if "all" in sup.rules or diag.rule in sup.rules:
                self._mark(sup, diag.rule)
                hit = True
        return hit

    def iter_stale(
        self, known_rules: Collection[str] | None = None
    ) -> Iterator[tuple[int, str]]:
        """``(pragma line, rule)`` pairs that never matched a diagnostic.

        ``known_rules`` limits the report to rule ids the caller actually
        ran; pragmas naming other checkers' rules are not theirs to
        judge.  ``all`` pragmas are stale only when nothing at all
        matched them.
        """
        for sup in self.suppressions:
            for rule in sup.rules:
                if rule in sup.used:
                    continue
                if rule == "all":
                    if not sup.used:
                        yield sup.lineno, rule
                    continue
                if known_rules is not None and rule not in known_rules:
                    continue
                yield sup.lineno, rule


def _decorated_spans(tree: ast.AST) -> dict[int, int]:
    """decorator/def line -> definition line, for every decorated def.

    Maps each line in ``[first decorator, def line)`` to the line the
    rules anchor diagnostics at, so pragmas placed on (or guarding) the
    decorators cover the definition itself.
    """
    spans: dict[int, int] = {}
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if not node.decorator_list:
            continue
        first = min(dec.lineno for dec in node.decorator_list)
        for line in range(first, node.lineno):
            spans[line] = node.lineno
    return spans


def scan_suppressions(
    source: str, tree: ast.AST | None = None
) -> SuppressionIndex:
    """Build the suppression index for ``source``.

    With ``tree`` (the module's parsed AST), pragmas on decorator lines
    extend to the decorated ``def``/``class`` line — without it the
    index is purely line-based, exactly as written.
    """
    index = SuppressionIndex()
    spans = _decorated_spans(tree) if tree is not None else {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        rules = tuple(
            dict.fromkeys(
                r.strip()
                for r in match.group("rules").split(",")
                if r.strip()
            )
        )
        suppression = Suppression(
            lineno=lineno, filewide=bool(match.group("filewide")), rules=rules
        )
        index.suppressions.append(suppression)
        if suppression.filewide:
            index.file_rules |= set(rules)
            continue
        # A standalone comment guards the next line; a trailing comment
        # guards its own line.
        target = lineno + 1 if line.lstrip().startswith("#") else lineno
        targets = {target}
        if target in spans:
            targets.add(spans[target])  # spread onto the decorated def
        for tgt in targets:
            index.line_rules.setdefault(tgt, set()).update(rules)
            index._line_sources.setdefault(tgt, []).append(suppression)
    return index
