"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures without also
catching programming errors (``TypeError`` from misuse still propagates
as-is where Python semantics make that the clearer signal).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SpecError",
    "ProfileError",
    "DistributionError",
    "SimulationError",
    "TraceError",
    "MachineError",
    "ExperimentError",
    "ArtifactError",
    "CacheError",
    "LintError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SpecError(ReproError):
    """Invalid ``(a, b, c)``-regular algorithm specification."""


class ProfileError(ReproError):
    """Invalid memory profile or profile operation."""


class DistributionError(ReproError):
    """Invalid box-size distribution or distribution parameter."""


class SimulationError(ReproError):
    """A simulation was driven into an invalid state (e.g. a profile ran
    out of boxes before the algorithm completed in a finite-profile run)."""


class TraceError(ReproError):
    """Invalid block-reference trace or trace annotation."""


class MachineError(ReproError):
    """Invalid machine configuration (cache size, policy, profile)."""


class ExperimentError(ReproError):
    """Unknown experiment id or invalid experiment configuration."""


class ArtifactError(ReproError):
    """Invalid run artifact: unserializable payload, unknown schema
    version, or a malformed artifact/manifest file."""


class CacheError(ReproError):
    """Invalid cache operation: unreadable store, unfingerprintable
    module, or a corrupt cache entry that cannot be trusted."""


class LintError(ReproError):
    """Invalid ``repro lint`` invocation (unknown rule, unreadable path)."""


class AnalysisError(ReproError):
    """The deep (interprocedural) analysis could not run: unreadable or
    unparsable module in the closure, no modules under the given paths,
    or a missing entry symbol."""
