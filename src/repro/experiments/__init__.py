"""Experiment modules — one per reproduced claim of the paper.

Import :data:`repro.experiments.registry.EXPERIMENTS` (or use
``python -m repro list``) to enumerate them.
"""

from repro.experiments.common import ExperimentResult, ResultTable

__all__ = ["ExperimentResult", "ResultTable", "EXPERIMENTS", "run_experiment", "run_all"]


def __getattr__(name):
    # registry imports the experiment modules, which import common; expose
    # it lazily to keep `import repro.experiments` light and cycle-free.
    if name in ("EXPERIMENTS", "run_experiment", "run_all", "Experiment"):
        from repro.experiments import registry

        return getattr(registry, name)
    raise AttributeError(f"module 'repro.experiments' has no attribute {name!r}")
