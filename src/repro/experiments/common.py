"""Shared infrastructure for the experiment registry.

Every experiment is a function ``run(quick=True, seed=0) -> ExperimentResult``
producing one or more printed tables (the paper has no numeric tables, so
these tables *are* the reproduced artifacts) plus a verdict comparing the
measured shape against the paper's claim.  ``quick`` trims problem sizes
and trial counts so the whole suite runs in CI time; the benchmarks run
the same code under pytest-benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.util.tables import format_kv, format_table

__all__ = ["ResultTable", "ExperimentResult"]


@dataclass(frozen=True)
class ResultTable:
    """One printed table of an experiment."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]

    def render(self, precision: int = 4) -> str:
        return format_table(self.headers, self.rows, title=self.title,
                            precision=precision)


@dataclass
# ExperimentResult is the one deliberately mutable *Result type: it is a
# builder that experiments fill table-by-table before rendering, not a
# measurement artifact.
class ExperimentResult:  # repro-lint: disable=frozen-dataclass
    """Everything an experiment reports.

    ``verdict`` summarizes whether the measured shape matches the paper's
    claim (each experiment documents its criterion); ``metrics`` carries
    machine-checkable scalars that the test suite asserts on.
    """

    experiment_id: str
    title: str
    claim: str
    tables: list[ResultTable] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    verdict: str = ""
    notes: str = ""

    def add_table(self, title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
        self.tables.append(
            ResultTable(
                title=title,
                headers=tuple(headers),
                rows=tuple(tuple(r) for r in rows),
            )
        )

    def render(self, precision: int = 4) -> str:
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"claim: {self.claim}",
        ]
        for table in self.tables:
            parts.append("")
            parts.append(table.render(precision=precision))
        if self.metrics:
            parts.append("")
            parts.append(format_kv(self.metrics, precision=precision))
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        if self.verdict:
            parts.append("")
            parts.append(f"verdict: {self.verdict}")
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
