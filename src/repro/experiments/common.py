"""Shared infrastructure for the experiment registry.

Every experiment is a function ``run(quick=True, seed=0) -> RunArtifact``
producing one or more printed tables (the paper has no numeric tables, so
these tables *are* the reproduced artifacts) plus a verdict comparing the
measured shape against the paper's claim.  ``quick`` trims problem sizes
and trial counts so the whole suite runs in CI time; the benchmarks run
the same code under pytest-benchmark.

:class:`ExperimentResult` is the *builder* half of that contract: an
experiment fills it table-by-table, then :meth:`ExperimentResult.finalize`
freezes everything into an immutable, schema-versioned
:class:`~repro.runtime.artifact.RunArtifact` — the only object that
leaves an experiment.  Rendering lives on the artifact; the builder's
``render`` delegates so text output is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.runtime.artifact import ResultTable, RunArtifact
from repro.runtime.provenance import git_revision, repro_version
from repro.util.rng import RNG_SCHEME

__all__ = ["ResultTable", "ExperimentResult", "RunArtifact"]


@dataclass
# ExperimentResult is the one deliberately mutable *Result type: it is a
# builder that experiments fill table-by-table before finalizing, not a
# measurement artifact.
class ExperimentResult:  # repro-lint: disable=frozen-dataclass
    """Everything an experiment reports, in builder form.

    ``verdict`` summarizes whether the measured shape matches the paper's
    claim (each experiment documents its criterion); ``metrics`` carries
    machine-checkable scalars that the test suite asserts on.  Call
    :meth:`finalize` to freeze the accumulated state into a
    :class:`RunArtifact`.
    """

    experiment_id: str
    title: str
    claim: str
    tables: list[ResultTable] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    verdict: str = ""
    notes: str = ""

    def add_table(self, title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
        self.tables.append(
            ResultTable(
                title=title,
                headers=tuple(headers),
                rows=tuple(tuple(r) for r in rows),
            )
        )

    def finalize(
        self, quick: bool | None = None, seed: int | None = None
    ) -> RunArtifact:
        """Freeze the builder into an immutable, provenance-stamped
        :class:`RunArtifact`.

        ``wall_time_s`` and ``counters`` stay empty here: they belong to
        the runtime layer (:func:`repro.runtime.run_one`), which wraps
        the experiment call and attaches them to the finalized artifact.
        """
        return RunArtifact(
            experiment_id=self.experiment_id,
            title=self.title,
            claim=self.claim,
            tables=tuple(self.tables),
            metrics=dict(self.metrics),
            verdict=self.verdict,
            notes=self.notes,
            seed=seed,
            quick=quick,
            rng_scheme=RNG_SCHEME,
            repro_version=repro_version(),
            git_revision=git_revision(),
        )

    def render(self, precision: int = 4) -> str:
        return self.finalize().render(precision=precision)

    def __str__(self) -> str:
        return self.render()
