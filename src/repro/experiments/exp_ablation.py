"""Experiment ``ablation`` — sensitivity of the results to modelling choices.

DESIGN.md fixes three modelling knobs the paper leaves implicit; this
experiment ablates each, with the adversary *matched* to the algorithm it
attacks (the paper converts every ``(a,b,1)`` algorithm to trailing-scan
form precisely so one adversary fits all — here we build the
per-placement adversary instead and check the gap survives):

1. **Scan placement.**  END: the canonical gap, ratio exactly
   ``log₄n+1``.  SPLIT: still logarithmic, with slope exactly
   ``(a+1)^{1-e}`` (the split dilutes each box's potential).  FRONT: the
   matched adversary's box lands at the *start* of its node, which is
   exactly where the κ=1 normalization is most generous (the box
   swallows the node), so the gap needs the constant-faithful κ=b
   semantics — the same model boundary as the order perturbation.
2. **Box semantics.**  simplified and recursive agree exactly on the
   adversary (every box exactly consumed) and both show i.i.d.
   adaptivity; greedy keeps the gap but breaks i.i.d. adaptivity — a
   known artifact (it denies divide-and-conquer its block reuse, so a
   size-``s`` box does ``s`` work instead of ``s^e``), documenting why
   the simplified/recursive semantics are the right ones.
3. **Completion divisor κ ∈ {1, 2, b}.**  The adversarial gap is
   κ-insensitive; i.i.d. constants shift with κ but stay bounded.
"""

from __future__ import annotations

from itertools import chain, cycle

import numpy as np

from repro.algorithms.library import MM_SCAN
from repro.algorithms.spec import ScanPlacement
from repro.analysis.adaptivity import RatioSeries
from repro.analysis.smoothing import iid_ratio_trials
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.distributions import UniformPowers
from repro.profiles.worst_case import matched_worst_case_profile
from repro.simulation.symbolic import SymbolicSimulator
from repro.util.rng import spawn

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "ablation"
TITLE = "Ablations: scan placement, box semantics, completion divisor"
CLAIM = (
    "With the adversary matched to the algorithm, the gap and its i.i.d. "
    "closure survive every modelling knob; the two knob settings that "
    "break it (FRONT at kappa=1, greedy iid) are documented model artifacts"
)


def _adversary_ratio(spec, n, model, kappa):
    profile = matched_worst_case_profile(spec, n)
    sim = SymbolicSimulator(spec, n, model=model, completion_divisor=kappa)
    rec = sim.run_to_completion(chain(iter(profile), cycle(profile.boxes.tolist())))
    return rec.adaptivity_ratio


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    ks = range(2, 6 if quick else 8)
    ns = [4**k for k in ks]
    trials = 6 if quick else 20
    dist = UniformPowers(4, 1, 5)
    ok = True

    # --- 1. scan placement (with matched adversaries) ---------------------
    # (placement, kappa, expected growth on the matched adversary)
    placement_cases = [
        (ScanPlacement.END, 1, "logarithmic"),
        (ScanPlacement.SPLIT, 1, "logarithmic"),
        (ScanPlacement.FRONT, 1, "constant"),  # κ=1 model boundary
        (ScanPlacement.FRONT, MM_SCAN.b, "logarithmic"),
    ]
    rows = []
    for placement, kappa, expected in placement_cases:
        spec = MM_SCAN.with_placement(placement)
        wc = [_adversary_ratio(spec, n, "recursive", kappa) for n in ns]
        series = RatioSeries(tuple(ns), tuple(wc), base=4.0)
        agree = series.verdict == expected
        ok &= agree
        rows.append(
            (placement, f"κ={kappa}", wc[-1], series.log_slope, series.verdict,
             expected, agree)
        )
    result.add_table(
        "scan placement vs its matched adversary "
        "(SPLIT slope = (a+1)^(1-e) = 1/3 exactly)",
        ["placement", "model", "ratio@max n", "slope", "measured", "expected",
         "agree"],
        rows,
    )

    # --- 2. box semantics ----------------------------------------------------
    model_cases = [
        ("simplified", "logarithmic", "constant"),
        ("recursive", "logarithmic", "constant"),
        ("greedy", "logarithmic", "logarithmic"),  # no-reuse artifact
    ]
    rows = []
    for model, gap_expected, iid_expected in model_cases:
        wc = [_adversary_ratio(MM_SCAN, n, model, 1) for n in ns]
        iid = []
        for n in ns:
            vals = []
            for g in spawn(seed, trials):
                sim = SymbolicSimulator(MM_SCAN, n, model=model)
                vals.append(sim.run_to_completion(dist.sampler(g)).adaptivity_ratio)
            iid.append(float(np.mean(vals)))
        wc_series = RatioSeries(tuple(ns), tuple(wc), base=4.0)
        iid_series = RatioSeries(tuple(ns), tuple(iid), base=4.0)
        agree = (
            wc_series.verdict == gap_expected and iid_series.verdict == iid_expected
        )
        ok &= agree
        if model in ("simplified", "recursive"):
            ok &= all(abs(w - (k + 1)) < 1e-9 for w, k in zip(wc, ks))
        rows.append(
            (model, wc[-1], wc_series.verdict, round(iid[-1], 3),
             iid_series.verdict, iid_expected, agree)
        )
    result.add_table(
        "box semantics (greedy's iid growth is the documented no-reuse artifact)",
        ["model", "adversary", "growth", "iid", "iid growth", "iid expected",
         "agree"],
        rows,
    )

    # --- 3. completion divisor ------------------------------------------------
    rows = []
    for kappa in (1, 2, MM_SCAN.b):
        wc = [_adversary_ratio(MM_SCAN, n, "recursive", kappa) for n in ns]
        iid = [
            float(
                iid_ratio_trials(
                    MM_SCAN, n, dist, trials=trials, rng=seed,
                    completion_divisor=kappa,
                ).mean()
            )
            for n in ns
        ]
        series = RatioSeries(tuple(ns), tuple(wc), base=4.0)
        agree = series.verdict == "logarithmic"
        ok &= agree
        rows.append(
            (f"κ={kappa}", wc[-1], series.verdict, round(iid[-1], 3), agree)
        )
    result.add_table(
        "completion divisor: the adversarial gap is κ-insensitive "
        "(iid constants shift with κ, staying bounded)",
        ["κ", "adversary", "growth", "iid@max n", "gap holds"],
        rows,
    )

    result.metrics["reproduced"] = ok
    result.verdict = (
        "ROBUST: gap and closure survive placement, semantics, and κ, with "
        "the two documented boundary artifacts behaving exactly as predicted"
        if ok
        else "SENSITIVE: see tables"
    )
    return result.finalize(quick=quick, seed=seed)
