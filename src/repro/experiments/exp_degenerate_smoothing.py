"""Experiment ``abeq`` — smoothing cannot rescue the ``a = b`` regime.

The paper restricts its positive result to ``a > b`` and "leaves the case
of ``a = b`` for future work", noting (footnote 3) that when
``a = b, c = 1`` no algorithm can be optimally cache-adaptive because
such algorithms are already ``Θ(log(M/B))`` from optimal in the DAM.

This experiment probes that future work with the exact solver: for LCS
(4,4,1) and merge sort (2,2,1), the expected ratio under i.i.d. boxes
from any Σ grows with slope ~1 per level of ``n`` — i.e. smoothing,
which closes the gap completely for ``a > b``, closes *nothing* here.
The restriction in Theorem 1 is necessary, not an artifact of the proof.
(Intuition: with ``a = b`` every level's scans carry constant total
potential-fraction, so the log factor is work, not adversarial timing.)
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.library import LCS, MERGE_SORT, MM_SCAN
from repro.analysis.recurrence import solve_recurrence
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.distributions import PointMass, UniformPowers
from repro.util.fitting import fit_log_law

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "abeq"
TITLE = "Future work probed: i.i.d. smoothing does not help when a = b"
CLAIM = (
    "For a = b, c = 1 (LCS, merge sort) the exact expected ratio under "
    "i.i.d. boxes still grows ~ log n (slope ~1/level), while the a > b "
    "gap algorithms converge to constants under the same smoothing"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    k_hi = 9 if quick else 12
    ks = list(range(2, k_hi + 1))

    ok = True
    rows_out = []
    cases = [
        (LCS, PointMass(LCS.b**2)),
        (LCS, UniformPowers(LCS.b, 1, 5)),
        (MERGE_SORT, PointMass(MERGE_SORT.b**2)),
        (MERGE_SORT, UniformPowers(MERGE_SORT.b, 1, 5)),
        (MM_SCAN, UniformPowers(MM_SCAN.b, 1, 5)),  # a > b control
    ]
    for spec, dist in cases:
        ns = [spec.b**k for k in ks]
        sol = solve_recurrence(spec, ns[-1], dist)
        by_n = {rec.n: rec.cost_ratio for rec in sol.levels}
        ratios = [by_n[n] for n in ns]
        result.add_table(
            f"{spec.name} (a={spec.a}, b={spec.b}) under Sigma = {dist.name}",
            ["n", "E[ratio] (exact)"],
            [(f"{spec.b}^{k}", ratios[i]) for i, k in enumerate(ks)],
        )
        # classify by the tail slope per b-fold increase of n
        tail = max(4, len(ns) // 2)
        fit = fit_log_law(ns[-tail:], ratios[-tail:], base=float(spec.b))
        degenerate = spec.a == spec.b
        grows = fit.slope > 0.5
        expected = "grows ~log" if degenerate else "bounded"
        agrees = grows if degenerate else not grows
        ok &= agrees
        rows_out.append(
            (
                spec.name,
                f"a={spec.a},b={spec.b}",
                dist.name,
                fit.slope,
                "grows ~log" if grows else "bounded",
                expected,
                agrees,
            )
        )

    result.add_table(
        "tail slope of the exact expected ratio (per factor-b of n)",
        ["spec", "shape", "Sigma", "tail slope", "measured", "expected", "agree"],
        rows_out,
    )
    result.metrics["reproduced"] = ok
    result.notes = (
        "Extension beyond the paper (its stated future work): in the "
        "degenerate regime the log factor is intrinsic work, so no "
        "distribution over profiles removes it — smoothing closes exactly "
        "the gaps caused by adversarial timing and no others."
    )
    result.verdict = (
        "SUPPORTED: a=b stays logarithmic under every Sigma tried; the "
        "a>b control converges"
        if ok
        else "MIXED: see table"
    )
    return result.finalize(quick=quick, seed=seed)
