"""Experiment ``eq8`` — the semi-inductive proof structure (Eqs 7–9).

Equation 8 of the paper: ``prod_{b^k <= n} f(b^k) / f'(b^k) = O(1)`` —
individual factors (the per-level cost of the trailing scan) can exceed 1,
but their product over all levels stays bounded; this is what "fills in
the holes" of the semi-inductive proof.  We compute every factor exactly
from the recurrence for several distributions, exhibit levels with factor
> 1, and track the running product as ``n`` grows.  Equation 6's potential
failure (the motivation for the ``f'`` detour) is reported, and the
*negative feedback loop* (Equation 7 under the Equation-9 threshold) is
verified: downward pressure may fail only at levels whose normalized cost
is below a small universal constant.
"""

from __future__ import annotations

from repro.algorithms.library import MM_SCAN
from repro.analysis.feedback import feedback_threshold, verify_negative_feedback
from repro.analysis.recurrence import solve_recurrence
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.distributions import (
    GeometricPowers,
    ParetoPowers,
    PointMass,
    UniformPowers,
)

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "eq8"
TITLE = "Equation 8: the product of f/f' over all levels is O(1)"
CLAIM = (
    "Individual factors f(b^k)/f'(b^k) may exceed 1, but the product over "
    "all levels is bounded by a constant independent of n"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    spec = MM_SCAN
    n = 4 ** (6 if quick else 9)
    hi = 5 if quick else 7
    dists = [
        PointMass(4**2),
        UniformPowers(4, 1, hi),
        GeometricPowers(4, 1, hi, ratio=0.5),
        ParetoPowers(4, 1, hi, alpha=0.5),
    ]

    ok = True
    summary_rows = []
    for dist in dists:
        sol = solve_recurrence(spec, n, dist)
        factor_rows = []
        product = 1.0
        max_factor = 0.0
        for rec in sol.levels[1:]:
            factor = rec.f / rec.f_prime if rec.f_prime > 0 else float("inf")
            product *= factor
            max_factor = max(max_factor, factor)
            factor_rows.append((rec.n, rec.f, rec.f_prime, factor, product))
        result.add_table(
            f"Sigma = {dist.name}: per-level scan factors and running product",
            ["n (level)", "f", "f'", "f/f'", "running product"],
            factor_rows,
        )
        eq6_bad = sol.eq7_violations()
        # The product must be bounded; 'bounded' is operationalized as not
        # exceeding a fixed constant across all sampled levels.
        bounded = product < 50.0
        ok &= bounded
        # Negative feedback loop: Eq 7 may only fail below the Eq-9 cut.
        threshold = feedback_threshold(sol)
        feedback_ok = verify_negative_feedback(sol, C=3.0)
        ok &= feedback_ok
        summary_rows.append(
            (
                dist.name,
                max_factor,
                product,
                bounded,
                len(eq6_bad),
                threshold,
                feedback_ok,
            )
        )
    result.add_table(
        "summary: Eq-8 products, Eq-6 violations (motivating the f' detour), "
        "and the Eq-7/9 feedback threshold (largest cost ratio lacking "
        "downward pressure; must stay below a universal C)",
        ["Sigma", "max factor", "total product", "bounded", "#Eq6 violations",
         "feedback threshold", "Eq7 holds above C=3"],
        summary_rows,
    )
    some_factor_above_one = any(row[1] > 1.0 + 1e-9 for row in summary_rows)
    result.metrics.update(
        {
            "reproduced": ok,
            "some_factor_above_one": some_factor_above_one,
        }
    )
    result.verdict = (
        "REPRODUCED: products bounded for all Sigma"
        + (", with individual factors exceeding 1" if some_factor_above_one else "")
        if ok
        else "MISMATCH: a product grew beyond the constant envelope"
    )
    return result.finalize(quick=quick, seed=seed)
