"""Experiment ``oracle`` — explicit adaptation vs smoothed obliviousness.

Related Work frames the design space: Barve–Vitter-style algorithms adapt
*explicitly* (they watch the cache and reorganize their computation);
cache-oblivious algorithms cannot, and pay the worst-case log — unless the
profile is smoothed, which is the paper's contribution.  This experiment
puts all three on the same adversary:

* the oblivious MM-SCAN pays ``log₄ n + 1`` (exactly);
* the explicitly adaptive executor (same dependency structure, free to
  reorder commuting siblings and defer subtrees) stays at a small
  constant *on the adversarial ordering itself* — explicit adaptation
  needs no smoothing;
* the oblivious algorithm on the *shuffled* adversary matches it — the
  paper's point that smoothing buys obliviousness what explicitness buys.

The adaptive executor also completes Θ(log n) back-to-back multiplies on
the finite adversary (like MM-INPLACE in Section 3) where oblivious
MM-SCAN fits exactly one.
"""

from __future__ import annotations

from itertools import chain, cycle

import numpy as np

from repro.algorithms.library import MM_SCAN
from repro.analysis.adaptivity import RatioSeries, worst_case_ratio
from repro.analysis.smoothing import shuffled_worst_case_trials
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.adaptive import run_adaptive

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "oracle"
TITLE = "Explicit adaptation (Barve–Vitter style) vs smoothed obliviousness"
CLAIM = (
    "An explicitly adaptive executor achieves O(1) ratio on the very "
    "adversary that costs the oblivious algorithm Theta(log n); smoothing "
    "gives the oblivious algorithm the same — without watching the cache"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    spec = MM_SCAN
    ks = range(2, 6 if quick else 8)
    ns = [4**k for k in ks]
    trials = 8 if quick else 25

    rows = []
    adaptive_ratios = []
    shuffled_means = []
    completions = []
    for n in ns:
        profile = worst_case_profile(spec.a, spec.b, n)
        adaptive = run_adaptive(
            spec, n, chain(iter(profile), cycle(profile.boxes.tolist()))
        )
        assert adaptive.completed
        shuffled = shuffled_worst_case_trials(spec, n, trials=trials, rng=seed)
        adaptive_ratios.append(adaptive.adaptivity_ratio)
        shuffled_means.append(float(shuffled.mean()))
        # repeated executions of the adaptive executor on the same finite
        # profile: count how many full multiplies fit
        count = 0
        box_iter = iter(profile)
        remaining = True
        while remaining:
            rec = run_adaptive(spec, n, box_iter)
            if rec.completed:
                count += 1
            else:
                remaining = False
        completions.append(count)
        rows.append(
            (
                n,
                worst_case_ratio(spec, n),
                adaptive.adaptivity_ratio,
                float(shuffled.mean()),
                count,
            )
        )
    result.add_table(
        "the same adversarial boxes, three ways",
        ["n", "oblivious (adversarial)", "adaptive (adversarial)",
         "oblivious (shuffled)", "adaptive completions on M(n)"],
        rows,
    )

    s_adaptive = RatioSeries(tuple(ns), tuple(adaptive_ratios), base=4.0)
    s_shuffled = RatioSeries(tuple(ns), tuple(shuffled_means), base=4.0)
    comparable = all(
        ad <= 1.5 * sh + 0.5 for ad, sh in zip(adaptive_ratios, shuffled_means)
    )
    # the adaptive executor fits a growing number of multiplies into the
    # finite adversary (Θ(log n), with a smaller constant than MM-INPLACE
    # because it still performs the scan work), where the oblivious
    # MM-SCAN always fits exactly one
    log_completions = (
        completions == sorted(completions) and completions[-1] >= completions[0] + 2
    )
    ok = (
        s_adaptive.verdict == "constant"
        and s_shuffled.verdict == "constant"
        and comparable
        and log_completions
    )
    result.add_table(
        "growth classification",
        ["series", "log-slope", "verdict", "expected"],
        [
            ("adaptive on adversary", s_adaptive.log_slope, s_adaptive.verdict,
             "constant"),
            ("oblivious on shuffle", s_shuffled.log_slope, s_shuffled.verdict,
             "constant"),
        ],
    )
    result.metrics.update(
        {
            "adaptive_slope": s_adaptive.log_slope,
            "adaptive_final_ratio": adaptive_ratios[-1],
            "completions": completions,
            "reproduced": ok,
        }
    )
    result.notes = (
        "Extension contextualizing Related Work: explicit adaptation and "
        "smoothed obliviousness land at comparable constants; the paper's "
        "contribution is getting there without the algorithm ever reading "
        "the cache size."
    )
    result.verdict = (
        "SUPPORTED: explicit adaptation flattens the adversary; smoothing "
        "matches it obliviously"
        if ok
        else "MIXED: see tables"
    )
    return result.finalize(quick=quick, seed=seed)
