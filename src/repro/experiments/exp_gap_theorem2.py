"""Experiment ``gap`` — Theorem 2's worst-case logarithmic gap.

On the adversarial profile ``M_{a,b}(n)``, an ``(a,b,1)``-regular
algorithm with ``a > b`` (MM-SCAN) pays adaptivity ratio
``Θ(log_b n)`` — measured here by actually running the symbolic simulator
(budgeted-continuation semantics, so leftover box capacity is not
artificially stranded) — while its ``c = 0`` sibling (MM-INPLACE) and a
``c = 1/2`` variant stay O(1) on the same adversary (Theorem 2's adaptive
cases).  The
ratio series are classified by log-law fitting; MM-SCAN's fitted slope
should be ~1 per factor-``b`` of ``n`` and the adaptive specs' ~0.
"""

from __future__ import annotations

from repro.algorithms.library import MM_INPLACE, MM_SCAN, SQRT_SCAN
from repro.analysis.adaptivity import RatioSeries
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.symbolic import SymbolicSimulator

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "gap"
TITLE = "Theorem 2: the worst-case gap at c=1, a>b (and its absence otherwise)"
CLAIM = (
    "MM-SCAN's adaptivity ratio on M_{8,4}(n) grows as Theta(log_4 n); "
    "MM-INPLACE (c=0) and SQRT-SCAN (c=1/2) stay O(1) on the same adversary"
)


def _ratio_on_worst_case(spec, n: int) -> float:
    """Run ``spec`` against the (8,4) adversary's box stream and return
    the realized adaptivity ratio over the consumed prefix."""
    from itertools import chain, cycle

    profile = worst_case_profile(8, 4, n, spec.base_size)
    sim = SymbolicSimulator(spec, n, model="recursive")
    # Cycle the profile so algorithms that outlast it still finish.
    rec = sim.run_to_completion(chain(iter(profile), cycle(profile.boxes.tolist())))
    return rec.adaptivity_ratio


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    ks = range(2, 7 if quick else 9)
    ns = [4**k for k in ks]

    series: dict[str, list[float]] = {}
    for spec in (MM_SCAN, MM_INPLACE, SQRT_SCAN):
        series[spec.name] = [_ratio_on_worst_case(spec, n) for n in ns]

    rows = [
        (
            f"4^{k}",
            series["MM-SCAN"][i],
            k + 1,  # exact log_4(n) + 1
            series["MM-INPLACE"][i],
            series["SQRT-SCAN"][i],
        )
        for i, k in enumerate(ks)
    ]
    result.add_table(
        "adaptivity ratio on the M_{8,4}(n) adversary",
        ["n", "MM-SCAN", "log_4(n)+1", "MM-INPLACE", "SQRT-SCAN"],
        rows,
    )

    verdicts = {}
    slopes = {}
    for name, ratios in series.items():
        rs = RatioSeries(tuple(ns), tuple(ratios), base=4.0)
        verdicts[name] = rs.verdict
        slopes[name] = rs.log_slope
    result.add_table(
        "growth classification (fitted slope per 4x of n)",
        ["spec", "log-slope", "verdict", "paper"],
        [
            ("MM-SCAN", slopes["MM-SCAN"], verdicts["MM-SCAN"], "logarithmic"),
            ("MM-INPLACE", slopes["MM-INPLACE"], verdicts["MM-INPLACE"], "constant"),
            ("SQRT-SCAN", slopes["SQRT-SCAN"], verdicts["SQRT-SCAN"], "constant"),
        ],
    )

    ok = (
        verdicts["MM-SCAN"] == "logarithmic"
        and verdicts["MM-INPLACE"] == "constant"
        and verdicts["SQRT-SCAN"] == "constant"
        and abs(slopes["MM-SCAN"] - 1.0) < 0.25
    )
    result.metrics.update(
        {
            "mm_scan_slope": slopes["MM-SCAN"],
            "mm_inplace_slope": slopes["MM-INPLACE"],
            "sqrt_scan_slope": slopes["SQRT-SCAN"],
            "reproduced": ok,
        }
    )
    result.verdict = (
        "REPRODUCED: log gap for (8,4,1), bounded ratio for c<1"
        if ok
        else "MISMATCH: see slopes"
    )
    return result.finalize(quick=quick, seed=seed)
