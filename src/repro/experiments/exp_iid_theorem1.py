"""Experiment ``iid`` — Theorem 1, the main positive result.

For *any* box-size distribution Σ, an ``(a,b,1)``-regular algorithm with
``a > b`` is cache-adaptive in expectation on i.i.d. boxes: the normalized
expected cost ``E[sum_{i<=S_n} min(n, σ_i)^e] / n^e`` stays O(1) as ``n``
grows.  We compute that quantity two independent ways —

* exactly, via the Lemma-3 recurrence and the optional-stopping identity
  (Equation 3: cost = ``f(n) · m_n``); and
* by Monte-Carlo simulation of the simplified model —

for a zoo of distributions including the *empirical distribution of the
adversarial profile's own boxes* (the shuffle connection), sweeping ``n``
far past each distribution's own scale so the transient (while ``n`` is
within the support) is visibly followed by convergence to a constant,
with the worst-case profile's unsmoothed ratio alongside for contrast.
"""

from __future__ import annotations

from repro.algorithms.library import MM_SCAN
from repro.analysis.adaptivity import RatioSeries, worst_case_ratio
from repro.analysis.recurrence import solve_recurrence
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.distributions import (
    Empirical,
    GeometricPowers,
    ParetoPowers,
    PointMass,
    UniformPowers,
)
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.montecarlo import estimate_expected_cost

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "iid"
TITLE = "Theorem 1: i.i.d. box sizes make (a,b,1)-regular algorithms adaptive in expectation"
CLAIM = (
    "For any distribution Sigma, E[sum min(n, box)^e] / n^e = O(1) over n "
    "(vs Theta(log n) on the adversarial ordering of comparable boxes)"
)


def _distributions(quick: bool):
    hi = 5 if quick else 6
    wc = worst_case_profile(8, 4, 4**(4 if quick else 6))
    return [
        PointMass(4**2),
        UniformPowers(4, 1, hi),
        GeometricPowers(4, 1, hi, ratio=0.7),
        ParetoPowers(4, 1, hi, alpha=0.5),
        Empirical.of_profile(wc, name="empirical(M_{8,4})"),
    ]


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    spec = MM_SCAN
    k_lo, k_hi = 2, (10 if quick else 12)
    ks = range(k_lo, k_hi + 1)
    ns = [4**k for k in ks]
    n_max = ns[-1]
    trials = 60 if quick else 400
    mc_k = 4  # Monte-Carlo spot check at a size simulation handles fast

    all_bounded = True
    verdict_rows = []
    for dist in _distributions(quick):
        solution = solve_recurrence(spec, n_max, dist)
        by_n = {rec.n: rec.cost_ratio for rec in solution.levels}
        exact = [by_n[n] for n in ns]
        _, mc_ratio = estimate_expected_cost(
            spec, 4**mc_k, dist, trials=trials, rng=seed
        )
        rows = [
            (f"4^{k}", exact[i], worst_case_ratio(spec, ns[i]))
            for i, k in enumerate(ks)
        ]
        result.add_table(
            f"Sigma = {dist.name}: exact expected ratio vs worst-case ordering",
            ["n", "E[ratio] (exact, Eq 3)", "adversarial ratio"],
            rows,
        )
        series = RatioSeries(tuple(ns), tuple(exact), base=4.0)
        bounded = series.verdict == "constant"
        all_bounded &= bounded
        exact_at_mc = by_n[4**mc_k]
        mc_ok = abs(mc_ratio.mean - exact_at_mc) <= max(
            3 * mc_ratio.ci_halfwidth, 0.05 * exact_at_mc
        )
        all_bounded &= mc_ok
        verdict_rows.append(
            (
                dist.name,
                series.log_slope,
                series.verdict,
                exact_at_mc,
                f"{mc_ratio.mean:.4f}±{mc_ratio.ci_halfwidth:.4f}",
                mc_ok,
            )
        )

    result.add_table(
        "per-distribution classification and Monte-Carlo cross-check",
        ["Sigma", "tail log-slope", "verdict", "exact@4^4", "MC@4^4", "MC agrees"],
        verdict_rows,
    )
    result.metrics["reproduced"] = all_bounded
    result.verdict = (
        "REPRODUCED: expected ratio bounded for every Sigma (incl. the "
        "adversary's own box multiset), exact and MC agree"
        if all_bounded
        else "MISMATCH: some distribution shows growth or MC disagrees"
    )
    return result.finalize(quick=quick, seed=seed)
