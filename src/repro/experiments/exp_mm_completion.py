"""Experiment ``mmcount`` — Section 3's concrete separation.

"MM-SCAN can perform exactly one multiply of Θ(√N × √N) matrices on this
profile.  MM-INPLACE, on the other hand, can perform Ω(log(N/B))
multiplies on this profile."  We run both algorithms back-to-back on the
*same* finite worst-case profile ``M_{8,4}(n)`` and count complete
executions: MM-SCAN fits exactly once; MM-INPLACE's count grows linearly
in ``log_4 n``.
"""

from __future__ import annotations

from repro.algorithms.library import MM_INPLACE, MM_SCAN
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.runner import run_repeated
from repro.util.fitting import fit_log_law
from repro.util.intmath import ilog

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "mmcount"
TITLE = "Section 3: completions of MM-SCAN vs MM-INPLACE on M_{8,4}(n)"
CLAIM = (
    "On the worst-case profile, MM-SCAN completes exactly 1 multiply while "
    "MM-INPLACE completes Omega(log n) multiplies"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    ks = range(2, 7 if quick else 9)
    ns = [4**k for k in ks]

    scan_counts = []
    inplace_counts = []
    rows = []
    for n in ns:
        profile = worst_case_profile(8, 4, n)
        scan = run_repeated(MM_SCAN, n, profile)
        inplace = run_repeated(MM_INPLACE, n, profile)
        scan_counts.append(scan.completions)
        inplace_counts.append(inplace.completions)
        rows.append(
            (
                n,
                scan.completions,
                inplace.completions,
                ilog(n, 4) + 1,
                inplace.completions / (ilog(n, 4) + 1),
            )
        )
    result.add_table(
        "complete multiplies on the same worst-case profile",
        ["n", "MM-SCAN", "MM-INPLACE", "log_4(n)+1", "inplace / log"],
        rows,
    )

    fit = fit_log_law(ns, inplace_counts, base=4.0)
    scan_always_one = all(c == 1 for c in scan_counts)
    inplace_log = fit.slope > 0.5 and inplace_counts[-1] >= inplace_counts[0] + (
        len(ns) - 1
    ) * 0.5
    result.metrics.update(
        {
            "scan_always_one": scan_always_one,
            "inplace_log_slope": fit.slope,
            "reproduced": scan_always_one and inplace_log,
        }
    )
    result.verdict = (
        "REPRODUCED: MM-SCAN fits exactly once; MM-INPLACE count grows ~ log_4 n"
        if scan_always_one and inplace_log
        else "MISMATCH: see counts"
    )
    return result.finalize(quick=quick, seed=seed)
