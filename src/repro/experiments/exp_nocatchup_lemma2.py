"""Experiment ``nocatchup`` — Lemma 2, verified wholesale.

The No-Catch-up Lemma: delaying an algorithm's start (running the same
square sequence from a later position in its reference stream) can never
make it finish earlier.  We sweep start positions across executions of
several specs and box sequences — worst-case, random, sorted ascending and
descending — and check monotonicity of the finish position in the start
position, under both box semantics.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.library import MM_SCAN, STRASSEN
from repro.analysis.nocatchup import check_no_catchup
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.distributions import UniformPowers
from repro.profiles.worst_case import worst_case_profile
from repro.util.rng import as_generator

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "nocatchup"
TITLE = "Lemma 2 (No-Catch-up): a delayed start never finishes earlier"
CLAIM = (
    "For any box sequence, finish position is monotone non-decreasing in "
    "the start position"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    samples = 48 if quick else 256
    n = 4**4 if quick else 4**6
    gen = as_generator(seed)
    dist = UniformPowers(4, 1, 4)

    sequences = {
        "worst-case prefix": worst_case_profile(8, 4, n).boxes[: 4 * samples].tolist(),
        "iid uniform-powers": dist.sample(4 * samples, gen).tolist(),
        "ascending": sorted(dist.sample(2 * samples, gen).tolist()),
        "descending": sorted(dist.sample(2 * samples, gen).tolist(), reverse=True),
    }

    rows = []
    all_hold = True
    for spec in (MM_SCAN, STRASSEN):
        for label, boxes in sequences.items():
            for model in ("simplified", "greedy"):
                report = check_no_catchup(
                    spec, n, boxes, samples=samples, rng=seed, model=model
                )
                all_hold &= report.holds
                rows.append(
                    (
                        spec.name,
                        label,
                        model,
                        len(report.starts),
                        len(report.violations),
                        report.holds,
                    )
                )
    result.add_table(
        "monotonicity sweeps",
        ["spec", "box sequence", "model", "starts checked", "violations", "holds"],
        rows,
    )
    result.metrics.update(
        {"sweeps": len(rows), "reproduced": all_hold}
    )
    result.verdict = (
        "REPRODUCED: no catch-up observed in any sweep"
        if all_hold
        else "MISMATCH: violations found"
    )
    return result.finalize(quick=quick, seed=seed)
