"""Experiment ``orderpert`` — box-order perturbations keep the worst case.

The paper's third negative result: in the recursive construction of the
bad profile, place each node's big box after a *random* (or adversarial)
one of the ``a`` recursive copies instead of the last — the resulting
profile remains worst-case *with probability one*.

This claim is constant-sensitive: under the generous κ=1 normalization a
misplaced big box can complete the entire remainder of its node (skipping
the other children, whose sub-profiles then carry the algorithm forward
efficiently), and the measured ratio flattens.  Under the
constant-faithful semantics (κ=b: a box completes only problems a factor
``b`` smaller, per Lemma 1's "sufficiently small in Θ(|box|)"), the big
box completes just one child and the deficit compounds — the ratio grows
logarithmically as the paper proves.  Both are reported; the κ=b row is
the reproduction, the κ=1 row documents the model boundary.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.library import MM_SCAN
from repro.analysis.adaptivity import RatioSeries, worst_case_ratio
from repro.analysis.smoothing import order_perturbation_trials
from repro.experiments.common import ExperimentResult, RunArtifact

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "orderpert"
TITLE = "Robustness: box-order perturbation does not close the gap"
CLAIM = (
    "Placing each node's big box after a random recursive copy leaves the "
    "profile worst-case (w.p. 1) — reproduced under constant-faithful box "
    "semantics"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    spec = MM_SCAN
    ks = range(3, 6 if quick else 8)
    ns = [4**k for k in ks]
    trials = 8 if quick else 30

    rows = []
    means_k1, means_kb, mins_kb = [], [], []
    for n in ns:
        r1 = order_perturbation_trials(spec, n, trials=trials, rng=seed)
        rb = order_perturbation_trials(
            spec, n, trials=trials, rng=seed + 1, completion_divisor=spec.b
        )
        means_k1.append(float(r1.mean()))
        means_kb.append(float(rb.mean()))
        mins_kb.append(float(rb.min()))
        rows.append(
            (n, worst_case_ratio(spec, n), float(r1.mean()), float(rb.mean()),
             float(rb.min()))
        )
    result.add_table(
        "adaptivity ratio under random big-box placement",
        ["n", "canonical worst", "mean (κ=1)", "mean (κ=b)", "min (κ=b)"],
        rows,
    )

    s1 = RatioSeries(tuple(ns), tuple(means_k1), base=4.0)
    sb = RatioSeries(tuple(ns), tuple(means_kb), base=4.0)
    smin = RatioSeries(tuple(ns), tuple(mins_kb), base=4.0)
    result.add_table(
        "growth classification",
        ["model", "series", "log-slope", "verdict", "paper"],
        [
            ("κ=b (faithful)", "mean", sb.log_slope, sb.verdict, "logarithmic"),
            ("κ=b (faithful)", "min (w.p.-1 claim)", smin.log_slope, smin.verdict,
             "logarithmic"),
            ("κ=1 (generous)", "mean", s1.log_slope, s1.verdict,
             "n/a (model boundary)"),
        ],
    )
    ok = sb.verdict == "logarithmic" and smin.verdict == "logarithmic"
    result.metrics.update(
        {
            "slope_kb_mean": sb.log_slope,
            "slope_kb_min": smin.log_slope,
            "slope_k1_mean": s1.log_slope,
            "reproduced": ok,
        }
    )
    result.notes = (
        "Under κ=1 every size-n box may complete its whole containing node, "
        "so the perturbed big box can absorb the remaining children — an "
        "artifact of the positive-result normalization, not of the paper's "
        "worst-case machinery (Lemma 1 only lets a box complete problems "
        "*sufficiently small* in Θ(|box|))."
    )
    result.verdict = (
        "REPRODUCED (κ=b): ratio grows ~ log n in mean and min; κ=1 documents "
        "the simplified-model boundary"
        if ok
        else "MISMATCH: κ=b series flattened"
    )
    return result.finalize(quick=quick, seed=seed)
