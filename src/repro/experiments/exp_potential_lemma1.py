"""Experiment ``lemma1`` — the potential of a box is ``Θ(|box|^{log_b a})``.

Lemma 1: the maximum progress a box of size ``s`` can make, over all
positions of all executions, is ``Θ(s^e)``.  We measure it: drop single
boxes of varying sizes at sampled execution positions, record the best
progress, compare with the exact combinatorial maximum, and fit the
exponent of the growth law — it should recover ``e = log_b a`` (1.5 for
MM-SCAN, ~1.404 for Strassen).
"""

from __future__ import annotations

from repro.algorithms.library import MM_SCAN, STRASSEN
from repro.analysis.potential import max_progress, measured_potential
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.util.fitting import fit_power_law

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "lemma1"
TITLE = "Lemma 1: box potential rho(s) = Theta(s^{log_b a})"
CLAIM = (
    "Measured maximum per-box progress grows as s^e with e = log_b a "
    "(3/2 for MM-SCAN, log_4 7 for Strassen)"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    samples = 128 if quick else 1024
    n_k = 6 if quick else 8

    ok = True
    fit_rows = []
    for spec in (MM_SCAN, STRASSEN):
        n = spec.b**n_k
        sizes = [spec.b**k for k in range(1, n_k)]
        rows = []
        measured = []
        for s in sizes:
            got = measured_potential(spec, n, s, samples=samples, rng=seed)
            theory = max_progress(spec, s)
            measured.append(got)
            rows.append((s, got, theory, got == theory, float(s) ** spec.exponent))
            ok &= got == theory
        result.add_table(
            f"{spec.name}: measured max progress of a single box (n={n})",
            ["box size", "measured max", "exact max", "match", "s^e"],
            rows,
        )
        fit = fit_power_law(sizes, measured)
        exp_ok = abs(fit.exponent - spec.exponent) < 0.12
        ok &= exp_ok
        fit_rows.append(
            (spec.name, fit.exponent, spec.exponent, fit.r2, exp_ok)
        )
    result.add_table(
        "fitted growth exponents",
        ["spec", "fitted e", "log_b a", "R^2", "agrees"],
        fit_rows,
    )
    result.metrics["reproduced"] = ok
    result.verdict = (
        "REPRODUCED: potential grows as s^{log_b a}, exactly matching the "
        "combinatorial maximum"
        if ok
        else "MISMATCH: see tables"
    )
    return result.finalize(quick=quick, seed=seed)
