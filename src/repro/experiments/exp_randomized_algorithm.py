"""Experiment ``randomized`` — the paper's concluding open question.

"Could randomized algorithms also overcome worst-case profiles and result
in cache-adaptivity?"  We randomize the one scheduling freedom
Definition 2 grants the algorithm — where in the node each scan runs —
and race the randomized MM-SCAN against the canonical adversary
``M_{8,4}(n)`` (which is tailored to trailing scans).

Measured answer (for this adversary): *yes* — with per-node random scan
placement the ratio stops growing, under all three randomizers (single
random slot, multinomial split, front/back coin flip) and under both the
generous (κ=1) and constant-faithful (κ=b) box semantics, while the
deterministic algorithm pays the full ``log₄ n + 1``.  (This does not
contradict the paper's negative results, which perturb the *profile*
around a deterministic algorithm; here the *algorithm* denies the fixed
adversary its alignment.  Whether an adversary aware of the distribution
over executions can still win is the remaining open half.)
"""

from __future__ import annotations

from itertools import chain, cycle

import numpy as np

from repro.algorithms.library import MM_SCAN
from repro.algorithms.randomized import (
    coin_flip_placement,
    random_slot_placement,
    random_split_placement,
)
from repro.analysis.adaptivity import RatioSeries, worst_case_ratio
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.symbolic import SymbolicSimulator
from repro.util.rng import fixed_seeds

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "randomized"
TITLE = "Open question: randomized scan placement vs the worst-case profile"
CLAIM = (
    "Per-node random scan placement de-synchronizes the canonical "
    "adversary: the randomized algorithm's ratio stays O(1) where the "
    "deterministic one pays Theta(log n)"
)

_RANDOMIZERS = {
    "random slot": random_slot_placement,
    "multinomial split": random_split_placement,
    "front/back coin": coin_flip_placement,
}


def _mean_ratio(spec, n, factory, trials, seed, completion_divisor):
    profile = worst_case_profile(spec.a, spec.b, n, spec.base_size)
    vals = []
    for s in fixed_seeds(seed, trials):
        sim = SymbolicSimulator(
            spec,
            n,
            model="recursive",
            completion_divisor=completion_divisor,
            scan_randomizer=factory(spec, s),
        )
        rec = sim.run_to_completion(
            chain(iter(profile), cycle(profile.boxes.tolist()))
        )
        vals.append(rec.adaptivity_ratio)
    return float(np.mean(vals)), float(np.max(vals))


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    spec = MM_SCAN
    ks = range(2, 6 if quick else 8)
    ns = [4**k for k in ks]
    trials = 6 if quick else 20

    ok = True
    verdict_rows = []
    for kappa, kappa_label in ((1, "κ=1"), (spec.b, "κ=b")):
        series: dict[str, list[float]] = {name: [] for name in _RANDOMIZERS}
        maxima: dict[str, list[float]] = {name: [] for name in _RANDOMIZERS}
        rows = []
        for n in ns:
            row = [n, worst_case_ratio(spec, n)]
            for name, factory in _RANDOMIZERS.items():
                mean, worst_trial = _mean_ratio(spec, n, factory, trials, seed, kappa)
                series[name].append(mean)
                maxima[name].append(worst_trial)
                row.append(mean)
            rows.append(tuple(row))
        result.add_table(
            f"{kappa_label}: mean ratio on M_{{8,4}}(n), deterministic vs randomized",
            ["n", "deterministic"] + list(_RANDOMIZERS),
            rows,
        )
        for name in _RANDOMIZERS:
            rs = RatioSeries(tuple(ns), tuple(series[name]), base=4.0)
            rs_max = RatioSeries(tuple(ns), tuple(maxima[name]), base=4.0)
            flat = rs.verdict == "constant" and rs_max.verdict == "constant"
            ok &= flat
            verdict_rows.append(
                (kappa_label, name, rs.log_slope, rs.verdict, rs_max.verdict)
            )

    result.add_table(
        "growth classification of the randomized algorithm",
        ["model", "randomizer", "mean log-slope", "mean verdict", "max verdict"],
        verdict_rows,
    )
    result.metrics["reproduced"] = ok
    result.notes = (
        "Extension beyond the paper: answers its concluding open question "
        "affirmatively against the fixed canonical adversary. The adversary "
        "here is oblivious to the algorithm's coins; a distribution-aware "
        "adversary remains open."
    )
    result.verdict = (
        "SUPPORTED: every randomizer flattens the ratio that the "
        "deterministic algorithm pays logarithmically"
        if ok
        else "MIXED: some randomizer still shows growth"
    )
    return result.finalize(quick=quick, seed=seed)
