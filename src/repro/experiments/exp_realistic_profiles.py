"""Experiment ``realistic`` — natural fluctuation patterns don't bite.

The introduction motivates cache-adaptivity with real system behaviours:
winner-take-all cache residency crashed by periodic flushes, and noisy
co-tenant contention.  The paper's results say the logarithmic gap
requires profiles *tailored to the recursion*; this experiment quantifies
that on the realistic patterns themselves: generate the step profiles,
squarify them (the inscribed-box reduction of [5]), and measure MM-SCAN's
adaptivity ratio across problem sizes — it stays bounded on every natural
pattern while the tailored adversary's grows, even though the natural
profiles fluctuate wildly.
"""

from __future__ import annotations

from itertools import chain, cycle

import numpy as np

from repro.algorithms.library import MM_SCAN
from repro.algorithms.traces import synthetic_trace
from repro.analysis.adaptivity import RatioSeries, worst_case_ratio
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.machine.ca_machine import simulate_ca
from repro.profiles.base import MemoryProfile
from repro.profiles.generators import random_walk_profile, winner_take_all_profile
from repro.profiles.reduction import squarify
from repro.simulation.symbolic import SymbolicSimulator
from repro.util.rng import fixed_seeds

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "realistic"
TITLE = "Introduction's scenarios: realistic fluctuation patterns stay adaptive"
CLAIM = (
    "On winner-take-all/flush and random-walk contention profiles "
    "(squarified), MM-SCAN's ratio stays O(1); only the tailored adversary "
    "extracts the log"
)


def _profiles_for(n: int, seed: int):
    yield "winner-take-all + flush", squarify(
        winner_take_all_profile(max_size=n, flush_floor=max(2, n // 64), cycles=16)
    )
    yield "shallow sawtooth", squarify(
        winner_take_all_profile(max_size=max(4, n // 4), flush_floor=2, cycles=48)
    )
    for i, s in enumerate(fixed_seeds(seed, 2)):
        yield f"random walk #{i + 1}", squarify(
            random_walk_profile(
                start=max(4, n // 8),
                steps=10 * n,
                min_size=2,
                max_size=n,
                up_probability=0.55,
                crash_probability=0.003,
                crash_factor=0.25,
                rng=s,
            )
        )


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    spec = MM_SCAN
    ks = range(3, 7 if quick else 9)
    ns = [4**k for k in ks]

    ok = True
    series: dict[str, list[float]] = {}
    rows = []
    for n in ns:
        row = [n, worst_case_ratio(spec, n)]
        for name, boxes in _profiles_for(n, seed):
            sim = SymbolicSimulator(spec, n, model="recursive")
            stream = chain(iter(boxes), cycle(boxes.boxes.tolist()))
            rec = sim.run_to_completion(stream)
            series.setdefault(name, []).append(rec.adaptivity_ratio)
            row.append(rec.adaptivity_ratio)
        rows.append(tuple(row))
    result.add_table(
        "adaptivity ratio of MM-SCAN on squarified realistic profiles",
        ["n", "tailored adversary"] + list(series),
        rows,
    )

    verdict_rows = []
    for name, ratios in series.items():
        rs = RatioSeries(tuple(ns), tuple(ratios), base=4.0)
        bounded = rs.verdict == "constant"
        ok &= bounded
        verdict_rows.append((name, max(ratios), rs.log_slope, rs.verdict))
    result.add_table(
        "growth classification (paper: only tailored profiles grow)",
        ["profile family", "max ratio", "log-slope", "verdict"],
        verdict_rows,
    )
    # --- trace-level spot check of the squarified profiles ---------------
    # Replay MM-SCAN's synthetic trace (smallest n) under each family's
    # profile expanded to per-I/O steps through the general CA machine,
    # exercising the LRU stack-distance fast path on realistic capacity
    # fluctuations.  The asserted facts are theorems — the expanded
    # profile supplies at least one I/O per reference so the run must
    # complete, and the I/O count is bracketed by the distinct-block
    # count and the reference count — so a healthy machine leaves ``ok``
    # (and the artifact) untouched.
    n0 = ns[0]
    trace = synthetic_trace(spec, n0)
    distinct = trace.distinct_blocks()
    for _name, boxes in _profiles_for(n0, seed):
        steps = np.repeat(boxes.boxes, boxes.boxes)
        reps = -(-len(trace) // int(steps.size))
        ca = simulate_ca(
            trace, MemoryProfile(np.tile(steps, reps)), policy="lru"
        )
        ok &= ca.completed and distinct <= ca.io_count <= len(trace)

    result.metrics["reproduced"] = ok
    result.verdict = (
        "REPRODUCED: every natural pattern stays bounded; the gap needs "
        "an adversary synchronized to the recursion"
        if ok
        else "MISMATCH: a natural pattern shows growth"
    )
    return result.finalize(quick=quick, seed=seed)
