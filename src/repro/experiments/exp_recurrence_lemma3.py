"""Experiment ``lemma3`` — the exact stopping-time recurrence.

Lemma 3's three components are verified against brute simulation:

1. ``f(n)`` from the recurrence equals the Monte-Carlo mean of ``S_n``
   (boxes to complete) for several distributions and ``(a, b)`` shapes;
2. the identity ``q = P[σ >= n] · f(n/b)`` — the probability that a child
   run consumes a problem-ending big box — matches its empirical
   frequency;
3. the scan renewal bound ``E[K] · E[min(σ, L)] ∈ [L, 2L)`` holds, with
   the exact ``E[K(L)]`` DP inside the Wald envelope.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.library import MM_SCAN, STRASSEN
from repro.analysis.recurrence import (
    expected_scan_boxes,
    scan_boxes_bounds,
    solve_recurrence,
)
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.distributions import GeometricPowers, ParetoPowers, UniformPowers
from repro.simulation.montecarlo import estimate, sample_boxes_to_complete
from repro.simulation.symbolic import SymbolicSimulator
from repro.util.rng import spawn

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "lemma3"
TITLE = "Lemma 3: exact recurrence for f(n), the q-identity, and the scan Wald bound"
CLAIM = (
    "f(n) = sum_i (1-q)^{i-1} f(n/b) + (1-q)^a E[K(L)] with "
    "q = P[sigma >= n] f(n/b), all exact under the simplified model"
)


def _empirical_q(spec, n, dist, trials, rng) -> float:
    """Fraction of child runs (size n/b within an isolated size-n/b
    problem) that consume a box of size >= n."""
    hits = 0
    child = n // spec.b
    for gen in spawn(rng, trials):
        sim = SymbolicSimulator(spec, child)
        saw_big = False
        sampler = dist.sampler(gen)
        while not sim.is_done:
            s = next(sampler)
            sim.feed(s)
            if s >= n:
                saw_big = True
        hits += int(saw_big)
    return hits / trials


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    trials = 400 if quick else 3000
    hi = 5 if quick else 6
    cases = [
        (MM_SCAN, 4**4, UniformPowers(4, 1, hi)),
        (MM_SCAN, 4**4, ParetoPowers(4, 1, hi, alpha=0.5)),
        (STRASSEN, 4**4, GeometricPowers(4, 1, hi, ratio=0.6)),
    ]

    ok = True
    f_rows = []
    q_rows = []
    for spec, n, dist in cases:
        sol = solve_recurrence(spec, n, dist)
        mc = estimate(
            lambda g: sample_boxes_to_complete(spec, n, dist, g),
            trials=trials,
            rng=seed,
        )
        agree = abs(mc.mean - sol.f) <= max(3 * mc.ci_halfwidth, 0.03 * sol.f)
        ok &= agree
        f_rows.append((spec.name, dist.name, n, sol.f, f"{mc.mean:.3f}±{mc.ci_halfwidth:.3f}", agree))

        # q-identity at the top level
        top = sol.levels[-1]
        emp_q = _empirical_q(spec, n, dist, trials, seed + 1)
        # binomial stderr
        se = float(np.sqrt(max(emp_q * (1 - emp_q), 1e-9) / trials))
        q_agree = abs(emp_q - top.q) <= max(4 * se, 0.02)
        ok &= q_agree
        q_rows.append((spec.name, dist.name, top.q, emp_q, q_agree))

    result.add_table(
        "f(n): recurrence vs Monte-Carlo mean of S_n",
        ["spec", "Sigma", "n", "f(n) exact", "f(n) MC", "agree"],
        f_rows,
    )
    result.add_table(
        "q-identity: P[sigma >= n]·f(n/b) vs empirical big-box frequency",
        ["spec", "Sigma", "q exact", "q empirical", "agree"],
        q_rows,
    )

    # Scan renewal: exact DP within Wald bounds for a sweep of lengths.
    dist = UniformPowers(4, 1, hi)
    scan_rows = []
    for L in [4**2, 4**3, 4**4, 4**5]:
        ek = expected_scan_boxes(L, dist)
        lo, hiB = scan_boxes_bounds(L, dist)
        inside = lo - 1e-9 <= ek <= hiB + 1e-9
        ok &= inside
        scan_rows.append((L, ek, lo, hiB, ek * dist.expected_min(L) / L, inside))
    result.add_table(
        "scan renewal: exact E[K(L)] inside the Wald envelope "
        "[L, 2L) / E[min(sigma, L)]",
        ["L", "E[K] exact", "Wald lo", "Wald hi", "E[K]·E[min]/L", "inside"],
        scan_rows,
    )

    result.metrics["reproduced"] = ok
    result.verdict = (
        "REPRODUCED: recurrence exact, q-identity holds, scan bound tight"
        if ok
        else "MISMATCH: see tables"
    )
    return result.finalize(quick=quick, seed=seed)
