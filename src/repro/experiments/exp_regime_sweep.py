"""Experiment ``regimes`` — the Theorem-2 regime map over ``(a, b, c)``.

Theorem 2 classifies ``(a,b,c)``-regular algorithms: adaptive when
``c < 1`` or ``a < b``; a ``Θ(log_b n)`` gap when ``c = 1, a > b``;
degenerate when ``a = b, c = 1`` (already ``Θ(log(M/B))`` off in the DAM).
We sweep the named spec library (plus extra shapes) against its
worst-case-style adversary and check each lands in its predicted regime.
"""

from __future__ import annotations

from itertools import chain, cycle

from repro.algorithms.library import (
    BINARY_ADAPTIVE,
    LCS,
    MERGE_SORT,
    MM_INPLACE,
    MM_SCAN,
    SQRT_SCAN,
    STRASSEN,
)
from repro.algorithms.spec import RegularSpec
from repro.analysis.adaptivity import RatioSeries
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.symbolic import SymbolicSimulator

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "regimes"
TITLE = "Theorem 2 regime map across (a, b, c)"
CLAIM = (
    "adaptive iff c < 1 or a < b; logarithmic gap iff c = 1 and a > b; "
    "a = b, c = 1 is degenerate"
)


def _adversary_ratio(spec: RegularSpec, n: int) -> float:
    """Run ``spec`` against the recursive adversary built for its own
    (a, b) shape (boxes sized to its scans), cycling if needed."""
    profile = worst_case_profile(spec.a, spec.b, n, spec.base_size)
    sim = SymbolicSimulator(spec, n, model="recursive")
    rec = sim.run_to_completion(
        chain(iter(profile), cycle(profile.boxes.tolist()))
    )
    return rec.adaptivity_ratio


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    specs = [
        MM_SCAN,
        STRASSEN,
        RegularSpec(16, 4, 1.0, name="(16,4,1)"),
        MM_INPLACE,
        SQRT_SCAN,
        BINARY_ADAPTIVE,
        LCS,
        MERGE_SORT,
    ]
    # Expected measured growth of the leaf-potential ratio per regime:
    # 'gap' -> logarithmic; 'adaptive' with a > b (c < 1) -> constant;
    # a = b ('degenerate') -> logarithmic against its own adversary, which
    # is footnote 3's point; a < b -> logarithmic too, because the
    # base-case-counting potential is not the right optimality measure for
    # scan-dominated algorithms (footnote 4) — included for completeness.
    def expectation(spec: RegularSpec) -> str:
        if spec.regime == "gap" or spec.regime == "degenerate":
            return "logarithmic"
        if spec.a < spec.b:
            return "logarithmic"
        return "constant"

    ok = True
    rows = []
    for spec in specs:
        k_hi = 6 if quick else 8
        ks = range(2, k_hi)
        ns = [spec.base_size * spec.b**k for k in ks]
        ratios = [_adversary_ratio(spec, n) for n in ns]
        series = RatioSeries(tuple(ns), tuple(ratios), base=float(spec.b))
        expected = expectation(spec)
        agree = series.verdict == expected
        ok &= agree
        rows.append(
            (
                spec.name,
                spec.a,
                spec.b,
                f"{spec.c:g}",
                spec.regime,
                series.log_slope,
                series.verdict,
                expected,
                agree,
            )
        )
    result.add_table(
        "measured growth vs Theorem-2 regime",
        ["spec", "a", "b", "c", "regime", "log-slope", "measured", "expected", "agree"],
        rows,
    )
    result.metrics["reproduced"] = ok
    result.verdict = (
        "REPRODUCED: every (a,b,c) shape lands in its Theorem-2 regime"
        if ok
        else "MISMATCH: see table"
    )
    return result.finalize(quick=quick, seed=seed)
