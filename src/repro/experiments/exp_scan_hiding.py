"""Experiment ``scanhide`` — the scan-hiding comparator (related work).

Lincoln et al. (SPAA 2018) rewrite certain non-adaptive ``(a,b,1)``-regular
algorithms so the scans interleave with the recursion, buying worst-case
adaptivity at a constant-factor work overhead.  This paper's pitch is that
smoothing makes the rewrite unnecessary on non-adversarial profiles.  We
quantify both sides: the scan-hidden MM-SCAN is adaptive on the very
profile that defeats the original (ratio O(1) vs Θ(log n)), and its work
overhead factor converges to a constant (the geometric series of
per-level scan burdens).
"""

from __future__ import annotations

from itertools import chain, cycle

from repro.algorithms.library import MM_SCAN
from repro.algorithms.scan_hiding import (
    hidden_work_per_leaf,
    overhead_factor,
    transform,
)
from repro.analysis.adaptivity import RatioSeries, worst_case_ratio
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.symbolic import SymbolicSimulator

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "scanhide"
TITLE = "Scan-hiding (Lincoln et al.) makes MM-SCAN worst-case adaptive, at a cost"
CLAIM = (
    "The scan-hidden algorithm has O(1) ratio on the adversarial profile; "
    "its work overhead converges to a constant factor"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    spec = MM_SCAN
    hidden = transform(spec)
    ks = range(2, 7 if quick else 9)
    ns = [4**k for k in ks]

    rows = []
    hidden_ratios = []
    for n in ns:
        profile = worst_case_profile(spec.a, spec.b, n, spec.base_size)
        sim = SymbolicSimulator(hidden, n, model="recursive")
        rec = sim.run_to_completion(
            chain(iter(profile), cycle(profile.boxes.tolist()))
        )
        hidden_ratios.append(rec.adaptivity_ratio)
        rows.append(
            (
                n,
                worst_case_ratio(spec, n),
                rec.adaptivity_ratio,
                overhead_factor(spec, n),
                hidden_work_per_leaf(spec, n),
            )
        )
    result.add_table(
        "original vs scan-hidden MM-SCAN on the adversarial profile",
        ["n", "MM-SCAN ratio", "hidden ratio", "work overhead", "scan/leaf"],
        rows,
    )

    series = RatioSeries(tuple(ns), tuple(hidden_ratios), base=4.0)
    overheads = [overhead_factor(spec, n) for n in ns]
    overhead_converges = abs(overheads[-1] - overheads[-2]) < 0.05 * overheads[-1]
    ok = series.verdict == "constant" and overhead_converges
    result.metrics.update(
        {
            "hidden_slope": series.log_slope,
            "hidden_verdict": series.verdict,
            "limit_overhead": overheads[-1],
            "reproduced": ok,
        }
    )
    result.verdict = (
        "REPRODUCED: scan-hiding flattens the ratio; overhead tends to "
        f"~{overheads[-1]:.3f}x"
        if ok
        else "MISMATCH: see series"
    )
    return result.finalize(quick=quick, seed=seed)
