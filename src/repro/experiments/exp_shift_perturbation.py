"""Experiment ``shiftpert`` — random start times keep the worst case.

The paper's second negative result: cyclically shift the worst-case
profile by a uniformly random amount (equivalently, start the algorithm at
a random time in the cyclic profile) — the profile remains worst-case in
expectation, because with constant probability the start lands in a prefix
whose suffix still carries a constant fraction of the total potential
(Equations 10–11), and by No-Catch-up the algorithm must consume it.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.library import MM_SCAN
from repro.analysis.adaptivity import RatioSeries, worst_case_ratio
from repro.analysis.smoothing import start_shift_trials
from repro.experiments.common import ExperimentResult, RunArtifact

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "shiftpert"
TITLE = "Robustness: random start-time shifts do not close the gap"
CLAIM = (
    "Starting MM-SCAN at a uniformly random time in the cyclic worst-case "
    "profile leaves the expected ratio Theta(log n)"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    spec = MM_SCAN
    ks = range(3, 6 if quick else 8)
    ns = [4**k for k in ks]
    trials = 12 if quick else 50

    rows = []
    means = []
    means_kb = []
    for n in ns:
        r = start_shift_trials(spec, n, trials=trials, rng=seed)
        rb = start_shift_trials(
            spec, n, trials=trials, rng=seed + 1, completion_divisor=spec.b
        )
        means.append(float(r.mean()))
        means_kb.append(float(rb.mean()))
        rows.append(
            (
                n,
                worst_case_ratio(spec, n),
                float(r.mean()),
                float(np.min(r)),
                float(np.max(r)),
                float(rb.mean()),
            )
        )
    result.add_table(
        "adaptivity ratio from a uniformly random start time",
        ["n", "aligned worst", "mean (κ=1)", "min", "max", "mean (κ=b)"],
        rows,
    )

    s1 = RatioSeries(tuple(ns), tuple(means), base=4.0)
    sb = RatioSeries(tuple(ns), tuple(means_kb), base=4.0)
    result.add_table(
        "growth classification",
        ["model", "log-slope", "verdict", "paper"],
        [
            ("κ=1 (generous)", s1.log_slope, s1.verdict, "logarithmic"),
            ("κ=b (faithful)", sb.log_slope, sb.verdict, "logarithmic"),
        ],
    )
    ok = s1.verdict == "logarithmic" and sb.verdict == "logarithmic"
    result.metrics.update(
        {"slope_k1": s1.log_slope, "slope_kb": sb.log_slope, "reproduced": ok}
    )
    result.verdict = (
        "REPRODUCED: expected ratio still grows ~ log n under random start shifts"
        if ok
        else "MISMATCH: shifting flattened the ratio"
    )
    return result.finalize(quick=quick, seed=seed)
