"""Experiment ``shuffle`` — the headline contrast of the paper.

Take the adversarial profile ``M_{8,4}(n)`` — the exact multiset of boxes
that forces MM-SCAN a ``Θ(log n)`` factor from optimal — and randomly
permute *when* those boxes occur.  Theorem 1 (via the empirical
distribution of the multiset) says the shuffled profile is cache-adaptive
in expectation: the same resources, in random order, lose all adversarial
power.  We measure the ratio on the adversarial ordering vs the shuffled
ordering across ``n`` and classify both growths, and cross-check the
shuffled mean against the exact i.i.d.-empirical prediction.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.library import MM_SCAN
from repro.analysis.adaptivity import RatioSeries, worst_case_ratio
from repro.analysis.recurrence import solve_recurrence
from repro.analysis.smoothing import shuffled_worst_case_trials
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.distributions import Empirical
from repro.profiles.worst_case import worst_case_profile

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "shuffle"
TITLE = "Random shuffling of the adversary's own boxes closes the gap"
CLAIM = (
    "The same box multiset that forces a Theta(log n) ratio in adversarial "
    "order yields an O(1) expected ratio in random order"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    spec = MM_SCAN
    ks = range(3, 6 if quick else 8)
    ns = [4**k for k in ks]
    trials = 12 if quick else 50

    rows = []
    shuffled_means = []
    adversarial = []
    exact_iid = []
    for n in ns:
        r = shuffled_worst_case_trials(spec, n, trials=trials, rng=seed)
        wc = worst_case_ratio(spec, n)
        dist = Empirical.of_profile(
            worst_case_profile(spec.a, spec.b, n, spec.base_size)
        )
        iid = solve_recurrence(spec, n, dist).cost_ratio
        shuffled_means.append(float(r.mean()))
        adversarial.append(wc)
        exact_iid.append(iid)
        rows.append(
            (
                n,
                wc,
                float(r.mean()),
                float(np.std(r, ddof=1)) if trials > 1 else 0.0,
                iid,
                wc / float(r.mean()),
            )
        )
    result.add_table(
        "adversarial vs shuffled ordering of the same boxes",
        ["n", "adversarial ratio", "shuffled mean", "std", "iid-empirical exact",
         "gap factor"],
        rows,
    )

    s_adv = RatioSeries(tuple(ns), tuple(adversarial), base=4.0)
    s_shuf = RatioSeries(tuple(ns), tuple(shuffled_means), base=4.0)
    s_iid = RatioSeries(tuple(ns), tuple(exact_iid), base=4.0)
    result.add_table(
        "growth classification",
        ["ordering", "log-slope", "verdict", "paper"],
        [
            ("adversarial", s_adv.log_slope, s_adv.verdict, "logarithmic"),
            ("shuffled", s_shuf.log_slope, s_shuf.verdict, "constant"),
            ("iid empirical (exact)", s_iid.log_slope, s_iid.verdict, "constant"),
        ],
    )
    ok = (
        s_adv.verdict == "logarithmic"
        and s_shuf.verdict == "constant"
        and s_iid.verdict == "constant"
    )
    result.metrics.update(
        {
            "adversarial_slope": s_adv.log_slope,
            "shuffled_slope": s_shuf.log_slope,
            "final_gap_factor": adversarial[-1] / shuffled_means[-1],
            "reproduced": ok,
        }
    )
    result.verdict = (
        "REPRODUCED: the log gap is an ordering phenomenon — shuffling the "
        "adversary's boxes makes MM-SCAN adaptive in expectation"
        if ok
        else "MISMATCH: see classification"
    )
    return result.finalize(quick=quick, seed=seed)
