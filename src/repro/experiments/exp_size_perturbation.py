"""Experiment ``sizepert`` — box-size perturbations keep the worst case.

The paper's first negative result: multiply every box of the worst-case
profile by an i.i.d. factor ``X_i`` drawn from any distribution on
``[0, t]`` with ``E[X] = Θ(t)`` — the perturbed profile remains worst-case
in expectation.  We run MM-SCAN against the perturbed limit profile across
``n`` and show the mean adaptivity ratio still grows logarithmically,
under both the generous (κ=1) and constant-faithful (κ=b) box semantics,
with the i.i.d.-shuffled contrast alongside.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.library import MM_SCAN
from repro.analysis.adaptivity import RatioSeries, worst_case_ratio
from repro.analysis.smoothing import size_perturbation_trials
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.perturbations import uniform_multipliers

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "sizepert"
TITLE = "Robustness: i.i.d. box-size perturbation does not close the gap"
CLAIM = (
    "Scaling every worst-case box by X_i ~ U[0, t] leaves the profile "
    "worst-case in expectation: the ratio still grows with log n"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    spec = MM_SCAN
    ks = range(3, 6 if quick else 8)
    ns = [4**k for k in ks]
    trials = 8 if quick else 30
    t = 4.0

    rows = []
    means_k1 = []
    means_kb = []
    for n in ns:
        r1 = size_perturbation_trials(
            spec, n, uniform_multipliers(t), trials=trials, rng=seed
        )
        rb = size_perturbation_trials(
            spec, n, uniform_multipliers(t), trials=trials, rng=seed + 1,
            completion_divisor=spec.b,
        )
        means_k1.append(float(r1.mean()))
        means_kb.append(float(rb.mean()))
        rows.append(
            (
                n,
                worst_case_ratio(spec, n),
                float(r1.mean()),
                float(np.std(r1, ddof=1)) if trials > 1 else 0.0,
                float(rb.mean()),
            )
        )
    result.add_table(
        f"mean adaptivity ratio under X ~ U[0, {t:g}] perturbation",
        ["n", "unperturbed worst", "perturbed (κ=1)", "std", "perturbed (κ=b)"],
        rows,
    )

    s1 = RatioSeries(tuple(ns), tuple(means_k1), base=4.0)
    sb = RatioSeries(tuple(ns), tuple(means_kb), base=4.0)
    result.add_table(
        "growth classification",
        ["model", "log-slope", "verdict", "paper"],
        [
            ("κ=1 (generous)", s1.log_slope, s1.verdict, "logarithmic"),
            ("κ=b (faithful)", sb.log_slope, sb.verdict, "logarithmic"),
        ],
    )
    ok = s1.verdict == "logarithmic" and sb.verdict == "logarithmic"
    result.metrics.update(
        {"slope_k1": s1.log_slope, "slope_kb": sb.log_slope, "reproduced": ok}
    )
    result.verdict = (
        "REPRODUCED: perturbed profile remains worst-case (ratio grows ~ log n)"
        if ok
        else "MISMATCH: perturbation flattened the ratio"
    )
    return result.finalize(quick=quick, seed=seed)
