"""Experiment ``xcheck`` — model validity: trace machine vs symbolic model.

The symbolic simulator implements Section 4's simplified caching model;
the square-profile trace machine executes *real block traces* under the
paper's literal box semantics (cache cleared per box, a size-``x`` box
admits ``x`` distinct blocks).  This experiment runs the same workloads
through both:

* synthetic ``(a,b,c)`` traces (whose distinct-block geometry matches
  Definition 2 exactly) on worst-case and constant profiles — box counts
  must track closely;
* the real MM-SCAN / MM-INPLACE kernels — the qualitative separation
  (log-gap vs adaptive) must survive on genuine matrix-multiply traces;
* the DAM I/O law for MM-SCAN: fixed-memory I/Os scale as
  ``N^{3/2}/(sqrt(M)·B)``, doubling cache should cut I/Os by ~sqrt(2).
"""

from __future__ import annotations

from repro.algorithms.library import MM_SCAN
from repro.algorithms.mm import mm_inplace, mm_scan
from repro.algorithms.spec import RegularSpec
from repro.algorithms.traces import synthetic_trace
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.machine.ca_machine import simulate_ca
from repro.machine.dam import simulate_dam
from repro.machine.square_machine import run_trace_on_boxes
from repro.profiles.base import MemoryProfile
from repro.profiles.worst_case import worst_case_profile
from repro.simulation.symbolic import SymbolicSimulator
from repro.util.rng import as_generator

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "xcheck"
TITLE = "Cross-check: symbolic model vs real-trace square machine vs DAM"
CLAIM = (
    "The simplified model's box accounting tracks the literal trace "
    "semantics, and real MM kernels reproduce the gap/adaptive separation"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    ok = True

    # --- synthetic (a,b,c) traces vs symbolic simulator -----------------
    rows = []
    for spec in (MM_SCAN, RegularSpec(8, 4, 0.0, name="(8,4,0)")):
        for k in (3, 4) if quick else (3, 4, 5):
            n = 4**k
            trace = synthetic_trace(spec, n)
            profile = worst_case_profile(spec.a, spec.b, n)
            machine = run_trace_on_boxes(trace, profile)
            sim = SymbolicSimulator(spec, n, model="recursive")
            sym = sim.run(profile)
            agree = (
                machine.completed == sym.completed
                and (
                    machine.boxes_used == 0
                    or abs(machine.boxes_used - sym.boxes_used)
                    <= 0.25 * max(machine.boxes_used, sym.boxes_used)
                )
            )
            ok &= agree
            rows.append(
                (
                    spec.name,
                    n,
                    machine.boxes_used,
                    sym.boxes_used,
                    machine.completed,
                    sym.completed,
                    agree,
                )
            )
    result.add_table(
        "boxes to complete on M_{a,b}(n): trace machine vs symbolic model",
        ["spec", "n", "machine boxes", "symbolic boxes", "machine done",
         "symbolic done", "agree"],
        rows,
    )

    # --- real MM kernels on box streams ---------------------------------
    gen = as_generator(seed)
    dim = 16 if quick else 32
    A, B = gen.random((dim, dim)), gen.random((dim, dim))
    scan_trace = mm_scan(A, B, base_n=2).trace
    inplace_trace = mm_inplace(A, B, base_n=2).trace
    box = 64
    from itertools import repeat

    mm_rows = []
    rec_scan = run_trace_on_boxes(scan_trace, repeat(box))
    rec_inpl = run_trace_on_boxes(inplace_trace, repeat(box))
    mm_rows.append(
        ("constant boxes", box, rec_scan.boxes_used, rec_inpl.boxes_used)
    )
    result.add_table(
        f"real {dim}x{dim} multiply traces on constant box streams",
        ["profile", "box size", "MM-SCAN boxes", "MM-INPLACE boxes"],
        mm_rows,
    )
    both_completed = rec_scan.completed and rec_inpl.completed
    ok &= both_completed

    # --- DAM law: I/Os ~ N^1.5 / sqrt(M) ---------------------------------
    dam_rows = []
    ios = []
    mems = [32, 64, 128]
    for mem in mems:
        r = simulate_dam(scan_trace, mem, policy="lru")
        ios.append(r.io_count)
        dam_rows.append((mem, r.io_count, r.miss_rate))
        # Consistency of the two machines (and of the stack-distance
        # fast path both LRU replays auto-select): the general CA
        # machine on a constant profile long enough to never exhaust
        # must complete with exactly the DAM's I/O count.
        ca = simulate_ca(
            scan_trace, MemoryProfile.constant(mem, len(scan_trace)),
            policy="lru",
        )
        ok &= ca.completed and ca.io_count == r.io_count
    # doubling M should reduce I/Os by about sqrt(2) (within tolerance;
    # small matrices carry sizeable constants)
    shrink1 = ios[0] / ios[1]
    shrink2 = ios[1] / ios[2]
    dam_ok = 1.1 < shrink1 < 2.2 and 1.05 < shrink2 < 2.2
    ok &= dam_ok
    result.add_table(
        "DAM I/Os of the real MM-SCAN trace (expect ~1/sqrt(M) scaling)",
        ["cache blocks", "I/Os", "miss rate"],
        dam_rows,
    )

    result.metrics.update(
        {
            "dam_shrink_M_x2": shrink1,
            "dam_shrink_M_x4_over_x2": shrink2,
            "reproduced": ok,
        }
    )
    result.verdict = (
        "REPRODUCED: models agree within tolerance; real traces behave as "
        "the theory predicts"
        if ok
        else "MISMATCH: see tables"
    )
    return result.finalize(quick=quick, seed=seed)
