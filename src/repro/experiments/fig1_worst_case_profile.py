"""Experiment ``fig1`` — reproduce Figure 1: the bad profile for MM-SCAN.

Figure 1 of the paper depicts the recursively constructed worst-case
profile ``M_{8,4}(n)``: eight bad sub-profiles for size ``n/4`` followed
by one box of size ``n`` aligned with the final merging scan.  This
experiment rebuilds the profile, verifies its defining invariants (box
census per level, total time, total potential = ``(log_4 n + 1)·n^{3/2}``),
verifies by simulation that it completes MM-SCAN exactly at its last box,
and renders the profile's shape as a terminal sparkline.
"""

from __future__ import annotations

from repro.algorithms.library import MM_SCAN
from repro.experiments.common import ExperimentResult, RunArtifact
from repro.profiles.worst_case import (
    worst_case_box_count,
    worst_case_potential,
    worst_case_profile,
    worst_case_total_time,
)
from repro.simulation.symbolic import SymbolicSimulator
from repro.util.intmath import ilog

__all__ = ["EXPERIMENT_ID", "TITLE", "CLAIM", "run"]

EXPERIMENT_ID = "fig1"
TITLE = "Figure 1: the recursive worst-case profile M_{8,4}(n) for MM-SCAN"
CLAIM = (
    "M(n) = 8 copies of M(n/4) followed by one box of size n; it completes "
    "MM-SCAN exactly, with total potential (log_4 n + 1) * n^1.5"
)


def run(quick: bool = True, seed: int = 0) -> RunArtifact:
    result = ExperimentResult(EXPERIMENT_ID, TITLE, CLAIM)
    spec = MM_SCAN
    ns = [4**k for k in range(2, 6 if quick else 8)]

    rows = []
    exact_completions = 0
    for n in ns:
        profile = worst_case_profile(spec.a, spec.b, n, spec.base_size)
        depth = ilog(n, spec.b)
        sim = SymbolicSimulator(spec, n)
        rec = sim.run(profile)
        exact = rec.completed and rec.boxes_used == len(profile)
        exact_completions += int(exact)
        potential = worst_case_potential(spec.a, spec.b, n)
        rows.append(
            (
                n,
                len(profile),
                worst_case_box_count(spec.a, spec.b, n),
                profile.total_time,
                worst_case_total_time(spec.a, spec.b, n),
                potential / n**1.5,
                depth + 1,
                exact,
            )
        )
    result.add_table(
        "M_{8,4}(n) structure and exact completion of MM-SCAN",
        [
            "n",
            "boxes",
            "boxes(closed form)",
            "duration",
            "duration(closed form)",
            "potential/n^1.5",
            "log_4(n)+1",
            "completes exactly",
        ],
        rows,
    )

    # Per-level box census for the largest profile: a^(D-k) boxes of size
    # b^k at level k — the recursive structure of the figure.
    n = ns[-1]
    profile = worst_case_profile(spec.a, spec.b, n, spec.base_size)
    census = profile.size_census()
    depth = ilog(n, spec.b)
    census_rows = [
        (size, count, spec.a ** (depth - ilog(size, spec.b)))
        for size, count in sorted(census.items())
    ]
    result.add_table(
        f"box census of M_{{8,4}}({n}) (level k: a^(D-k) boxes of size b^k)",
        ["box size", "count", "expected a^(D-k)"],
        census_rows,
    )

    small = worst_case_profile(spec.a, spec.b, 4**3, spec.base_size)
    result.notes = (
        "profile shape (box sizes along time), M_{8,4}(64):\n  "
        + small.sparkline(width=72)
    )
    result.metrics["profiles_checked"] = len(ns)
    result.metrics["exact_completions"] = exact_completions
    ok = exact_completions == len(ns) and all(r[1] == r[2] and r[3] == r[4] for r in rows)
    result.verdict = (
        "REPRODUCED: construction matches the closed forms and completes "
        "MM-SCAN exactly at its final box"
        if ok
        else "MISMATCH: see table"
    )
    result.metrics["reproduced"] = ok
    return result.finalize(quick=quick, seed=seed)
