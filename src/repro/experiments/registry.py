"""Experiment registry: every claim of the paper, runnable by id.

``EXPERIMENTS`` maps ids to modules exposing
``run(quick=True, seed=0) -> RunArtifact``.  The registry itself is pure
dispatch; timing, instrumentation, and parallel execution live in
:mod:`repro.runtime.runner`, which the CLI (``python -m repro``), the
benchmark suite, and :func:`run_all` all share.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    exp_ablation,
    exp_degenerate_smoothing,
    exp_eq8_product,
    exp_explicit_adaptivity,
    exp_gap_theorem2,
    exp_iid_theorem1,
    exp_mm_completion,
    exp_nocatchup_lemma2,
    exp_order_perturbation,
    exp_potential_lemma1,
    exp_randomized_algorithm,
    exp_realistic_profiles,
    exp_recurrence_lemma3,
    exp_regime_sweep,
    exp_scan_hiding,
    exp_shift_perturbation,
    exp_shuffle_closes_gap,
    exp_size_perturbation,
    exp_trace_crosscheck,
    fig1_worst_case_profile,
)
from repro.runtime.artifact import RunArtifact

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "run_all"]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    claim: str
    runner: Callable[..., RunArtifact]


def _register(module: ModuleType) -> Experiment:
    return Experiment(
        experiment_id=module.EXPERIMENT_ID,
        title=module.TITLE,
        claim=module.CLAIM,
        runner=module.run,
    )


_MODULES = [
    fig1_worst_case_profile,
    exp_gap_theorem2,
    exp_mm_completion,
    exp_iid_theorem1,
    exp_recurrence_lemma3,
    exp_eq8_product,
    exp_size_perturbation,
    exp_shift_perturbation,
    exp_order_perturbation,
    exp_shuffle_closes_gap,
    exp_potential_lemma1,
    exp_nocatchup_lemma2,
    exp_regime_sweep,
    exp_scan_hiding,
    exp_trace_crosscheck,
    exp_randomized_algorithm,
    exp_degenerate_smoothing,
    exp_ablation,
    exp_realistic_profiles,
    exp_explicit_adaptivity,
]

EXPERIMENTS: dict[str, Experiment] = {
    mod.EXPERIMENT_ID: _register(mod) for mod in _MODULES
}


def run_experiment(
    experiment_id: str, quick: bool = True, seed: int = 0
) -> RunArtifact:
    """Run one experiment by id (plain dispatch, no instrumentation).

    Prefer :func:`repro.runtime.run_one` when timings and counters
    matter; this entry point exists for callers that only need the
    artifact's tables/metrics/verdict.
    """
    try:
        exp = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return exp.runner(quick=quick, seed=seed)


def run_all(
    quick: bool = True, seed: int = 0, jobs: int = 1
) -> dict[str, RunArtifact]:
    """Run the whole registry (in registration order) through the runtime
    runner; ``jobs > 1`` fans experiments over a process pool with
    bit-identical results at any worker count."""
    from repro.runtime.runner import ExperimentRunner

    runner = ExperimentRunner(jobs=jobs)
    return {
        artifact.experiment_id: artifact
        for artifact in runner.run_iter(quick=quick, seed=seed)
    }
