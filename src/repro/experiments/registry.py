"""Experiment registry: every claim of the paper, runnable by id.

``EXPERIMENTS`` maps ids to modules exposing
``run(quick=True, seed=0) -> RunArtifact``.  The registry itself is pure
dispatch; timing, instrumentation, parallel execution, and caching live
in :mod:`repro.runtime.runner`, which the CLI (``python -m repro``), the
benchmark suite, and the :mod:`repro.api` façade all share.  The old
``run_experiment``/``run_all`` entry points here are deprecated shims
for :func:`repro.api.run` / :func:`repro.api.run_all`.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Callable

from repro.experiments import (
    exp_ablation,
    exp_degenerate_smoothing,
    exp_eq8_product,
    exp_explicit_adaptivity,
    exp_gap_theorem2,
    exp_iid_theorem1,
    exp_mm_completion,
    exp_nocatchup_lemma2,
    exp_order_perturbation,
    exp_potential_lemma1,
    exp_randomized_algorithm,
    exp_realistic_profiles,
    exp_recurrence_lemma3,
    exp_regime_sweep,
    exp_scan_hiding,
    exp_shift_perturbation,
    exp_shuffle_closes_gap,
    exp_size_perturbation,
    exp_trace_crosscheck,
    fig1_worst_case_profile,
)
from repro.runtime.artifact import RunArtifact

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "run_all"]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    claim: str
    runner: Callable[..., RunArtifact]


def _register(module: ModuleType) -> Experiment:
    return Experiment(
        experiment_id=module.EXPERIMENT_ID,
        title=module.TITLE,
        claim=module.CLAIM,
        runner=module.run,
    )


_MODULES = [
    fig1_worst_case_profile,
    exp_gap_theorem2,
    exp_mm_completion,
    exp_iid_theorem1,
    exp_recurrence_lemma3,
    exp_eq8_product,
    exp_size_perturbation,
    exp_shift_perturbation,
    exp_order_perturbation,
    exp_shuffle_closes_gap,
    exp_potential_lemma1,
    exp_nocatchup_lemma2,
    exp_regime_sweep,
    exp_scan_hiding,
    exp_trace_crosscheck,
    exp_randomized_algorithm,
    exp_degenerate_smoothing,
    exp_ablation,
    exp_realistic_profiles,
    exp_explicit_adaptivity,
]

EXPERIMENTS: dict[str, Experiment] = {
    mod.EXPERIMENT_ID: _register(mod) for mod in _MODULES
}


def _deprecated_run_experiment(
    experiment_id: str, quick: bool = True, seed: int = 0
) -> RunArtifact:
    """Deprecated alias for :func:`repro.api.run` (kept importable so old
    call sites keep working).  Routes through the canonical v2
    :class:`repro.api.RunRequest` path, uncached (``cache="off"``) to
    preserve the original plain-dispatch semantics."""
    from repro.api import RunRequest, execute

    return execute(
        RunRequest(
            experiment_id=experiment_id, quick=quick, seed=seed, cache="off"
        )
    ).artifact


def _deprecated_run_all(
    quick: bool = True, seed: int = 0, jobs: int = 1
) -> dict[str, RunArtifact]:
    """Deprecated alias for :func:`repro.api.run_all` (uncached; the
    façade stamps each experiment into its own v2 ``RunRequest``)."""
    from repro.api import run_all

    return run_all(quick=quick, seed=seed, jobs=jobs, cache="off")


_DEPRECATED = {
    "run_experiment": (
        _deprecated_run_experiment,
        "repro.api.run (or repro.api.execute with a repro.api.RunRequest "
        "for the typed v2 response)",
    ),
    "run_all": (
        _deprecated_run_all,
        "repro.api.run_all (each experiment becomes one "
        "repro.api.RunRequest; see docs/API.md)",
    ),
}


def __getattr__(name: str):
    """PEP 562 shims: the registry's execution entry points moved to the
    :mod:`repro.api` façade (API v2: one ``RunRequest`` per run);
    importing them from here still works but warns with the v2
    replacement spelled out."""
    if name in _DEPRECATED:
        import warnings

        func, replacement = _DEPRECATED[name]
        warnings.warn(
            f"repro.experiments.registry.{name} is deprecated; "
            f"use {replacement} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return func
    raise AttributeError(
        f"module 'repro.experiments.registry' has no attribute {name!r}"
    )
