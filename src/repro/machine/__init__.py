"""Trace-level machine simulators: the classic DAM (fixed memory), the
square-profile machine (the paper's box semantics made literal), and the
general per-I/O cache-adaptive machine, with LRU/FIFO/OPT replacement.

LRU replays take a vectorized Mattson stack-distance fast path
(:mod:`repro.machine.fastpath`), auto-selected where provably exact and
bit-identical to the scalar machines."""

from repro.machine.ca_machine import CAResult, simulate_ca
from repro.machine.dam import DAMResult, simulate_dam
from repro.machine.fastpath import (
    COLD,
    eval_lru_fixed,
    eval_lru_profile,
    lru_thresholds,
    stack_distances,
    trace_distances,
)
from repro.machine.replacement import (
    FIFO,
    LRU,
    OPT,
    ReplacementPolicy,
    make_policy,
    next_occurrences,
)
from repro.machine.square_machine import (
    SquareRunRecord,
    last_occurrence,
    run_trace_on_boxes,
)

__all__ = [
    "CAResult",
    "simulate_ca",
    "DAMResult",
    "simulate_dam",
    "COLD",
    "stack_distances",
    "trace_distances",
    "lru_thresholds",
    "eval_lru_profile",
    "eval_lru_fixed",
    "FIFO",
    "LRU",
    "OPT",
    "ReplacementPolicy",
    "make_policy",
    "next_occurrences",
    "SquareRunRecord",
    "last_occurrence",
    "run_trace_on_boxes",
]
