"""Trace-level machine simulators: the classic DAM (fixed memory), the
square-profile machine (the paper's box semantics made literal), and the
general per-I/O cache-adaptive machine, with LRU/FIFO/OPT replacement."""

from repro.machine.ca_machine import CAResult, simulate_ca
from repro.machine.dam import DAMResult, simulate_dam
from repro.machine.replacement import (
    FIFO,
    LRU,
    OPT,
    ReplacementPolicy,
    make_policy,
    next_occurrences,
)
from repro.machine.square_machine import (
    SquareRunRecord,
    last_occurrence,
    run_trace_on_boxes,
)

__all__ = [
    "CAResult",
    "simulate_ca",
    "DAMResult",
    "simulate_dam",
    "FIFO",
    "LRU",
    "OPT",
    "ReplacementPolicy",
    "make_policy",
    "next_occurrences",
    "SquareRunRecord",
    "last_occurrence",
    "run_trace_on_boxes",
]
