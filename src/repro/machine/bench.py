"""Scalar-vs-kernel trace-machine benchmark: the ``BENCH_machine.json``
producer.

``repro bench --suite machine`` measures what the stack-distance fast
path (:mod:`repro.machine.fastpath`) buys on the trace-replay shapes the
experiments actually run, and proves the speedup legitimate by asserting
bit-identical results in the same breath.  Each workload opposes the two
ends of the pipeline the fast path optimizes:

* the **scalar side** builds its trace cold (bypassing the
  :func:`~repro.algorithms.traces.synthetic_trace` memo) and replays it
  reference-by-reference through the dict-based policy machines with
  ``fastpath=False`` — the pre-fast-path cost of a profile sweep;
* the **kernel side** takes the memoized trace, pays the Mattson
  stack-distance pass once, and evaluates every profile as vectorized
  work over the shared array with ``fastpath=True``.

Workloads:

* **multiprofile-lru-crosscheck** — the ``exp_trace_crosscheck`` shape:
  one MM-SCAN trace swept by a ladder of constant-capacity LRU profiles
  (every capacity is answered by the same distance array).
* **realistic-squarified** — the ``exp_realistic_profiles`` shape: the
  same trace under squarified winner-take-all and random-walk profiles
  expanded to per-I/O steps (time-varying thresholds, run-length
  evaluated).
* **dam-capacity-sweep** — the DAM I/O law sweep: fixed-memory LRU
  replays across a capacity ladder, ``io = #{i : d_i > M}`` per rung.

The payload mirrors ``BENCH_sim.json`` (schema-versioned, environment
tagged, per-workload ``bit_identical``) and feeds the same history
machinery (:mod:`repro.cache.history`), so ``--history`` gives the trace
machine a longitudinal trend line and the ≥2-priors regression check.
The top-level ``speedup`` is the *minimum* across workloads.
"""

# repro-lint: disable-file=nondet-wallclock -- a benchmark measures wall
# time by design; timings are reported as evidence, never cached or
# digested.

from __future__ import annotations

import time
from typing import Any

import numpy as np

__all__ = [
    "MACHINE_BENCH_SCHEMA_VERSION",
    "MACHINE_BENCHMARK_NAME",
    "run_machine_bench",
]

MACHINE_BENCH_SCHEMA_VERSION = 1
MACHINE_BENCHMARK_NAME = "machine-scalar-vs-kernel"


def _capacity_ladder(n: int) -> list[int]:
    """Capacities 4, 6, 8, 12, 16, 24, ... up to ``n`` (powers of two
    and their midpoints — the denser the ladder, the more the one-time
    stack-distance pass is amortized, which is the sweep shape the fast
    path exists for)."""
    ladder = []
    m = 4
    while m <= n:
        ladder.append(m)
        if 3 * m // 2 <= n:
            ladder.append(3 * m // 2)
        m *= 2
    return ladder


def _bench_multiprofile(quick: bool, spec: Any, n: int) -> dict[str, Any]:
    """Constant-capacity LRU profile ladder over one MM-SCAN trace."""
    from repro.algorithms.traces import synthetic_trace
    from repro.machine.ca_machine import simulate_ca
    from repro.profiles.base import MemoryProfile

    trace_warm = synthetic_trace(spec, n)  # prime the trace memo
    profiles = [
        MemoryProfile.constant(m, len(trace_warm))
        for m in _capacity_ladder(n)
    ]

    build_cold = synthetic_trace.__wrapped__  # type: ignore[attr-defined]
    start = time.perf_counter()
    trace_cold = build_cold(spec, n)
    scalar = [
        simulate_ca(trace_cold, p, policy="lru", fastpath=False)
        for p in profiles
    ]
    scalar_wall = time.perf_counter() - start

    start = time.perf_counter()
    trace = synthetic_trace(spec, n)
    kernel = [
        simulate_ca(trace, p, policy="lru", fastpath=True) for p in profiles
    ]
    kernel_wall = time.perf_counter() - start

    return {
        "name": "multiprofile-lru-crosscheck",
        "spec": repr(spec),
        "n": n,
        "references": len(trace),
        "profiles": len(profiles),
        "scalar_wall_time_s": scalar_wall,
        "chunked_wall_time_s": kernel_wall,
        "speedup": (scalar_wall / kernel_wall) if kernel_wall > 0 else None,
        "bit_identical": scalar == kernel,
    }


def _bench_realistic(quick: bool, spec: Any, n: int, seed: int) -> dict[str, Any]:
    """Squarified realistic profiles expanded to per-I/O steps."""
    from repro.algorithms.traces import synthetic_trace
    from repro.machine.ca_machine import simulate_ca
    from repro.profiles.base import MemoryProfile
    from repro.profiles.generators import (
        random_walk_profile,
        winner_take_all_profile,
    )
    from repro.profiles.reduction import squarify

    trace_warm = synthetic_trace(spec, n)
    refs = len(trace_warm)

    def expand(boxes: Any) -> MemoryProfile:
        steps = np.repeat(boxes.boxes, boxes.boxes)
        reps = -(-refs // int(steps.size))
        return MemoryProfile(np.tile(steps, reps))

    profiles = [
        expand(
            squarify(
                winner_take_all_profile(
                    max_size=n, flush_floor=max(2, n // 64), cycles=16
                )
            )
        ),
        expand(
            squarify(
                random_walk_profile(
                    start=max(4, n // 8),
                    steps=10 * n,
                    min_size=2,
                    max_size=n,
                    up_probability=0.55,
                    crash_probability=0.003,
                    crash_factor=0.25,
                    rng=seed,
                )
            )
        ),
    ]

    build_cold = synthetic_trace.__wrapped__  # type: ignore[attr-defined]
    start = time.perf_counter()
    trace_cold = build_cold(spec, n)
    scalar = [
        simulate_ca(trace_cold, p, policy="lru", fastpath=False)
        for p in profiles
    ]
    scalar_wall = time.perf_counter() - start

    start = time.perf_counter()
    trace = synthetic_trace(spec, n)
    kernel = [
        simulate_ca(trace, p, policy="lru", fastpath=True) for p in profiles
    ]
    kernel_wall = time.perf_counter() - start

    return {
        "name": "realistic-squarified",
        "spec": repr(spec),
        "n": n,
        "references": refs,
        "profiles": len(profiles),
        "scalar_wall_time_s": scalar_wall,
        "chunked_wall_time_s": kernel_wall,
        "speedup": (scalar_wall / kernel_wall) if kernel_wall > 0 else None,
        "bit_identical": scalar == kernel,
    }


def _bench_dam(quick: bool, spec: Any, n: int) -> dict[str, Any]:
    """Fixed-memory LRU capacity ladder (the DAM I/O-law sweep)."""
    from repro.algorithms.traces import synthetic_trace
    from repro.machine.dam import simulate_dam

    trace_warm = synthetic_trace(spec, n)
    ladder = _capacity_ladder(2 * n)

    build_cold = synthetic_trace.__wrapped__  # type: ignore[attr-defined]
    start = time.perf_counter()
    trace_cold = build_cold(spec, n)
    scalar = [
        simulate_dam(trace_cold, m, policy="lru", fastpath=False)
        for m in ladder
    ]
    scalar_wall = time.perf_counter() - start

    start = time.perf_counter()
    trace = synthetic_trace(spec, n)
    kernel = [
        simulate_dam(trace, m, policy="lru", fastpath=True) for m in ladder
    ]
    kernel_wall = time.perf_counter() - start

    return {
        "name": "dam-capacity-sweep",
        "spec": repr(spec),
        "n": n,
        "references": len(trace_warm),
        "capacities": len(ladder),
        "scalar_wall_time_s": scalar_wall,
        "chunked_wall_time_s": kernel_wall,
        "speedup": (scalar_wall / kernel_wall) if kernel_wall > 0 else None,
        "bit_identical": scalar == kernel,
    }


def run_machine_bench(quick: bool = True, seed: int = 0) -> dict[str, Any]:
    """Run all workloads and return the BENCH_machine payload.

    ``quick`` picks CI-sized traces (a few seconds of scalar time);
    ``--full`` is the acceptance configuration the speedup claims in
    ``docs/PERF.md`` are quoted from.  ``seed`` keys the random-walk
    profile (recorded for provenance); the bit-identity verdicts never
    depend on it.
    """
    from repro.algorithms.library import MM_SCAN
    from repro.cache.store import environment_tag
    from repro.machine.fastpath import distance_cache_clear
    from repro.runtime.provenance import git_revision, repro_version

    # Start from a cold distance cache so the kernel pass is timed, not
    # inherited from earlier callers in the same process.
    distance_cache_clear()
    spec = MM_SCAN
    n = 4**4 if quick else 4**5
    workloads = [
        _bench_multiprofile(quick, spec, n),
        _bench_realistic(quick, spec, n, seed),
        _bench_dam(quick, spec, n),
    ]
    speedups = [
        w["speedup"] for w in workloads if isinstance(w["speedup"], float)
    ]
    return {
        "bench_schema_version": MACHINE_BENCH_SCHEMA_VERSION,
        "benchmark": MACHINE_BENCHMARK_NAME,
        "quick": quick,
        "seed": seed,
        "workloads": workloads,
        "scalar_wall_time_s": sum(w["scalar_wall_time_s"] for w in workloads),
        "chunked_wall_time_s": sum(
            w["chunked_wall_time_s"] for w in workloads
        ),
        "speedup": min(speedups) if speedups else None,
        "bit_identical": all(w["bit_identical"] for w in workloads),
        "environment": environment_tag(),
        "repro_version": repro_version(),
        "git_revision": git_revision(),
    }
