"""General cache-adaptive machine: per-I/O memory profile, any policy.

The cache-adaptive model proper [6]: the memory profile ``m(t)`` gives the
cache capacity (in blocks) after the ``t``-th I/O; hits are free, each
miss costs one I/O and advances the clock, and when the capacity drops the
policy evicts down to the new limit.  Unlike the square machine, nothing
is cleared at boundaries — this is the realistic execution against which
the square-profile convention is validated (prior work proves the two
agree up to constant-factor resource augmentation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError
from repro.algorithms.traces import Trace
from repro.machine.replacement import make_policy
from repro.profiles.base import MemoryProfile

__all__ = ["CAResult", "simulate_ca"]


@dataclass(frozen=True)
class CAResult:
    """Outcome of a cache-adaptive machine run."""

    io_count: int
    references_completed: int
    references: int
    completed: bool
    policy: str

    @property
    def miss_rate(self) -> float:
        return self.io_count / self.references_completed if self.references_completed else 0.0


def simulate_ca(
    trace: Trace,
    profile: MemoryProfile,
    policy: str = "lru",
    fastpath: bool | None = None,
) -> CAResult:
    """Replay ``trace`` under the time-varying capacity ``profile``.

    The run stops when the trace completes or the profile is exhausted
    (``completed`` records which).  The capacity before the first I/O is
    ``profile[0]``; after the t-th I/O it is ``profile[t]``.

    ``fastpath`` follows the PR 5 contract: ``None`` (default)
    auto-selects the vectorized stack-distance evaluator
    (:mod:`repro.machine.fastpath`) exactly where it is provably exact —
    LRU, the only stack policy here — and silently keeps the scalar
    replay otherwise (FIFO/OPT).  ``True`` forces the fast path (raising
    :class:`~repro.errors.MachineError` when no exact kernel exists for
    ``policy``), ``False`` forces the scalar replay.  Either way the
    result is bit-identical.
    """
    if len(profile) == 0:
        raise MachineError("profile must have at least one step")
    blocks = trace.blocks
    sizes = profile.sizes
    # Validate up front: a zero/negative capacity step would make the
    # evict-down loop below pop from an already-empty policy (KeyError
    # deep inside the replay) instead of failing clearly.  MemoryProfile
    # enforces this too, but hand-built or corrupted profiles must not
    # bypass it.
    if int(sizes.min()) < 1:
        raise MachineError(
            f"profile sizes must be >= 1 block, got min {int(sizes.min())}"
        )
    from repro.machine import fastpath as _fp

    if fastpath is None:
        use_fast = _fp.is_exact(policy)
    elif fastpath:
        if not _fp.is_exact(policy):
            raise MachineError(
                f"no exact fast path for policy {policy!r} "
                "(only 'lru' is a recency-stack policy); "
                "pass fastpath=None to fall back to the scalar machine"
            )
        use_fast = True
    else:
        use_fast = False
    if use_fast:
        dist = _fp.trace_distances(trace)
        io_count, refs_done, completed = _fp.eval_lru_profile(dist, sizes)
        return CAResult(
            io_count=io_count,
            references_completed=refs_done,
            references=int(blocks.size),
            completed=completed,
            policy=policy,
        )
    pol = make_policy(policy, blocks)
    t_io = 0  # number of I/Os performed so far
    capacity = int(sizes[0])
    refs_done = 0
    for i in range(blocks.size):
        b = int(blocks[i])
        if pol.access(b, i):
            refs_done += 1
            continue
        # Miss: costs one I/O; check profile budget first.
        if t_io >= sizes.size:
            break
        # Evict down to capacity-1 so the incoming block fits.
        while pol.resident() >= capacity:
            pol.evict_one()
        pol.admit(b, i)
        t_io += 1
        refs_done += 1
        # The profile gives the capacity after the t-th I/O; a shrink is
        # enforced immediately (blocks beyond the new capacity are gone
        # even if the next references would have hit them).
        if t_io < sizes.size:
            capacity = int(sizes[t_io])
            while pol.resident() > capacity:
                pol.evict_one()
    completed = refs_done == blocks.size
    return CAResult(
        io_count=t_io,
        references_completed=refs_done,
        references=int(blocks.size),
        completed=completed,
        policy=policy,
    )
