"""Classic disk-access-machine (DAM) simulator: fixed cache size.

The DAM [Aggarwal–Vitter] is the base model the cache-adaptive model
generalizes: a cache of ``M`` blocks, unit cost per block transfer, zero
cost for cache hits.  This simulator replays a block trace under a chosen
replacement policy and reports the I/O count — used to validate the real
kernels' I/O complexity (e.g. MM-SCAN's ``O(N^{3/2} / (sqrt(M) B))``) and
as the fixed-memory baseline for cache-adaptive comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError
from repro.algorithms.traces import Trace
from repro.machine.replacement import make_policy

__all__ = ["DAMResult", "simulate_dam"]


@dataclass(frozen=True)
class DAMResult:
    """Outcome of a fixed-memory DAM run."""

    io_count: int
    references: int
    cache_size: int
    policy: str

    @property
    def miss_rate(self) -> float:
        return self.io_count / self.references if self.references else 0.0


def simulate_dam(
    trace: Trace,
    cache_size: int,
    policy: str = "lru",
    fastpath: bool | None = None,
) -> DAMResult:
    """Replay ``trace`` with a fixed cache of ``cache_size`` blocks.

    Every cold or capacity miss costs one I/O.  Policies: ``lru``,
    ``fifo``, ``opt`` (Belady, offline).

    ``fastpath`` follows the PR 5 contract (see
    :func:`repro.machine.ca_machine.simulate_ca`): ``None`` auto-selects
    the Mattson stack-distance kernel for LRU — a fixed capacity is the
    textbook case, ``io_count = #{i : d[i] > M}`` — and silently keeps
    the scalar replay for FIFO/OPT; ``True``/``False`` force.
    """
    if cache_size < 1:
        raise MachineError(f"cache_size must be >= 1, got {cache_size}")
    blocks = trace.blocks
    from repro.machine import fastpath as _fp

    if fastpath is None:
        use_fast = _fp.is_exact(policy)
    elif fastpath:
        if not _fp.is_exact(policy):
            raise MachineError(
                f"no exact fast path for policy {policy!r} "
                "(only 'lru' is a recency-stack policy); "
                "pass fastpath=None to fall back to the scalar machine"
            )
        use_fast = True
    else:
        use_fast = False
    if use_fast:
        dist = _fp.trace_distances(trace)
        return DAMResult(
            io_count=_fp.eval_lru_fixed(dist, cache_size),
            references=int(blocks.size),
            cache_size=cache_size,
            policy=policy,
        )
    pol = make_policy(policy, blocks)
    misses = 0
    for t in range(blocks.size):
        b = int(blocks[t])
        if not pol.access(b, t):
            misses += 1
            if pol.resident() >= cache_size:
                pol.evict_one()
            pol.admit(b, t)
    return DAMResult(
        io_count=misses,
        references=int(blocks.size),
        cache_size=cache_size,
        policy=policy,
    )
