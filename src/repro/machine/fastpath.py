"""Vectorized fast path for the trace-level machines: Mattson stack
distances plus an exact LRU profile evaluator.

The scalar machines (:mod:`repro.machine.ca_machine`,
:mod:`repro.machine.dam`) replay every memory reference through a Python
loop over dict-based policy objects.  For LRU — a *stack algorithm* in
Mattson's sense — the whole replay collapses into one trace-level
preprocessing pass plus O(n) vectorized work per profile:

1.  **Stack distances.**  ``d[i]`` is the number of distinct blocks
    touched since the previous reference to ``blocks[i]`` (inclusive of
    the block itself), or :data:`COLD` for a first touch.  Under LRU
    with a *fixed* capacity ``M``, reference ``i`` hits iff ``d[i] <=
    M`` — one array answers every capacity at once.  The kernel here is
    an O(n log^2 n) fully vectorized mergesort-tree range count over the
    ``last_occurrence`` array (no Python-level per-access loop), and the
    array is cached per trace, so sweeping many profiles over one trace
    amortizes the pass.

2.  **Time-varying capacities.**  The cache-adaptive machine changes
    capacity per I/O, yet LRU keeps an exact invariant: after ``t`` paid
    I/Os the resident set is always the ``r_t`` most-recently-used
    distinct blocks, where ``r_t`` depends on the *profile only*::

        r_0 = 0,   r_t = min(r_{t-1} + 1, m(t-1), m(t))

    (one admission per I/O, evict-down before the admission at capacity
    ``m(t-1)``, evict-down after it at capacity ``m(t)``).  Hits do not
    change the resident set, so reference ``i`` hits iff ``d[i] <=
    r_t`` for the current I/O count ``t`` — hit/miss per reference never
    depends on which references before it hit.  The recurrence has the
    closed form ``r_t = min(m(t), t, t - 1 + min_{s<t}(m(s) - s))``,
    computed for the whole profile with one ``np.minimum.accumulate``.
    The evaluator then walks the run-length encoding of the threshold
    sequence, consuming misses (``d > r``) in geometrically growing
    vectorized scans, and reproduces ``io_count`` /
    ``references_completed`` / ``completed`` bit-identically to the
    scalar machine.

FIFO and OPT are **not** stack algorithms in this sense (FIFO lacks the
inclusion property; OPT's stack ordering is not recency), so they have
no exact kernel here and callers fall back to the scalar machines —
:func:`repro.machine.ca_machine.simulate_ca` auto-selects per the PR 5
fastpath contract (exactness proven, silence otherwise).
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.machine.square_machine import last_occurrence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.algorithms.traces import Trace

__all__ = [
    "COLD",
    "stack_distances",
    "trace_distances",
    "distance_cache_size",
    "distance_cache_clear",
    "lru_thresholds",
    "eval_lru_profile",
    "eval_lru_fixed",
    "is_exact",
]

#: Stack distance reported for a cold (first) reference to a block.  A
#: sentinel strictly larger than any possible capacity — ``n + 1`` would
#: be wrong because a DAM cache may be larger than the trace's footprint.
COLD: int = int(np.iinfo(np.int64).max)

# Initial / maximum window for the evaluator's forward miss scans.  Small
# enough that a dense-miss region costs little more than the numpy call
# overhead per miss; growth is geometric so sparse-miss regions still
# finish in O(n) total scanned elements.
_SCAN_WINDOW0 = 1 << 6
_SCAN_WINDOW_MAX = 1 << 17


def stack_distances(blocks: np.ndarray) -> np.ndarray:
    """Per-reference LRU stack distances of a block trace.

    ``out[i]`` is the number of distinct blocks in
    ``blocks[last_occ[i] : i]`` (the reuse window, inclusive of the block
    itself) when ``blocks[i]`` was seen before, else :data:`COLD`.

    Distinct blocks in the window are exactly the positions ``j`` in
    ``[p, i)`` whose own previous occurrence lies before ``p = last_occ
    [i]`` — a 2-D dominance count answered level by level on an implicit
    mergesort tree over ``last_occ``: each query decomposes into
    canonical nodes, and at every level all active node counts are
    answered with a single batched ``searchsorted`` over the
    concatenation of the level's sorted segments.  O(n log^2 n) time,
    O(n) extra memory, no Python-level per-access loop.
    """
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    n = int(blocks.size)
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    last = last_occurrence(blocks)
    queries = np.flatnonzero(last >= 0)
    if queries.size == 0:
        return out
    # Query q: count entries < thresh[q] in last[lo[q] : hi[q]).
    lo = last[queries].copy()
    hi = queries.copy()
    thresh = last[queries] + 1  # searchsorted 'left' on value t counts < t
    acc = np.zeros(queries.size, dtype=np.int64)

    # Pad to a power of two so every level is a clean reshape.  The pad
    # value n is >= every threshold (thresholds are <= n - 1 + 1 = n...
    # strictly: thresh <= n - 1, compared via mapped key below), so pads
    # are never counted.
    size_pow2 = 1 << (n - 1).bit_length()
    level = np.full(size_pow2, n, dtype=np.int64)
    level[:n] = last
    # Per-level flattening: block k's values v (in [-1, n]) map to
    # k * offset + (v + 1), keeping the concatenation of sorted blocks
    # globally sorted with disjoint per-block ranges.
    offset = np.int64(n + 2)

    seg = 1
    while seg <= size_pow2:
        active = lo < hi
        if not active.any():
            break
        sorted_level = np.sort(level.reshape(-1, seg), axis=1)
        flat = (
            np.arange(sorted_level.shape[0], dtype=np.int64)[:, None] * offset
            + sorted_level
            + 1
        ).ravel()
        # Canonical decomposition step (bottom-up segment tree): an odd
        # lo node and/or an odd-adjacent hi node belong to the query.
        take_lo = active & ((lo & 1) == 1)
        if take_lo.any():
            ks = lo[take_lo]
            pos = np.searchsorted(flat, ks * offset + thresh[take_lo] + 1)
            acc[take_lo] += pos - ks * seg
            lo[take_lo] += 1
        take_hi = active & ((hi & 1) == 1)
        if take_hi.any():
            hi[take_hi] -= 1
            ks = hi[take_hi]
            pos = np.searchsorted(flat, ks * offset + thresh[take_hi] + 1)
            acc[take_hi] += pos - ks * seg
        lo >>= 1
        hi >>= 1
        seg <<= 1
    out[queries] = acc
    return out


# -- per-trace distance cache --------------------------------------------
#
# Traces are immutable but not hashable (ndarray fields), so the cache is
# keyed by id() with a weakref guard: an entry is valid only while its
# weakref still points at the keyed trace, and a finalizer drops the
# entry when the trace is collected (checking liveness so a recycled id
# never evicts a newer entry).

_dist_lock = threading.Lock()
_dist_cache: dict[int, tuple[weakref.ref, np.ndarray]] = {}


def _make_evict(key: int) -> Callable[[weakref.ref], None]:
    def evict(_ref: weakref.ref) -> None:
        with _dist_lock:
            entry = _dist_cache.get(key)
            if entry is not None and entry[0]() is None:
                del _dist_cache[key]

    return evict


def trace_distances(trace: "Trace") -> np.ndarray:
    """Stack distances of ``trace.blocks``, cached per trace object.

    The returned array is read-only and shared: repeated profile
    evaluations over one trace pay the O(n log^2 n) kernel once.
    """
    # id() is only a cache key here, validated by the weakref identity
    # check above reuse — the returned distances are a pure function of
    # the trace, so results never depend on identity.
    key = id(trace)  # repro-lint: disable=nondet-id
    with _dist_lock:
        entry = _dist_cache.get(key)
        if entry is not None and entry[0]() is trace:
            return entry[1]
    dist = stack_distances(trace.blocks)
    dist.setflags(write=False)
    with _dist_lock:
        # Idempotent memo write (same trace -> same distances).
        _dist_cache[key] = (  # repro-lint: disable=effect-global-mutation
            weakref.ref(trace, _make_evict(key)),
            dist,
        )
    return dist


def distance_cache_size() -> int:
    """Number of live per-trace distance arrays (observability hook)."""
    with _dist_lock:
        return len(_dist_cache)


def distance_cache_clear() -> None:
    """Drop all cached distance arrays (tests / memory pressure)."""
    with _dist_lock:
        # Test-only reset of an idempotent memo.
        _dist_cache.clear()  # repro-lint: disable=effect-global-mutation


# -- LRU evaluators ------------------------------------------------------


def is_exact(policy: str) -> bool:
    """Whether the fast path is provably exact for ``policy``.

    Only LRU: its resident set under any capacity schedule is a recency-
    stack prefix, which is what reduces hit/miss to a stack-distance
    comparison.  FIFO and OPT are not recency-stack algorithms, so they
    take the scalar machines unchanged.
    """
    return policy.lower() == "lru"


def lru_thresholds(sizes: np.ndarray) -> np.ndarray:
    """Resident-set sizes ``r_0 .. r_T`` implied by a capacity profile.

    ``r_t`` is the number of blocks resident immediately before the
    ``(t+1)``-th paid I/O (``t`` of them already paid); the final entry
    ``r_T`` is the resident bound while the profile is exhausted (no
    further I/O is possible, so no capacity constrains it beyond the
    one-admission-per-I/O growth).  Vectorized closed form of
    ``r_t = min(r_{t-1} + 1, m(t-1), m(t))``.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    steps = sizes.size
    thresholds = np.empty(steps + 1, dtype=np.int64)
    thresholds[0] = 0
    if steps == 0:
        return thresholds
    t = np.arange(1, steps + 1, dtype=np.int64)
    # min over s < t of (m(s) - s), prefix-accumulated.
    slack = np.minimum.accumulate(sizes - np.arange(steps, dtype=np.int64))
    thresholds[1:] = np.minimum(t, t - 1 + slack)
    if steps > 1:
        thresholds[1:steps] = np.minimum(thresholds[1:steps], sizes[1:steps])
    return thresholds


def _scan_misses(
    dist: np.ndarray, start: int, threshold: int, want: int
) -> tuple[int, int]:
    """Find up to ``want`` misses (``dist > threshold``) from ``start``.

    Returns ``(found, end)`` where ``end`` is one past the ``want``-th
    miss when all were found, else ``dist.size``.  Windows grow
    geometrically and never rescan, so a full evaluation touches each
    element O(1) times.
    """
    n = dist.size
    pos = start
    need = want
    window = _SCAN_WINDOW0
    while pos < n:
        hi = min(pos + window, n)
        idx = np.flatnonzero(dist[pos:hi] > threshold)
        if idx.size >= need:
            return want, pos + int(idx[need - 1]) + 1
        need -= int(idx.size)
        pos = hi
        window = min(window << 1, _SCAN_WINDOW_MAX)
    return want - need, n


def eval_lru_profile(
    dist: np.ndarray, sizes: np.ndarray
) -> tuple[int, int, bool]:
    """Exact LRU cache-adaptive replay over precomputed stack distances.

    Returns ``(io_count, references_completed, completed)`` bit-identical
    to the scalar :func:`repro.machine.ca_machine.simulate_ca` run with
    ``policy="lru"`` on the same trace and profile.
    """
    n = int(dist.size)
    steps = int(sizes.size)
    if n == 0:
        return 0, 0, True
    thresholds = lru_thresholds(sizes)
    # Run-length encode the threshold sequence: within a run the hit
    # predicate is fixed, so misses can be consumed in bulk.
    change = np.flatnonzero(np.diff(thresholds)) + 1
    run_starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
    run_ends = np.concatenate((change, np.asarray([steps + 1], dtype=np.int64)))
    pos = 0
    for run_start, run_end in zip(run_starts.tolist(), run_ends.tolist()):
        threshold = int(thresholds[run_start])
        # Epochs t in [run_start, min(run_end, steps)) can still pay an
        # I/O; epoch `steps` (present only in the final run) cannot.
        payable = min(run_end, steps) - run_start
        if payable > 0:
            found, pos = _scan_misses(dist, pos, threshold, payable)
            if found < payable:
                # Trace exhausted with profile budget to spare.
                return run_start + found, n, True
        if run_end == steps + 1:
            # Terminal epoch: one more miss would exceed the profile.
            found, end = _scan_misses(dist, pos, threshold, 1)
            if found:
                return steps, end - 1, False
            return steps, n, True
    raise AssertionError("unreachable: terminal epoch handles every exit")


def eval_lru_fixed(dist: np.ndarray, cache_size: int) -> int:
    """Exact LRU DAM miss count: ``#{i : d[i] > M}`` (colds included)."""
    return int(np.count_nonzero(dist > np.int64(cache_size)))
