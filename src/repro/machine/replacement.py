"""Page-replacement policies for the trace machines.

The cache-adaptive model builds on the ideal-cache model, whose optimal
offline policy is Belady's OPT; LRU and FIFO are the classical online
policies (LRU is constant-competitive with resource augmentation, which is
how the ideal-cache assumption is justified in practice).  Policies here
operate on block ids and are driven one access at a time by
:mod:`repro.machine.dam` and :mod:`repro.machine.ca_machine`.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque

import numpy as np

from repro.errors import MachineError

__all__ = ["ReplacementPolicy", "LRU", "FIFO", "OPT", "make_policy", "next_occurrences"]


class ReplacementPolicy:
    """Interface: track resident blocks; choose victims on pressure."""

    name = "abstract"

    def reset(self) -> None:
        """Empty the cache."""
        raise NotImplementedError

    def resident(self) -> int:
        """Number of blocks currently cached."""
        raise NotImplementedError

    def contains(self, block: int) -> bool:
        raise NotImplementedError

    def access(self, block: int, time: int) -> bool:
        """Record an access; returns True on a hit (block resident).
        On a miss the caller is responsible for calling :meth:`admit`
        after making room."""
        raise NotImplementedError

    def admit(self, block: int, time: int) -> None:
        """Insert a block (caller guarantees capacity)."""
        raise NotImplementedError

    def evict_one(self) -> int:
        """Choose and remove one victim; returns its block id."""
        raise NotImplementedError


class LRU(ReplacementPolicy):
    """Least-recently-used, via an ordered dict (most recent at the end)."""

    name = "lru"

    def __init__(self) -> None:
        self._cache: OrderedDict[int, None] = OrderedDict()

    def reset(self) -> None:
        self._cache.clear()

    def resident(self) -> int:
        return len(self._cache)

    def contains(self, block: int) -> bool:
        return block in self._cache

    def access(self, block: int, time: int) -> bool:
        if block in self._cache:
            self._cache.move_to_end(block)
            return True
        return False

    def admit(self, block: int, time: int) -> None:
        self._cache[block] = None

    def evict_one(self) -> int:
        if not self._cache:
            raise MachineError("evict from empty cache")
        block, _ = self._cache.popitem(last=False)
        return block


class FIFO(ReplacementPolicy):
    """First-in-first-out."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: deque[int] = deque()
        self._set: set[int] = set()

    def reset(self) -> None:
        self._queue.clear()
        self._set.clear()

    def resident(self) -> int:
        return len(self._set)

    def contains(self, block: int) -> bool:
        return block in self._set

    def access(self, block: int, time: int) -> bool:
        return block in self._set

    def admit(self, block: int, time: int) -> None:
        self._queue.append(block)
        self._set.add(block)

    def evict_one(self) -> int:
        if not self._queue:
            raise MachineError("evict from empty cache")
        block = self._queue.popleft()
        self._set.discard(block)
        return block


def next_occurrences(blocks: np.ndarray) -> np.ndarray:
    """For each reference index ``i``, the index of the next reference to
    the same block (``len(blocks)`` when none).  O(n)."""
    n = blocks.size
    nxt = np.full(n, n, dtype=np.int64)
    last: dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        b = int(blocks[i])
        nxt[i] = last.get(b, n)
        last[b] = i
    return nxt


class OPT(ReplacementPolicy):
    """Belady's offline-optimal policy: evict the resident block whose
    next use is farthest in the future.

    Requires the full trace up front (pass it to the constructor); the
    driver must supply the current reference index as ``time``.
    Implemented with a lazy max-heap keyed by next occurrence.
    """

    name = "opt"

    def __init__(self, blocks: np.ndarray) -> None:
        blocks = np.asarray(blocks, dtype=np.int64)
        self._next = next_occurrences(blocks)
        self._trace_len = int(blocks.size)
        self._resident: dict[int, int] = {}  # block -> next use index
        self._heap: list[tuple[int, int]] = []  # (-next_use, block), lazy

    def reset(self) -> None:
        self._resident.clear()
        self._heap.clear()

    def resident(self) -> int:
        return len(self._resident)

    def contains(self, block: int) -> bool:
        return block in self._resident

    def _touch(self, block: int, time: int) -> None:
        nxt = int(self._next[time]) if time < self._trace_len else self._trace_len
        self._resident[block] = nxt
        heapq.heappush(self._heap, (-nxt, block))

    def access(self, block: int, time: int) -> bool:
        if block in self._resident:
            self._touch(block, time)
            return True
        return False

    def admit(self, block: int, time: int) -> None:
        self._touch(block, time)

    def evict_one(self) -> int:
        while self._heap:
            neg_next, block = heapq.heappop(self._heap)
            if self._resident.get(block) == -neg_next:
                del self._resident[block]
                return block
        raise MachineError("evict from empty cache")


def make_policy(name: str, blocks: np.ndarray | None = None) -> ReplacementPolicy:
    """Construct a policy by name (``"lru"``, ``"fifo"``, ``"opt"``).

    OPT needs the trace's block array for its next-use oracle.
    """
    key = name.lower()
    if key == "lru":
        return LRU()
    if key == "fifo":
        return FIFO()
    if key == "opt":
        if blocks is None:
            raise MachineError("OPT policy requires the trace blocks")
        return OPT(blocks)
    raise MachineError(f"unknown policy {name!r}; known: lru, fifo, opt")
