"""Trace-level machine for square profiles.

This is the paper's execution model made literal: on a square profile, the
cache is cleared at every box boundary, so *a box of size x lets the
execution touch exactly x distinct blocks* (each first touch of a block
within the box is a miss = one I/O = one time step of the box; repeat
touches are free).  The machine replays a real block trace box by box and
reports, per box, how far the trace advanced and how many base-case leaves
the box (at least partly) executed — the paper's progress measure.

The implementation is vectorized: with ``last_occ[i]`` = index of the
previous reference to ``blocks[i]`` (-1 if none), a reference ``i`` is a
*new distinct block since position p* iff ``last_occ[i] < p``; each box
scans forward in numpy chunks until it has consumed its budget of new
distinct blocks, so a whole run costs O(trace length) regardless of the
number of boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import MachineError, SimulationError
from repro.algorithms.traces import Trace
from repro.profiles.square import SquareProfile, as_box_iter

__all__ = ["SquareRunRecord", "last_occurrence", "run_trace_on_boxes"]

_CHUNK = 1 << 14


def last_occurrence(blocks: np.ndarray) -> np.ndarray:
    """``last_occ[i]`` = largest ``j < i`` with ``blocks[j] == blocks[i]``,
    or -1.  O(n log n) via stable argsort (no Python loop)."""
    n = blocks.size
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    order = np.argsort(blocks, kind="stable")
    sorted_blocks = blocks[order]
    same_as_prev = np.empty(n, dtype=bool)
    same_as_prev[0] = False
    same_as_prev[1:] = sorted_blocks[1:] == sorted_blocks[:-1]
    prev_idx = np.empty(n, dtype=np.int64)
    prev_idx[0] = -1
    prev_idx[1:] = order[:-1]
    out[order[same_as_prev]] = prev_idx[same_as_prev]
    return out


@dataclass(frozen=True)
class SquareRunRecord:
    """Result of replaying a trace on a sequence of boxes.

    ``box_sizes``     — sizes of the boxes actually consumed (the final
    box appears even if only partly needed, matching Inequality 2's
    convention of not rounding it down).
    ``box_ends``      — reference index reached after each box (the i-th
    box covered references ``[box_ends[i-1], box_ends[i])``).
    ``completed``     — whether the trace ran to completion.
    ``leaves_total``  — number of leaf spans in the trace.
    """

    trace_label: str
    box_sizes: np.ndarray
    box_ends: np.ndarray
    completed: bool
    leaves_total: int

    @property
    def boxes_used(self) -> int:
        return int(self.box_sizes.size)

    def box_spans(self) -> np.ndarray:
        """(k, 2) array of reference ranges covered by each box."""
        starts = np.concatenate([[0], self.box_ends[:-1]])
        return np.stack([starts, self.box_ends], axis=1)

    def leaves_touched_per_box(self, trace: Trace) -> np.ndarray:
        """Progress of each box: leaf spans intersecting the box's range.

        A leaf ``[s, e)`` intersects box range ``[p, q)`` iff ``s < q``
        and ``e > p``; computed with two searchsorted passes.
        """
        spans = trace.leaf_spans
        if spans.shape[0] == 0:
            return np.zeros(self.boxes_used, dtype=np.int64)
        box = self.box_spans()
        # Leaves sorted by start; ends are monotone too for sequential
        # recursion traces (leaves are disjoint in reference order).
        first = np.searchsorted(spans[:, 1], box[:, 0], side="right")
        last = np.searchsorted(spans[:, 0], box[:, 1], side="left")
        return (last - first).astype(np.int64)

    def leaves_completed_per_box(self, trace: Trace) -> np.ndarray:
        """Leaves whose span lies entirely inside each box's range."""
        spans = trace.leaf_spans
        if spans.shape[0] == 0:
            return np.zeros(self.boxes_used, dtype=np.int64)
        box = self.box_spans()
        first = np.searchsorted(spans[:, 0], box[:, 0], side="left")
        last = np.searchsorted(spans[:, 1], box[:, 1], side="right")
        return np.maximum(last - first, 0).astype(np.int64)

    def adaptivity_ratio(self, n: int, exponent: float) -> float:
        """``sum min(n, |box|)**e / n**e`` over the consumed boxes."""
        if n < 1:
            raise MachineError(f"n must be >= 1, got {n}")
        clipped = np.minimum(self.box_sizes, n).astype(np.float64)
        return float(np.sum(clipped**exponent)) / float(n) ** exponent


def run_trace_on_boxes(
    trace: Trace,
    boxes: "SquareProfile | Iterable[int]",
    max_boxes: int | None = None,
) -> SquareRunRecord:
    """Replay ``trace`` against a square profile (or box stream).

    Raises :class:`SimulationError` if the boxes run out (or ``max_boxes``
    is hit) before the trace completes — pass an infinite stream or a
    sufficient profile for guaranteed completion.
    """
    blocks = trace.blocks
    n_refs = int(blocks.size)
    last_occ = last_occurrence(blocks)
    sizes: list[int] = []
    ends: list[int] = []
    pos = 0
    completed = n_refs == 0
    it = as_box_iter(boxes)
    while not completed:
        try:
            x = next(it)
        except StopIteration:
            break
        if max_boxes is not None and len(sizes) >= max_boxes:
            break
        if x < 1:
            raise MachineError(f"box size must be >= 1, got {x}")
        sizes.append(x)
        #

        # Advance until the (x+1)-th new distinct block since `pos`.
        budget = x
        q = pos
        while q < n_refs:
            hi = min(q + _CHUNK, n_refs)
            new_mask = last_occ[q:hi] < pos
            cnt = int(new_mask.sum())
            if cnt <= budget:
                budget -= cnt
                q = hi
                continue
            # The (budget+1)-th new-distinct in this chunk ends the box.
            overflow_at = int(np.flatnonzero(new_mask)[budget])
            q += overflow_at
            budget = 0
            break
        pos = q
        ends.append(pos)
        if pos >= n_refs:
            completed = True
    if not completed and max_boxes is None and isinstance(boxes, SquareProfile):
        # Finite profile exhausted before completion: report, don't raise -
        # partial runs are meaningful (e.g. counting completions).
        pass
    return SquareRunRecord(
        trace_label=trace.label,
        box_sizes=np.asarray(sizes, dtype=np.int64),
        box_ends=np.asarray(ends, dtype=np.int64),
        completed=completed,
        leaves_total=trace.n_leaves,
    )
