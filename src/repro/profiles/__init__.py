"""Memory profiles: square profiles, worst-case constructions,
smoothing perturbations, box-size distributions, and profile generators.

See Section 2 of the paper (square profiles, Definition 1), Section 3
(the worst-case profile of Figure 1), and Section 4 (the smoothings).
"""

from repro.profiles.base import MemoryProfile
from repro.profiles.distributions import (
    BoxDistribution,
    Empirical,
    GeometricPowers,
    Mixture,
    ParetoPowers,
    PointMass,
    UniformPowers,
    UniformRange,
)
from repro.profiles.generators import (
    constant_boxes,
    phase_profile,
    random_walk_profile,
    sawtooth_profile,
    winner_take_all_profile,
)
from repro.profiles.perturbations import (
    discrete_multipliers,
    random_start_shift,
    shuffle,
    size_perturbation,
    start_time_shift,
    uniform_multipliers,
)
from repro.profiles.reduction import inscribed_box_at, squarify
from repro.profiles.runs import BoxRuns
from repro.profiles.square import SquareProfile, as_box_iter
from repro.profiles.worst_case import (
    limit_profile_boxes,
    matched_worst_case_profile,
    order_perturbed_profile,
    worst_case_bounded_potential,
    worst_case_box_count,
    worst_case_boxes,
    worst_case_potential,
    worst_case_profile,
    worst_case_runs,
    worst_case_total_time,
)

__all__ = [
    "MemoryProfile",
    "BoxRuns",
    "SquareProfile",
    "as_box_iter",
    "BoxDistribution",
    "PointMass",
    "UniformPowers",
    "GeometricPowers",
    "ParetoPowers",
    "UniformRange",
    "Empirical",
    "Mixture",
    "constant_boxes",
    "sawtooth_profile",
    "winner_take_all_profile",
    "random_walk_profile",
    "phase_profile",
    "uniform_multipliers",
    "discrete_multipliers",
    "size_perturbation",
    "start_time_shift",
    "random_start_shift",
    "shuffle",
    "inscribed_box_at",
    "squarify",
    "limit_profile_boxes",
    "matched_worst_case_profile",
    "order_perturbed_profile",
    "worst_case_bounded_potential",
    "worst_case_box_count",
    "worst_case_boxes",
    "worst_case_potential",
    "worst_case_profile",
    "worst_case_runs",
    "worst_case_total_time",
]
