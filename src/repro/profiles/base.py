"""Step-level memory profiles.

A *memory profile* ``m(t)`` gives the cache size, in blocks, after the
``t``-th I/O (Section 2 of the paper).  :class:`MemoryProfile` stores one
size per I/O step as a numpy array; it is the general representation used
by the per-I/O cache-adaptive machine and by the square-profile reduction
(:mod:`repro.profiles.reduction`).  Most of the library instead works with
the square-profile abstraction (:class:`repro.profiles.SquareProfile`),
which prior work shows suffices up to constant-factor resource
augmentation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ProfileError

__all__ = ["MemoryProfile"]


class MemoryProfile:
    """An explicit per-I/O memory profile ``m(0), m(1), ..., m(T-1)``.

    Sizes are in blocks and must be positive.  Instances are immutable:
    the backing array is copied on construction and marked read-only.
    """

    __slots__ = ("_sizes",)

    def __init__(self, sizes: Iterable[int]) -> None:
        arr = np.asarray(list(sizes) if not isinstance(sizes, np.ndarray) else sizes)
        if arr.ndim != 1:
            raise ProfileError("memory profile must be one-dimensional")
        if arr.size and not np.issubdtype(arr.dtype, np.integer):
            if np.any(arr != np.floor(arr)):
                raise ProfileError("memory profile sizes must be integers")
        arr = arr.astype(np.int64, copy=True)
        if arr.size and arr.min() < 1:
            raise ProfileError("memory profile sizes must be >= 1 block")
        arr.setflags(write=False)
        self._sizes = arr

    # -- basic container protocol ------------------------------------
    @property
    def sizes(self) -> np.ndarray:
        """Read-only array of per-step sizes (blocks)."""
        return self._sizes

    def __len__(self) -> int:
        return int(self._sizes.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self._sizes.tolist())

    def __getitem__(self, idx: int | slice) -> MemoryProfile | int:
        if isinstance(idx, slice):
            return MemoryProfile(self._sizes[idx])
        return int(self._sizes[idx])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryProfile):
            return NotImplemented
        return np.array_equal(self._sizes, other._sizes)

    def __hash__(self) -> int:
        return hash(self._sizes.tobytes())

    def __repr__(self) -> str:
        n = len(self)
        head = ", ".join(str(int(s)) for s in self._sizes[:6])
        tail = ", ..." if n > 6 else ""
        return f"MemoryProfile([{head}{tail}], steps={n})"

    # -- operations ----------------------------------------------------
    def concat(self, other: "MemoryProfile") -> "MemoryProfile":
        """Profile equal to ``self`` followed by ``other``."""
        return MemoryProfile(np.concatenate([self._sizes, other._sizes]))

    def __add__(self, other: "MemoryProfile") -> "MemoryProfile":
        if not isinstance(other, MemoryProfile):
            return NotImplemented
        return self.concat(other)

    def repeat(self, k: int) -> "MemoryProfile":
        """Profile equal to ``k`` back-to-back copies of ``self``."""
        if k < 0:
            raise ProfileError(f"repeat count must be >= 0, got {k}")
        return MemoryProfile(np.tile(self._sizes, k))

    def cyclic_shift(self, offset: int) -> "MemoryProfile":
        """Rotate the profile left by ``offset`` steps (start-time shift)."""
        if len(self) == 0:
            return self
        offset %= len(self)
        return MemoryProfile(np.roll(self._sizes, -offset))

    def scaled(self, factor: int) -> "MemoryProfile":
        """Multiply every step's size by a positive integer ``factor``."""
        if factor < 1:
            raise ProfileError(f"scale factor must be >= 1, got {factor}")
        return MemoryProfile(self._sizes * factor)

    @property
    def duration(self) -> int:
        """Total number of I/O steps."""
        return len(self)

    def min_size(self) -> int:
        if len(self) == 0:
            raise ProfileError("empty profile has no min size")
        return int(self._sizes.min())

    def max_size(self) -> int:
        if len(self) == 0:
            raise ProfileError("empty profile has no max size")
        return int(self._sizes.max())

    @staticmethod
    def constant(size: int, duration: int) -> "MemoryProfile":
        """The DAM special case: memory fixed at ``size`` for ``duration``."""
        if size < 1:
            raise ProfileError(f"size must be >= 1, got {size}")
        if duration < 0:
            raise ProfileError(f"duration must be >= 0, got {duration}")
        return MemoryProfile(np.full(duration, size, dtype=np.int64))

    @staticmethod
    def from_steps(steps: Sequence[tuple[int, int]]) -> "MemoryProfile":
        """Build from ``(size, length)`` run-length pairs."""
        chunks = []
        for size, length in steps:
            if length < 0:
                raise ProfileError(f"step length must be >= 0, got {length}")
            chunks.append(np.full(length, size, dtype=np.int64))
        if not chunks:
            return MemoryProfile(np.empty(0, dtype=np.int64))
        return MemoryProfile(np.concatenate(chunks))

    def run_lengths(self) -> list[tuple[int, int]]:
        """Decompose into maximal ``(size, length)`` runs."""
        if len(self) == 0:
            return []
        s = self._sizes
        boundaries = np.flatnonzero(np.diff(s)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [s.size]])
        return [(int(s[i]), int(j - i)) for i, j in zip(starts, ends)]
