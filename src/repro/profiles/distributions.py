"""Box-size distributions Σ and their exact moments.

Theorem 1 of the paper quantifies over *arbitrary* distributions Σ of box
sizes: if boxes are drawn i.i.d. from Σ, any ``(a,b,1)``-regular algorithm
with ``a > b`` is cache-adaptive in expectation.  The analysis needs three
exact functionals of Σ:

* the tail ``P[σ >= n]`` (appears in the identity ``q = P[σ >= n] f(n/b)``
  of Lemma 3),
* the truncated mean ``E[min(σ, L)]`` (the renewal/Wald denominator for
  scans), and
* the *average n-bounded potential* ``m_n = E[min(σ, n)**e]`` (Equation 3).

All distributions here are discrete with finite support, which keeps every
moment exactly computable with numpy; continuous distributions can be
plugged in by discretizing into an :class:`Empirical`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:
    from repro.profiles.square import SquareProfile

import numpy as np

from repro.errors import DistributionError
from repro.util.rng import ReplayableStream, as_generator

__all__ = [
    "BoxDistribution",
    "PointMass",
    "UniformPowers",
    "GeometricPowers",
    "ParetoPowers",
    "UniformRange",
    "Empirical",
    "Mixture",
]

_MAX_SUPPORT = 10**7


class BoxDistribution:
    """A discrete probability distribution over positive box sizes.

    Concrete distributions are built from a support array of distinct
    sizes and a matching probability vector.  Moments are exact (up to
    float64 arithmetic) via direct summation over the support.
    """

    __slots__ = ("_sizes", "_probs", "_cum", "_name")

    def __init__(
        self, sizes: Iterable[int], probs: Iterable[float], name: str = ""
    ) -> None:
        s = np.asarray(list(sizes) if not isinstance(sizes, np.ndarray) else sizes)
        p = np.asarray(list(probs) if not isinstance(probs, np.ndarray) else probs,
                       dtype=np.float64)
        if s.ndim != 1 or p.ndim != 1 or s.size != p.size or s.size == 0:
            raise DistributionError("support and probabilities must be matching 1-D")
        if s.size > _MAX_SUPPORT:
            raise DistributionError(f"support too large ({s.size} > {_MAX_SUPPORT})")
        if not np.issubdtype(s.dtype, np.integer):
            if np.any(s != np.floor(s)):
                raise DistributionError("box sizes must be integers")
        s = s.astype(np.int64)
        if s.min() < 1:
            raise DistributionError("box sizes must be >= 1")
        if np.any(p < 0):
            raise DistributionError("probabilities must be non-negative")
        total = float(p.sum())
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-12):
            if total <= 0:
                raise DistributionError("probabilities must sum to a positive value")
            p = p / total
        order = np.argsort(s, kind="stable")
        s, p = s[order], p[order]
        if np.any(np.diff(s) == 0):
            # merge duplicate sizes
            uniq, inverse = np.unique(s, return_inverse=True)
            merged = np.zeros(uniq.size, dtype=np.float64)
            np.add.at(merged, inverse, p)
            s, p = uniq, merged
        keep = p > 0
        s, p = s[keep], p[keep]
        if s.size == 0:
            raise DistributionError("distribution has empty effective support")
        s.setflags(write=False)
        p.setflags(write=False)
        self._sizes = s
        self._probs = p
        self._cum = np.cumsum(p)
        self._name = name or type(self).__name__

    # -- introspection --------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def support(self) -> np.ndarray:
        """Sorted distinct box sizes with positive probability."""
        return self._sizes

    @property
    def probabilities(self) -> np.ndarray:
        """Probabilities aligned with :attr:`support`."""
        return self._probs

    @property
    def min_size(self) -> int:
        return int(self._sizes[0])

    @property
    def max_size(self) -> int:
        return int(self._sizes[-1])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self._name!r}, "
            f"support=[{self.min_size}..{self.max_size}], "
            f"atoms={self._sizes.size})"
        )

    # -- exact moments ----------------------------------------------------
    def mean(self) -> float:
        """``E[σ]``."""
        return float(np.dot(self._sizes.astype(np.float64), self._probs))

    def tail(self, n: int) -> float:
        """``P[σ >= n]``."""
        if n <= self.min_size:
            return 1.0
        idx = np.searchsorted(self._sizes, n, side="left")
        return float(self._probs[idx:].sum())

    def expected_min(self, bound: int) -> float:
        """``E[min(σ, bound)]`` — the scan renewal denominator."""
        if bound < 1:
            raise DistributionError(f"bound must be >= 1, got {bound}")
        clipped = np.minimum(self._sizes, bound).astype(np.float64)
        return float(np.dot(clipped, self._probs))

    def bounded_potential_moment(self, n: int, exponent: float) -> float:
        """``m_n = E[min(σ, n)**exponent]`` (average n-bounded potential)."""
        if n < 1:
            raise DistributionError(f"n must be >= 1, got {n}")
        if exponent < 0:
            raise DistributionError(f"exponent must be >= 0, got {exponent}")
        clipped = np.minimum(self._sizes, n).astype(np.float64)
        return float(np.dot(clipped**exponent, self._probs))

    def moment(self, exponent: float) -> float:
        """``E[σ**exponent]``."""
        return float(np.dot(self._sizes.astype(np.float64) ** exponent, self._probs))

    # -- sampling -----------------------------------------------------------
    def sample(self, k: int, rng: object = None) -> np.ndarray:
        """Draw ``k`` i.i.d. box sizes as an int64 array."""
        if k < 0:
            raise DistributionError(f"k must be >= 0, got {k}")
        gen = as_generator(rng)
        idx = np.searchsorted(self._cum, gen.random(k), side="right")
        idx = np.minimum(idx, self._sizes.size - 1)
        return self._sizes[idx]

    def sampler(self, rng: object = None, batch: int = 4096) -> Iterator[int]:
        """Infinite iterator of i.i.d. box sizes (batched internally)."""
        gen = as_generator(rng)
        while True:
            for s in self.sample(batch, gen).tolist():
                yield int(s)

    def sample_at(self, lo: int, hi: int, stream: ReplayableStream) -> np.ndarray:
        """Box sizes at draw indices ``[lo, hi)`` of an addressed stream.

        Box ``i`` is a pure function of ``(stream, i)``: the inverse-CDF
        transform of ``stream.uniforms_at(i, i+1)``.  Any batching of an
        index range is bit-identical to per-index draws, which is what
        lets the chunked simulator and the scalar cursor consume the
        same boxes regardless of how they window the stream.
        """
        u = stream.uniforms_at(lo, hi)
        idx = np.searchsorted(self._cum, u, side="right")
        idx = np.minimum(idx, self._sizes.size - 1)
        return self._sizes[idx]

    def sampler_at(
        self, stream: ReplayableStream, start: int = 0, batch: int = 4096
    ) -> Iterator[int]:
        """Infinite iterator over the addressed box stream, box ``start``
        first.  Equivalent to ``sample_at(i, i+1, stream)`` per box (the
        internal batching cannot change any value)."""
        pos = start
        while True:
            for s in self.sample_at(pos, pos + batch, stream).tolist():
                yield int(s)
            pos += batch

    def sample_profile(self, k: int, rng: object = None) -> SquareProfile:
        """Draw a finite i.i.d. :class:`~repro.profiles.SquareProfile`."""
        from repro.profiles.square import SquareProfile

        return SquareProfile(self.sample(k, rng))


# ---------------------------------------------------------------------------
# Concrete distributions
# ---------------------------------------------------------------------------


class PointMass(BoxDistribution):
    """All boxes have the same size ``s`` (the DAM special case: a constant
    memory of ``s`` blocks, chopped into squares)."""

    def __init__(self, size: int) -> None:
        super().__init__([size], [1.0], name=f"point({size})")


class UniformPowers(BoxDistribution):
    """Uniform over the powers ``b**lo, b**(lo+1), ..., b**hi``.

    A natural "scale-free" smoothing distribution: every scale of the
    recursion is equally likely.
    """

    def __init__(self, b: int, lo: int, hi: int) -> None:
        if lo < 0 or hi < lo:
            raise DistributionError(f"need 0 <= lo <= hi, got lo={lo}, hi={hi}")
        sizes = [b**k for k in range(lo, hi + 1)]
        probs = [1.0 / len(sizes)] * len(sizes)
        super().__init__(sizes, probs, name=f"uniform-powers({b}^{lo}..{b}^{hi})")


class GeometricPowers(BoxDistribution):
    """``P[σ = b**k] ∝ ratio**k`` for ``k`` in ``[lo, hi]``.

    ``ratio < 1`` biases toward small boxes (memory-starved systems);
    ``ratio > 1`` biases toward large boxes.
    """

    def __init__(self, b: int, lo: int, hi: int, ratio: float) -> None:
        if lo < 0 or hi < lo:
            raise DistributionError(f"need 0 <= lo <= hi, got lo={lo}, hi={hi}")
        if ratio <= 0:
            raise DistributionError(f"ratio must be > 0, got {ratio}")
        sizes = [b**k for k in range(lo, hi + 1)]
        weights = [ratio ** (k - lo) for k in range(lo, hi + 1)]
        super().__init__(
            sizes, weights, name=f"geometric-powers({b}^{lo}..{b}^{hi}, r={ratio:g})"
        )


class ParetoPowers(BoxDistribution):
    """Heavy-tailed over powers: ``P[σ = b**k] ∝ (b**k)**(-alpha)``.

    With small ``alpha`` this puts non-trivial mass on enormous boxes, the
    regime where the paper's main theorem is most surprising (a single
    giant box can complete the whole problem).
    """

    def __init__(self, b: int, lo: int, hi: int, alpha: float = 0.5) -> None:
        if lo < 0 or hi < lo:
            raise DistributionError(f"need 0 <= lo <= hi, got lo={lo}, hi={hi}")
        if alpha <= 0:
            raise DistributionError(f"alpha must be > 0, got {alpha}")
        sizes = [b**k for k in range(lo, hi + 1)]
        weights = [float(s) ** (-alpha) for s in sizes]
        super().__init__(
            sizes, weights, name=f"pareto-powers({b}^{lo}..{b}^{hi}, a={alpha:g})"
        )


class UniformRange(BoxDistribution):
    """Uniform over every integer size in ``[lo, hi]``."""

    def __init__(self, lo: int, hi: int) -> None:
        if lo < 1 or hi < lo:
            raise DistributionError(f"need 1 <= lo <= hi, got lo={lo}, hi={hi}")
        if hi - lo + 1 > _MAX_SUPPORT:
            raise DistributionError("range too large; use power-grid distributions")
        sizes = np.arange(lo, hi + 1, dtype=np.int64)
        probs = np.full(sizes.size, 1.0 / sizes.size)
        super().__init__(sizes, probs, name=f"uniform-range[{lo},{hi}]")


class Empirical(BoxDistribution):
    """The empirical distribution of a multiset of box sizes.

    ``Empirical.of_profile(M)`` is the key construction for the paper's
    headline contrast: take the *adversarial* worst-case profile, forget
    the order of its boxes, and draw i.i.d. from the resulting multiset —
    Theorem 1 says the algorithm becomes adaptive in expectation even
    though the same boxes in adversarial order force the log gap.
    """

    def __init__(self, sizes: Sequence[int] | np.ndarray, name: str = "") -> None:
        arr = np.asarray(sizes, dtype=np.int64)
        if arr.size == 0:
            raise DistributionError("empirical distribution needs >= 1 sample")
        uniq, counts = np.unique(arr, return_counts=True)
        super().__init__(uniq, counts.astype(np.float64), name=name or "empirical")

    @staticmethod
    def of_profile(profile: SquareProfile, name: str = "") -> "Empirical":
        """Empirical distribution of a :class:`SquareProfile`'s boxes."""
        return Empirical(profile.boxes, name=name or "empirical-of-profile")


class Mixture(BoxDistribution):
    """Finite mixture ``sum_i w_i * D_i`` of box distributions."""

    def __init__(
        self, components: Sequence[BoxDistribution], weights: Sequence[float]
    ) -> None:
        if len(components) == 0 or len(components) != len(weights):
            raise DistributionError("need matching non-empty components and weights")
        w = np.asarray(weights, dtype=np.float64)
        if np.any(w < 0) or w.sum() <= 0:
            raise DistributionError("weights must be non-negative, not all zero")
        w = w / w.sum()
        sizes: list[np.ndarray] = []
        probs: list[np.ndarray] = []
        for comp, wi in zip(components, w):
            sizes.append(comp.support)
            probs.append(comp.probabilities * wi)
        names = "+".join(c.name for c in components)
        super().__init__(
            np.concatenate(sizes), np.concatenate(probs), name=f"mixture({names})"
        )
