"""Generators for realistic (non-adversarial) memory profiles.

The paper's introduction motivates cache-size fluctuation with concrete
system behaviours: winner-take-all cache monopolization followed by a
periodic flush (a slow ramp up, then a crash to nearly zero), time-shared
private caches, and multi-tenant phase changes.  These generators produce
step-level :class:`~repro.profiles.base.MemoryProfile` instances for those
scenarios; :func:`repro.profiles.reduction.squarify` converts them to the
square profiles the analysis operates on.

All step profiles respect the cache-adaptive model's growth rule: memory
may grow by at most one block per I/O but may shrink arbitrarily fast.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProfileError
from repro.profiles.base import MemoryProfile
from repro.profiles.square import SquareProfile
from repro.util.rng import as_generator

__all__ = [
    "constant_boxes",
    "sawtooth_profile",
    "winner_take_all_profile",
    "random_walk_profile",
    "phase_profile",
]


def constant_boxes(size: int, count: int) -> SquareProfile:
    """``count`` equal boxes — the DAM baseline as a square profile."""
    return SquareProfile.constant(size, count)


def sawtooth_profile(
    min_size: int, max_size: int, teeth: int, ramp_rate: int = 1
) -> MemoryProfile:
    """Repeated ramp-up/crash-down teeth.

    Each tooth ramps from ``min_size`` to ``max_size`` at ``ramp_rate``
    blocks per step (capped at 1 by the model, but kept as a parameter so
    the *shape* can be compressed for cheap experimentation when the
    model's growth rule is not under test) and then crashes instantly back
    to ``min_size``.
    """
    if not (1 <= min_size <= max_size):
        raise ProfileError(f"need 1 <= min_size <= max_size, got {min_size},{max_size}")
    if teeth < 1:
        raise ProfileError(f"teeth must be >= 1, got {teeth}")
    if ramp_rate < 1:
        raise ProfileError(f"ramp_rate must be >= 1, got {ramp_rate}")
    ramp = np.arange(min_size, max_size + 1, ramp_rate, dtype=np.int64)
    if ramp[-1] != max_size:
        ramp = np.append(ramp, max_size)
    return MemoryProfile(np.tile(ramp, teeth))


def winner_take_all_profile(
    max_size: int, flush_floor: int, cycles: int
) -> MemoryProfile:
    """The introduction's motivating scenario: a process's cache share
    slowly grows to the maximum possible size (winner-take-all residency),
    then a periodic cache flush abruptly crashes it to ``flush_floor``."""
    if not (1 <= flush_floor <= max_size):
        raise ProfileError(
            f"need 1 <= flush_floor <= max_size, got {flush_floor},{max_size}"
        )
    return sawtooth_profile(flush_floor, max_size, cycles, ramp_rate=1)


def random_walk_profile(
    start: int,
    steps: int,
    min_size: int = 1,
    max_size: int | None = None,
    up_probability: float = 0.5,
    crash_probability: float = 0.0,
    crash_factor: float = 0.5,
    rng: object = None,
) -> MemoryProfile:
    """A stochastic profile imitating shared-cache contention.

    Each step: with ``crash_probability`` the size multiplies by
    ``crash_factor`` (another tenant's burst evicting us); otherwise it
    moves up one block with ``up_probability`` (model-legal growth) or
    down one block.  Sizes are clamped to ``[min_size, max_size]``.
    """
    if steps < 0:
        raise ProfileError(f"steps must be >= 0, got {steps}")
    if not 0.0 <= up_probability <= 1.0:
        raise ProfileError(f"up_probability must be in [0,1], got {up_probability}")
    if not 0.0 <= crash_probability <= 1.0:
        raise ProfileError(f"crash_probability must be in [0,1]")
    if not 0.0 < crash_factor <= 1.0:
        raise ProfileError(f"crash_factor must be in (0,1], got {crash_factor}")
    if min_size < 1 or start < min_size:
        raise ProfileError("need 1 <= min_size <= start")
    if max_size is not None and start > max_size:
        raise ProfileError("start exceeds max_size")
    gen = as_generator(rng)
    sizes = np.empty(steps, dtype=np.int64)
    size = start
    crashes = gen.random(steps) < crash_probability
    ups = gen.random(steps) < up_probability
    for t in range(steps):
        if crashes[t]:
            size = max(min_size, int(size * crash_factor))
        elif ups[t]:
            size = size + 1
            if max_size is not None:
                size = min(size, max_size)
        else:
            size = max(min_size, size - 1)
        sizes[t] = size
    return MemoryProfile(sizes)


def phase_profile(phases: list[tuple[int, int]]) -> MemoryProfile:
    """Piecewise-constant profile from ``(size, duration)`` phases —
    e.g. a co-tenant job arriving (shrink) and departing (grow)."""
    if not phases:
        raise ProfileError("need at least one phase")
    return MemoryProfile.from_steps(phases)
