"""Mini-DSL for naming box-size distributions on the command line.

The CLI's ``solve`` subcommand (and scripts) accept distribution specs as
compact strings:

====================  ==================================================
``point:16``          all boxes of size 16
``uniform:4:1:5``     uniform over powers ``4^1 .. 4^5``
``geometric:4:1:5:0.7``  ``P[4^k] ∝ 0.7^k`` over the same grid
``pareto:4:1:6:0.5``  heavy tail ``P[4^k] ∝ (4^k)^-0.5``
``range:8:64``        uniform over every integer in ``[8, 64]``
``worstcase:8:4:256`` empirical distribution of ``M_{8,4}(256)``'s boxes
====================  ==================================================
"""

from __future__ import annotations

from repro.errors import DistributionError
from repro.profiles.distributions import (
    BoxDistribution,
    Empirical,
    GeometricPowers,
    ParetoPowers,
    PointMass,
    UniformPowers,
    UniformRange,
)

__all__ = ["parse_distribution", "DISTRIBUTION_GRAMMAR"]

DISTRIBUTION_GRAMMAR = (
    "point:<size> | uniform:<b>:<lo>:<hi> | geometric:<b>:<lo>:<hi>:<ratio> | "
    "pareto:<b>:<lo>:<hi>:<alpha> | range:<lo>:<hi> | worstcase:<a>:<b>:<n>"
)


def _ints(parts: list[str], count: int, name: str) -> list[int]:
    if len(parts) != count:
        raise DistributionError(
            f"{name} needs {count} parameters, got {len(parts)} "
            f"(grammar: {DISTRIBUTION_GRAMMAR})"
        )
    try:
        return [int(p) for p in parts]
    except ValueError as exc:
        raise DistributionError(f"bad integer in {name} spec: {exc}") from None


def parse_distribution(text: str) -> BoxDistribution:
    """Parse a distribution spec string (see module docstring)."""
    parts = text.strip().lower().split(":")
    kind, args = parts[0], parts[1:]
    if kind == "point":
        (size,) = _ints(args, 1, "point")
        return PointMass(size)
    if kind == "uniform":
        b, lo, hi = _ints(args, 3, "uniform")
        return UniformPowers(b, lo, hi)
    if kind == "geometric":
        if len(args) != 4:
            raise DistributionError("geometric needs b:lo:hi:ratio")
        b, lo, hi = _ints(args[:3], 3, "geometric")
        try:
            ratio = float(args[3])
        except ValueError:
            raise DistributionError(f"bad ratio {args[3]!r}") from None
        return GeometricPowers(b, lo, hi, ratio=ratio)
    if kind == "pareto":
        if len(args) != 4:
            raise DistributionError("pareto needs b:lo:hi:alpha")
        b, lo, hi = _ints(args[:3], 3, "pareto")
        try:
            alpha = float(args[3])
        except ValueError:
            raise DistributionError(f"bad alpha {args[3]!r}") from None
        return ParetoPowers(b, lo, hi, alpha=alpha)
    if kind == "range":
        lo, hi = _ints(args, 2, "range")
        return UniformRange(lo, hi)
    if kind == "worstcase":
        from repro.profiles.worst_case import worst_case_profile

        a, b, n = _ints(args, 3, "worstcase")
        profile = worst_case_profile(a, b, n)
        return Empirical.of_profile(
            profile, name=f"empirical(M_{{{a},{b}}}({n}))"
        )
    raise DistributionError(
        f"unknown distribution kind {kind!r} (grammar: {DISTRIBUTION_GRAMMAR})"
    )
