"""Smoothing perturbations of square profiles.

The paper's negative results show that three natural smoothings of the
worst-case profile remain worst-case in expectation:

* :func:`size_perturbation` — multiply every box size by an i.i.d. random
  factor ``X_i`` drawn from a distribution over ``[0, t]`` with
  ``E[X] = Θ(t)``;
* :func:`start_time_shift` / :func:`random_start_shift` — run the
  algorithm from a uniformly random start time in the cyclic profile;
* box-*order* perturbation — implemented with the construction itself in
  :func:`repro.profiles.worst_case.order_perturbed_profile`.

By contrast, :func:`shuffle` — the full random reshuffle of when
significant events happen, i.e. drawing sizes i.i.d. from the profile's
own box multiset — is exactly the smoothing that Theorem 1 proves *does*
close the gap.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ProfileError
from repro.profiles.square import SquareProfile
from repro.util.rng import as_generator

__all__ = [
    "uniform_multipliers",
    "discrete_multipliers",
    "size_perturbation",
    "start_time_shift",
    "random_start_shift",
    "shuffle",
]

# A multiplier sampler draws k i.i.d. multipliers as a float array.
MultiplierSampler = Callable[[int, np.random.Generator], np.ndarray]


def uniform_multipliers(t: float) -> MultiplierSampler:
    """Multipliers uniform on ``[0, t]`` (so ``E[X] = t/2 = Θ(t)``).

    This is the paper's canonical perturbation family ``P``.
    """
    if t <= 0:
        raise ProfileError(f"t must be > 0, got {t}")

    def sample(k: int, gen: np.random.Generator) -> np.ndarray:
        return gen.uniform(0.0, t, size=k)

    return sample


def discrete_multipliers(
    values: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray | None = None,
) -> MultiplierSampler:
    """Multipliers drawn from a finite set ``values`` (optionally weighted)."""
    vals = np.asarray(values, dtype=np.float64)
    if vals.ndim != 1 or vals.size == 0:
        raise ProfileError("values must be a non-empty 1-D sequence")
    if np.any(vals < 0):
        raise ProfileError("multipliers must be >= 0")
    if weights is None:
        probs = np.full(vals.size, 1.0 / vals.size)
    else:
        probs = np.asarray(weights, dtype=np.float64)
        if probs.shape != vals.shape or np.any(probs < 0) or probs.sum() <= 0:
            raise ProfileError("weights must match values and be non-negative")
        probs = probs / probs.sum()

    def sample(k: int, gen: np.random.Generator) -> np.ndarray:
        return gen.choice(vals, size=k, p=probs)

    return sample


def size_perturbation(
    profile: SquareProfile,
    multipliers: MultiplierSampler,
    rng: object = None,
    drop_empty: bool = True,
) -> SquareProfile:
    """Replace each box ``|box_i|`` with ``round(|box_i| * X_i)``.

    ``X_i`` are i.i.d. draws from ``multipliers``.  Boxes rounded to zero
    are dropped when ``drop_empty`` (a zero-size box provides no memory
    and no time — the natural reading of the paper's construction); with
    ``drop_empty=False`` they are clamped to size 1.
    """
    gen = as_generator(rng)
    sizes = profile.boxes.astype(np.float64)
    factors = np.asarray(multipliers(len(profile), gen), dtype=np.float64)
    if factors.shape != (len(profile),):
        raise ProfileError("multiplier sampler returned wrong shape")
    if np.any(factors < 0):
        raise ProfileError("multipliers must be >= 0")
    new_sizes = np.rint(sizes * factors).astype(np.int64)
    if drop_empty:
        new_sizes = new_sizes[new_sizes >= 1]
    else:
        new_sizes = np.maximum(new_sizes, 1)
    return SquareProfile(new_sizes)


def start_time_shift(
    profile: SquareProfile, tau: int, partial: str = "shrink"
) -> SquareProfile:
    """The cyclic profile started at absolute time ``tau``.

    ``tau`` is an I/O-step offset in ``[0, total_time)``.  One period of
    the cyclic profile starting at ``tau`` both begins and ends inside
    the box containing ``tau``; neither partial piece (the remnant of
    ``d`` steps at the start, the first ``offset`` steps at the end) is
    itself square, so two canonical squarifications are offered:

    * ``partial="shrink"`` — replace each partial piece by a box of its
      duration (same time, conservatively less memory); the result has
      exactly the original period length;
    * ``partial="skip"`` — drop both partial pieces (start at the next
      box boundary, end at the previous one).

    Both preserve worst-case-ness up to constants; experiments use
    ``shrink`` by default.
    """
    if len(profile) == 0:
        raise ProfileError("cannot shift an empty profile")
    total = profile.total_time
    tau %= total
    if partial not in ("shrink", "skip"):
        raise ProfileError(f"partial must be 'shrink' or 'skip', got {partial!r}")
    ends = np.cumsum(profile.boxes)
    # Index of the box containing time tau.
    idx = int(np.searchsorted(ends, tau, side="right"))
    start_of_box = int(ends[idx] - profile.boxes[idx])
    offset_in_box = tau - start_of_box
    rotated_tail = profile.boxes[idx + 1 :]
    before = profile.boxes[:idx]
    if offset_in_box == 0:
        pieces = [profile.boxes[idx : idx + 1], rotated_tail, before]
    else:
        remnant = int(profile.boxes[idx]) - offset_in_box
        if partial == "shrink":
            pieces = [
                np.array([remnant], dtype=np.int64),
                rotated_tail,
                before,
                np.array([offset_in_box], dtype=np.int64),
            ]
        else:
            pieces = [rotated_tail, before]
    chunks = [p for p in pieces if p.size]
    if not chunks:
        return SquareProfile(np.empty(0, dtype=np.int64))
    return SquareProfile(np.concatenate(chunks))


def random_start_shift(
    profile: SquareProfile, rng: object = None, partial: str = "shrink"
) -> SquareProfile:
    """Shift to a uniformly random start time (uniform over I/O steps, so
    long boxes are proportionally more likely to contain the start)."""
    gen = as_generator(rng)
    tau = int(gen.integers(0, profile.total_time))
    return start_time_shift(profile, tau, partial=partial)


def shuffle(profile: SquareProfile, rng: object = None) -> SquareProfile:
    """Uniformly random permutation of the profile's boxes.

    This is the smoothing the paper's positive result is about: the box
    *multiset* is unchanged (still adversarially chosen) but the timing of
    significant events is random.
    """
    gen = as_generator(rng)
    return SquareProfile(gen.permutation(profile.boxes))
