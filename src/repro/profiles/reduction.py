"""Reduction from arbitrary memory profiles to square profiles.

Prior work [5] shows that any memory profile can be approximated by a
*square* profile up to constant factors of resource augmentation, which is
why the paper (and this library) analyses algorithms on square profiles
only.  This module implements the constructive direction used in practice:

* :func:`squarify` — the *inscribed* square profile: walk the time axis
  and repeatedly carve the largest box that fits entirely under the
  profile curve.  The result never offers more memory than the original
  at any instant, so progress bounds proved on it are valid lower bounds
  for the original profile.
* :func:`inscribed_box_at` — the largest box starting at a given time.

The inscribed profile of ``m`` satisfies, at every step of box ``i``,
``|box_i| <= m(t)``; conversely each box is maximal, which yields the
constant-factor guarantee of [5] (a box ends only because the profile
dropped below its height, so doubling speed and memory covers ``m``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProfileError
from repro.profiles.base import MemoryProfile
from repro.profiles.square import SquareProfile

__all__ = ["inscribed_box_at", "squarify"]


def inscribed_box_at(sizes: np.ndarray, t: int) -> int:
    """Largest ``x`` with ``min(sizes[t : t+x]) >= x`` (and ``t+x`` within
    the profile).  ``sizes`` is a per-step size array; ``x >= 1`` always
    exists because sizes are >= 1."""
    n = sizes.size
    if not 0 <= t < n:
        raise ProfileError(f"t={t} out of range [0, {n})")
    hi = int(min(sizes[t], n - t))
    # g(x) = min(sizes[t:t+x]) is non-increasing in x while x is
    # non-decreasing, so the predicate min >= x flips exactly once:
    # binary search the largest feasible x.
    lo = 1
    best = 1
    while lo <= hi:
        mid = (lo + hi) // 2
        if int(sizes[t : t + mid].min()) >= mid:
            best = mid
            lo = mid + 1
        else:
            hi = mid - 1
    return best


def squarify(profile: MemoryProfile, greedy_from: int = 0) -> SquareProfile:
    """Inscribed square profile of an arbitrary step profile.

    Starting at ``greedy_from``, repeatedly take the largest box that fits
    under the curve and advance by its duration.  Runs in
    ``O(T log T)`` (binary search per box, each evaluation a windowed
    min); the total number of boxes is at most ``T``.
    """
    sizes = profile.sizes
    n = sizes.size
    if not 0 <= greedy_from <= n:
        raise ProfileError(f"greedy_from={greedy_from} out of range")
    boxes: list[int] = []
    t = greedy_from
    while t < n:
        x = inscribed_box_at(sizes, t)
        boxes.append(x)
        t += x
    return SquareProfile(np.asarray(boxes, dtype=np.int64))
