"""Run-length encoded box streams: the chunked profile representation.

The paper's canonical structures are massively repetitive: the
worst-case profile ``M_{a,b}(n)`` emits ``a^(D-k)`` *identical* boxes of
size ``b^k`` per level, and i.i.d. profiles drawn from small-support
distributions repeat sizes constantly.  :class:`BoxRuns` stores a box
sequence as maximal ``(size, count)`` runs — two parallel int64 arrays —
so the chunked simulation fast path
(:mod:`repro.simulation.fastpath`) can consume a run of identical boxes
in closed form instead of one Python iteration per box.

``BoxRuns`` is purely a *representation*: iterating it yields exactly
the same flat box sequence as the profile it encodes (the RLE round-trip
is asserted for every profile family in ``tests/profiles/test_runs.py``),
and :meth:`SquareProfile.runs` / :func:`BoxRuns.from_boxes` convert both
ways losslessly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.errors import ProfileError

if TYPE_CHECKING:
    from repro.profiles.square import SquareProfile

__all__ = ["BoxRuns"]


class BoxRuns:
    """A box sequence as maximal runs ``((size_1, count_1), ...)``.

    Runs are canonical: counts are positive, and adjacent runs always
    have distinct sizes (equal neighbours are merged, zero-count runs
    dropped, at construction).  Two ``BoxRuns`` encoding the same flat
    box sequence therefore compare equal.
    """

    __slots__ = ("_sizes", "_counts")

    def __init__(self, runs: Iterable[tuple[int, int]]) -> None:
        pairs = list(runs)
        if pairs:
            arr = np.asarray(pairs)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ProfileError("runs must be (size, count) pairs")
            if not np.issubdtype(arr.dtype, np.integer):
                if np.any(arr != np.floor(arr)):
                    raise ProfileError("run sizes and counts must be integers")
            sizes = arr[:, 0].astype(np.int64)
            counts = arr[:, 1].astype(np.int64)
        else:
            sizes = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
        if counts.size and counts.min() < 0:
            raise ProfileError("run counts must be >= 0")
        keep = counts > 0
        sizes, counts = sizes[keep], counts[keep]
        if sizes.size and sizes.min() < 1:
            raise ProfileError("box sizes must be >= 1 block")
        if sizes.size:
            # merge adjacent runs of equal size into maximal runs
            boundary = np.empty(sizes.size, dtype=bool)
            boundary[0] = True
            np.not_equal(sizes[1:], sizes[:-1], out=boundary[1:])
            if not boundary.all():
                group = np.cumsum(boundary) - 1
                merged = np.zeros(int(group[-1]) + 1, dtype=np.int64)
                np.add.at(merged, group, counts)
                sizes, counts = sizes[boundary], merged
        sizes.setflags(write=False)
        counts.setflags(write=False)
        self._sizes = sizes
        self._counts = counts

    # -- construction ---------------------------------------------------
    @staticmethod
    def from_boxes(boxes: "np.ndarray | Iterable[int]") -> "BoxRuns":
        """RLE-encode a flat box sequence (vectorized for arrays)."""
        arr = np.asarray(
            boxes if isinstance(boxes, np.ndarray) else list(boxes)
        )
        if arr.ndim != 1:
            raise ProfileError("box sequence must be one-dimensional")
        if arr.size == 0:
            return BoxRuns([])
        arr = arr.astype(np.int64)
        starts = np.concatenate(
            ([0], np.flatnonzero(arr[1:] != arr[:-1]) + 1)
        )
        counts = np.diff(np.concatenate((starts, [arr.size])))
        out = BoxRuns.__new__(BoxRuns)
        sizes = arr[starts].copy()
        counts = counts.astype(np.int64)
        if sizes.size and sizes.min() < 1:
            raise ProfileError("box sizes must be >= 1 block")
        sizes.setflags(write=False)
        counts.setflags(write=False)
        out._sizes = sizes
        out._counts = counts
        return out

    # -- views ----------------------------------------------------------
    @property
    def sizes(self) -> np.ndarray:
        """Read-only int64 array of run sizes (adjacent entries distinct)."""
        return self._sizes

    @property
    def counts(self) -> np.ndarray:
        """Read-only int64 array of run lengths, aligned with :attr:`sizes`."""
        return self._counts

    def __len__(self) -> int:
        """Number of runs (*not* boxes; see :attr:`total_boxes`)."""
        return int(self._sizes.size)

    @property
    def total_boxes(self) -> int:
        """Number of boxes in the flat sequence this encodes."""
        return int(self._counts.sum())

    @property
    def total_time(self) -> int:
        """Total duration in I/O steps (= sum of all box sizes)."""
        return int(np.dot(self._sizes, self._counts))

    def iter_runs(self) -> Iterator[tuple[int, int]]:
        """Yield ``(size, count)`` pairs as Python ints."""
        return zip(self._sizes.tolist(), self._counts.tolist())

    def iter_boxes(self) -> Iterator[int]:
        """Yield the flat box sequence (the RLE round-trip inverse)."""
        for size, count in self.iter_runs():
            for _ in range(count):
                yield size

    def __iter__(self) -> Iterator[int]:
        return self.iter_boxes()

    def to_boxes(self) -> np.ndarray:
        """The flat box sequence as an int64 array."""
        return np.repeat(self._sizes, self._counts)

    def to_profile(self) -> SquareProfile:
        """Expand into a :class:`~repro.profiles.square.SquareProfile`."""
        from repro.profiles.square import SquareProfile

        return SquareProfile(self.to_boxes())

    # -- comparison ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxRuns):
            return NotImplemented
        return np.array_equal(self._sizes, other._sizes) and np.array_equal(
            self._counts, other._counts
        )

    def __hash__(self) -> int:
        return hash((self._sizes.tobytes(), self._counts.tobytes()))

    def __repr__(self) -> str:
        n = len(self)
        head = ", ".join(
            f"({int(s)}x{int(c)})"
            for s, c in zip(self._sizes[:6], self._counts[:6])
        )
        tail = ", ..." if n > 6 else ""
        return f"BoxRuns([{head}{tail}], runs={n}, boxes={self.total_boxes})"
