"""Square memory profiles — the canonical profile shape of the paper.

A *square profile* is a step function in which each step is exactly as
long (in I/Os) as it is tall (in blocks): a *box* (or *square*) of size
``x`` means memory sits at ``x`` blocks for ``x`` I/O steps (Definition 1).
Prior work [5, 6] shows that analysing cache-adaptivity on square profiles
loses only constant factors, and the paper works exclusively with them;
so does this library.

:class:`SquareProfile` is a finite, immutable sequence of box sizes backed
by a numpy int64 array, with the potential accounting used by the
efficiency condition (Inequality 2):

    ``sum_i min(n, |box_i|)**e  <=  O(n**e)``,  ``e = log_b a``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ProfileError
from repro.profiles.base import MemoryProfile

if TYPE_CHECKING:
    from repro.profiles.runs import BoxRuns

__all__ = ["SquareProfile", "as_box_iter"]


class SquareProfile:
    """A finite sequence of boxes ``(box_1, ..., box_j)``.

    Box sizes are positive integers (blocks).  The class supports profile
    algebra (concatenation, repetition, rotation), conversion to a
    step-level :class:`~repro.profiles.base.MemoryProfile`, and the
    potential sums that define cache-adaptive efficiency.
    """

    __slots__ = ("_boxes",)

    def __init__(self, boxes: Iterable[int]) -> None:
        arr = np.asarray(
            list(boxes) if not isinstance(boxes, np.ndarray) else boxes
        )
        if arr.ndim != 1:
            raise ProfileError("square profile must be one-dimensional")
        if arr.size and not np.issubdtype(arr.dtype, np.integer):
            if np.any(arr != np.floor(arr)):
                raise ProfileError("box sizes must be integers")
        arr = arr.astype(np.int64, copy=True)
        if arr.size and arr.min() < 1:
            raise ProfileError("box sizes must be >= 1 block")
        arr.setflags(write=False)
        self._boxes = arr

    # -- container protocol -------------------------------------------
    @property
    def boxes(self) -> np.ndarray:
        """Read-only int64 array of box sizes."""
        return self._boxes

    def __len__(self) -> int:
        return int(self._boxes.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self._boxes.tolist())

    def __getitem__(self, idx: int | slice) -> SquareProfile | int:
        if isinstance(idx, slice):
            return SquareProfile(self._boxes[idx])
        return int(self._boxes[idx])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SquareProfile):
            return NotImplemented
        return np.array_equal(self._boxes, other._boxes)

    def __hash__(self) -> int:
        return hash(self._boxes.tobytes())

    def __repr__(self) -> str:
        n = len(self)
        head = ", ".join(str(int(s)) for s in self._boxes[:8])
        tail = ", ..." if n > 8 else ""
        return f"SquareProfile([{head}{tail}], boxes={n})"

    # -- algebra ---------------------------------------------------------
    def concat(self, other: "SquareProfile") -> "SquareProfile":
        """Profile equal to ``self`` followed by ``other``."""
        return SquareProfile(np.concatenate([self._boxes, other._boxes]))

    def __add__(self, other: "SquareProfile") -> "SquareProfile":
        if not isinstance(other, SquareProfile):
            return NotImplemented
        return self.concat(other)

    def repeat(self, k: int) -> "SquareProfile":
        """``k`` back-to-back copies of this profile."""
        if k < 0:
            raise ProfileError(f"repeat count must be >= 0, got {k}")
        return SquareProfile(np.tile(self._boxes, k))

    def rotate(self, offset_boxes: int) -> "SquareProfile":
        """Cyclically rotate left by ``offset_boxes`` boxes."""
        if len(self) == 0:
            return self
        return SquareProfile(np.roll(self._boxes, -(offset_boxes % len(self))))

    def scaled(self, factor: int) -> "SquareProfile":
        """Multiply every box size by a positive integer factor.

        (Scaling a square profile by ``T`` yields the profile ``T . M``
        used in the paper's box-size-perturbation argument.)
        """
        if factor < 1:
            raise ProfileError(f"scale factor must be >= 1, got {factor}")
        return SquareProfile(self._boxes * factor)

    def filtered_min_size(self, min_size: int) -> "SquareProfile":
        """Drop all boxes smaller than ``min_size`` (order preserved)."""
        return SquareProfile(self._boxes[self._boxes >= min_size])

    # -- accounting --------------------------------------------------------
    @property
    def total_time(self) -> int:
        """Total duration in I/O steps (= sum of box sizes)."""
        return int(self._boxes.sum())

    def min_size(self) -> int:
        if len(self) == 0:
            raise ProfileError("empty profile has no min size")
        return int(self._boxes.min())

    def max_size(self) -> int:
        if len(self) == 0:
            raise ProfileError("empty profile has no max size")
        return int(self._boxes.max())

    def potential_sum(self, exponent: float, rho1: float = 1.0) -> float:
        """Total potential ``rho1 * sum_i |box_i|**exponent``.

        With ``exponent = log_b a`` this is the left side of Inequality 1
        (up to the constant hidden in Lemma 1's Theta).
        """
        if exponent < 0:
            raise ProfileError(f"exponent must be >= 0, got {exponent}")
        return rho1 * float(np.sum(self._boxes.astype(np.float64) ** exponent))

    def bounded_potential_sum(
        self, n: int, exponent: float, rho1: float = 1.0
    ) -> float:
        """``rho1 * sum_i min(n, |box_i|)**exponent`` (Inequality 2).

        This is the form of the efficiency condition that is insensitive
        to the final square's unused remainder.
        """
        if n < 1:
            raise ProfileError(f"n must be >= 1, got {n}")
        if exponent < 0:
            raise ProfileError(f"exponent must be >= 0, got {exponent}")
        clipped = np.minimum(self._boxes, n).astype(np.float64)
        return rho1 * float(np.sum(clipped**exponent))

    def size_census(self) -> dict[int, int]:
        """Histogram ``{box size: count}`` sorted by size ascending."""
        sizes, counts = np.unique(self._boxes, return_counts=True)
        return {int(s): int(c) for s, c in zip(sizes, counts)}

    # -- conversions ------------------------------------------------------
    def runs(self) -> "BoxRuns":
        """Run-length view: this profile as maximal ``(size, count)`` runs.

        Returns a :class:`~repro.profiles.runs.BoxRuns` encoding exactly
        this box sequence — the chunked representation the simulation
        fast path consumes (see :mod:`repro.simulation.fastpath`).
        """
        from repro.profiles.runs import BoxRuns

        return BoxRuns.from_boxes(self._boxes)

    def to_memory_profile(self) -> MemoryProfile:
        """Expand into a per-I/O step profile (size x for x steps, per box).

        Raises :class:`ProfileError` if the expansion would be enormous
        (over ``10**8`` steps), since that indicates the caller should stay
        at the box level.
        """
        total = self.total_time
        if total > 10**8:
            raise ProfileError(
                f"expanding {total} steps would be too large; "
                "operate on boxes directly instead"
            )
        return MemoryProfile(np.repeat(self._boxes, self._boxes))

    @staticmethod
    def constant(size: int, count: int) -> "SquareProfile":
        """``count`` boxes all of the same ``size``."""
        if size < 1:
            raise ProfileError(f"box size must be >= 1, got {size}")
        if count < 0:
            raise ProfileError(f"count must be >= 0, got {count}")
        return SquareProfile(np.full(count, size, dtype=np.int64))

    def sparkline(self, width: int = 72) -> str:
        """One-line terminal rendering of the profile's box sizes."""
        from repro.util.tables import sparkline as _spark

        return _spark(self._boxes.tolist(), width=width)


def as_box_iter(profile: "SquareProfile | Sequence[int] | Iterable[int]") -> Iterator[int]:
    """Normalize any box source into an iterator of int box sizes.

    Accepts a :class:`SquareProfile`, a sequence, or any (possibly
    infinite) iterable such as the samplers produced by
    :meth:`repro.profiles.BoxDistribution.sampler`.
    """
    if isinstance(profile, SquareProfile):
        return iter(profile)
    return (int(s) for s in profile)
