"""Worst-case (adversarial) memory profiles ``M_{a,b}(n)`` — Figure 1.

Section 3 of the paper constructs, for any ``(a,b,1)``-regular algorithm
with ``a > b``, a *bad* profile that forces the logarithmic gap: give the
algorithm a huge cache exactly while it scans (when it cannot exploit
memory) and a tiny cache while it recurses (when it could).

Concretely (with block size 1 and base-case size ``n0``):

    ``M(n0) = [ n0 ]``
    ``M(n)  = M(n/b) * a  ++  [ n ]``

i.e. ``a`` recursive copies of the bad profile for the subproblems,
followed by one box of size ``n`` that is consumed entirely by the final
size-``n`` scan.  The total potential of ``M(n)`` is
``(log_b(n/n0) + 1) * n**e`` with ``e = log_b a``, while the algorithm
completes only ``(n/n0)**e`` leaves — hence the ``Θ(log n)`` adaptivity
ratio (Theorem 2's lower bound).

This module builds ``M_{a,b}(n)`` explicitly (numpy), lazily (generator,
including the infinite *limit profile* ``M_{a,b}``), and in the
*box-order-perturbed* form where each node's big box is placed after an
arbitrary recursive copy (the paper's third robustness result).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from repro.cache.memo import memoized

if TYPE_CHECKING:
    from repro.algorithms.spec import RegularSpec
from repro.errors import ProfileError
from repro.profiles.square import SquareProfile
from repro.util.intmath import critical_exponent, ilog, is_power_of
from repro.util.rng import as_generator

__all__ = [
    "matched_worst_case_profile",
    "worst_case_profile",
    "worst_case_boxes",
    "worst_case_runs",
    "limit_profile_boxes",
    "worst_case_box_count",
    "worst_case_total_time",
    "worst_case_potential",
    "worst_case_bounded_potential",
    "order_perturbed_profile",
]

# A position rule maps (problem_size, path_key) -> index in [1, a] after
# which recursive copy the node's big box is placed. The canonical worst
# case places it after copy ``a`` (i.e. at the very end).
PositionRule = Callable[[int, tuple[int, ...]], int]


def _check_params(a: int, b: int, n: int, base_size: int) -> int:
    if not (isinstance(a, int) and isinstance(b, int)) or b < 2 or a < 1:
        raise ProfileError(f"need integer a >= 1, b >= 2; got a={a}, b={b}")
    if base_size < 1:
        raise ProfileError(f"base_size must be >= 1, got {base_size}")
    if n < base_size:
        raise ProfileError(f"n={n} smaller than base_size={base_size}")
    if n % base_size != 0 or not is_power_of(n // base_size, b):
        raise ProfileError(
            f"n={n} must equal base_size*b**k for integer k (base={base_size}, b={b})"
        )
    return ilog(n // base_size, b)


def _profile_key(
    a: int, b: int, n: int, base_size: int = 1
) -> tuple[int, int, int, int]:
    return (a, b, n, base_size)


@memoized(maxsize=16, key=_profile_key)
def worst_case_profile(
    a: int, b: int, n: int, base_size: int = 1
) -> SquareProfile:
    """The canonical bad profile ``M_{a,b}(n)`` as an explicit profile.

    ``n`` must be ``base_size * b**k``.  Raises :class:`ProfileError` for
    profiles that would exceed ~``3*10**7`` boxes; use
    :func:`worst_case_boxes` (lazy) beyond that.

    Memoized (small keyed LRU — profiles can run to hundreds of MB):
    :class:`SquareProfile` is immutable, so callers share one instance
    per ``(a, b, n, base_size)``.  ``worst_case_profile.cache_info()``
    exposes the counters.
    """
    depth = _check_params(a, b, n, base_size)
    count = worst_case_box_count(a, b, n, base_size)
    if count > 3 * 10**7:
        raise ProfileError(
            f"M_{{{a},{b}}}({n}) has {count} boxes; too large to materialize "
            "- use worst_case_boxes() instead"
        )
    # Iterative bottom-up tiling: M(size*b) = tile(M(size), a) ++ [size*b].
    boxes = np.array([base_size], dtype=np.int64)
    size = base_size
    for _ in range(depth):
        size *= b
        boxes = np.concatenate([np.tile(boxes, a), np.array([size], dtype=np.int64)])
    return SquareProfile(boxes)


def worst_case_boxes(
    a: int, b: int, n: int, base_size: int = 1
) -> Iterator[int]:
    """Lazily yield the boxes of ``M_{a,b}(n)`` in order.

    Streams in O(depth) memory; recursion depth equals the tree depth
    ``log_b(n/base_size)``, far below Python's limit.
    """
    depth = _check_params(a, b, n, base_size)

    def rec(level: int) -> Iterator[int]:
        if level == 0:
            yield base_size
            return
        for _ in range(a):
            yield from rec(level - 1)
        yield base_size * b**level

    yield from rec(depth)


def worst_case_runs(
    a: int, b: int, n: int, base_size: int = 1
) -> Iterator[tuple[int, int]]:
    """Lazily yield ``M_{a,b}(n)`` as maximal ``(size, count)`` runs.

    Native run emission for the chunked fast path: the only repeated
    adjacency in the recursive construction is the block of ``a``
    base-size boxes at the bottom of each depth-1 node (adjacent
    recursive copies never merge across their boundary because every
    copy ends with its own big box), so with the depth-1 block emitted
    as one run the flat output *is* the maximal RLE of the profile —
    identical to ``worst_case_profile(...).runs()`` but in O(depth)
    memory and without materializing the ``Θ(a^D)`` boxes.
    """
    depth = _check_params(a, b, n, base_size)

    def rec(level: int) -> Iterator[tuple[int, int]]:
        if level == 0:
            yield base_size, 1
            return
        if level == 1:
            yield base_size, a
            yield base_size * b, 1
            return
        for _ in range(a):
            yield from rec(level - 1)
        yield base_size * b**level, 1

    yield from rec(depth)


def limit_profile_boxes(a: int, b: int, base_size: int = 1) -> Iterator[int]:
    """The infinite *limit profile* ``M_{a,b}``.

    ``M(n)`` is a prefix of ``M(n*b)`` (the recursive construction reuses
    the previous profile as its first copy), so the sequence of profiles
    converges to a well-defined infinite profile; this generator streams
    it: after emitting ``M(n)``, it emits copies ``2..a`` of ``M(n)`` and
    the box ``n*b``, and so on forever.
    """
    if b < 2 or a < 1:
        raise ProfileError(f"need a >= 1, b >= 2; got a={a}, b={b}")
    if base_size < 1:
        raise ProfileError(f"base_size must be >= 1, got {base_size}")
    yield base_size
    size = base_size
    while True:
        next_size = size * b
        for _ in range(a - 1):
            yield from worst_case_boxes(a, b, size, base_size)
        yield next_size
        size = next_size


def worst_case_box_count(a: int, b: int, n: int, base_size: int = 1) -> int:
    """Exact number of boxes in ``M_{a,b}(n)``: ``(a**(D+1)-1)/(a-1)``
    with ``D = log_b(n/base_size)`` (or ``D+1`` when ``a == 1``)."""
    depth = _check_params(a, b, n, base_size)
    if a == 1:
        return depth + 1
    return (a ** (depth + 1) - 1) // (a - 1)


def worst_case_total_time(a: int, b: int, n: int, base_size: int = 1) -> int:
    """Exact total duration (sum of box sizes) of ``M_{a,b}(n)``.

    Satisfies ``T(n) = a*T(n/b) + n``; in closed form
    ``T(n) = sum_{k=0..D} a**(D-k) * base*b**k``.
    """
    depth = _check_params(a, b, n, base_size)
    return sum(a ** (depth - k) * base_size * b**k for k in range(depth + 1))


def worst_case_potential(
    a: int, b: int, n: int, base_size: int = 1, exponent: float | None = None
) -> float:
    """Exact total potential ``sum |box|**e`` of ``M_{a,b}(n)``.

    Level ``k`` (from the leaves, ``k=0``) contributes ``a**(D-k)`` boxes
    of size ``base*b**k``.  When ``a == b**e`` exactly, every level
    contributes the same ``n**e`` and the sum is ``(D+1)*n**e`` — the
    ``Θ(log n)`` factor of the worst-case gap.
    """
    depth = _check_params(a, b, n, base_size)
    e = critical_exponent(a, b) if exponent is None else exponent
    return float(
        sum(a ** (depth - k) * float(base_size * b**k) ** e for k in range(depth + 1))
    )


def worst_case_bounded_potential(
    a: int,
    b: int,
    n: int,
    bound: int,
    base_size: int = 1,
    exponent: float | None = None,
) -> float:
    """Exact ``sum min(bound, |box|)**e`` over ``M_{a,b}(n)``'s boxes."""
    depth = _check_params(a, b, n, base_size)
    e = critical_exponent(a, b) if exponent is None else exponent
    total = 0.0
    for k in range(depth + 1):
        size = base_size * b**k
        total += a ** (depth - k) * float(min(size, bound)) ** e
    return total


def order_perturbed_profile(
    a: int,
    b: int,
    n: int,
    base_size: int = 1,
    position_rule: PositionRule | None = None,
    rng: object = None,
) -> SquareProfile:
    """Box-order perturbation of ``M_{a,b}(n)``.

    In the recursive construction, the size-``m`` box of each node is
    placed after copy ``position_rule(m, path)`` (1-indexed) of the ``a``
    recursive instances, instead of always after the last.  When no rule
    is given, positions are chosen independently and uniformly at random
    (the "random" variant of the paper's third smoothing; pass a rule for
    the adversarial variant).  The paper proves the result remains a
    worst-case profile *with probability one*.
    """
    depth = _check_params(a, b, n, base_size)
    gen = as_generator(rng)

    if position_rule is None:
        def position_rule(size: int, path: tuple[int, ...]) -> int:  # noqa: F811
            return int(gen.integers(1, a + 1))

    count = worst_case_box_count(a, b, n, base_size)
    if count > 3 * 10**7:
        raise ProfileError(
            f"order-perturbed M_{{{a},{b}}}({n}) has {count} boxes; too large"
        )
    out = np.empty(count, dtype=np.int64)
    cursor = 0

    # Explicit stack of frames: (size, path, next_copy_index, big_box_after).
    def build(size: int, path: tuple[int, ...]) -> None:
        nonlocal cursor
        if size == base_size:
            out[cursor] = base_size
            cursor += 1
            return
        pos = position_rule(size, path)
        if not 1 <= pos <= a:
            raise ProfileError(
                f"position rule returned {pos}, must be in [1, {a}]"
            )
        child = size // b
        for i in range(1, a + 1):
            build(child, path + (i,))
            if i == pos:
                out[cursor] = size
                cursor += 1

    # Depth is small (log_b n) but fan-out is large; recursion depth is
    # bounded by the tree depth so Python's default limit is fine.
    build(n, ())
    assert cursor == count
    return SquareProfile(out)


def matched_worst_case_profile(spec: RegularSpec, n: int) -> SquareProfile:
    """Worst-case profile matched to a spec's *scan placement*.

    The canonical ``M_{a,b}(n)`` assumes trailing scans (the paper's
    w.l.o.g. normal form); an algorithm whose scans run elsewhere simply
    de-synchronizes from it (see the ``ablation`` and ``randomized``
    experiments).  This builder generalizes the construction: each node
    contributes one box per non-empty scan piece, of exactly that piece's
    length, positioned around the recursive copies the way the spec's
    placement positions the pieces.  For END placement it reduces to the
    canonical profile.

    Each box is still exactly consumed by its scan piece, so the profile
    completes the algorithm with minimum per-box progress and total
    potential ``Θ(n^e log n)`` — the gap survives every static placement
    once the adversary is allowed to know it.
    """
    depth = spec.validate_problem_size(n)
    boxes: list[int] = []

    def rec(size: int) -> None:
        if size <= spec.base_size:
            boxes.append(spec.base_size)
            return
        pieces = spec.scan_pieces(size)
        child = size // spec.b
        for i in range(spec.a):
            if pieces[i]:
                boxes.append(pieces[i])
            rec(child)
        if pieces[spec.a]:
            boxes.append(pieces[spec.a])

    rec(n)
    return SquareProfile(np.asarray(boxes, dtype=np.int64))
