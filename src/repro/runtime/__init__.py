"""``repro.runtime`` — the unified experiment execution layer.

Everything that *runs* experiments lives here: the schema-versioned
:class:`RunArtifact` (the immutable, JSON-round-trippable record of one
run), the :class:`RunManifest` (the per-run summary with timings and
speedup), per-run :mod:`instrumentation` counters, and the
:class:`ExperimentRunner` / :func:`run_one` execution path that the CLI,
tests, and benchmarks all share.  See ``docs/ARTIFACTS.md``.

The runner half of the package is exposed lazily: ``runner`` imports the
experiment registry, which imports the experiment modules, which import
the simulation layer — and the simulation layer imports
``repro.runtime.instrumentation``.  Loading the leaf modules eagerly and
the runner on first attribute access keeps that chain acyclic.
"""

from repro.runtime.artifact import SCHEMA_VERSION, ResultTable, RunArtifact
from repro.runtime.instrumentation import Counters, collect, record
from repro.runtime.manifest import ManifestEntry, RunManifest
from repro.runtime.provenance import git_revision, repro_version
from repro.runtime.request import WIRE_VERSION, RunRequest, RunResponse

__all__ = [
    "SCHEMA_VERSION",
    "WIRE_VERSION",
    "ResultTable",
    "RunArtifact",
    "RunRequest",
    "RunResponse",
    "ManifestEntry",
    "RunManifest",
    "Counters",
    "collect",
    "record",
    "git_revision",
    "repro_version",
    "ExperimentRunner",
    "RunnerPool",
    "execute",
    "run_one",
]


def __getattr__(name):  # pragma: no cover - thin lazy-import shim
    """Lazily expose the runner to avoid the registry import cycle."""
    if name in ("ExperimentRunner", "RunnerPool", "execute", "run_one"):
        from repro.runtime import runner

        return getattr(runner, name)
    raise AttributeError(f"module 'repro.runtime' has no attribute {name!r}")
