"""Schema-versioned, immutable experiment artifacts.

A :class:`RunArtifact` is the machine-readable record of one experiment
run: the claim it tested, the tables it printed, the machine-checkable
metrics, the verdict, and the run's provenance (seed, configuration,
wall time, instrumentation counters, package version, git revision).
Artifacts are frozen — they are evidence for a theorem and never change
after the run that produced them — and round-trip losslessly through
JSON (``to_json``/``from_json``), so a run can be archived, diffed, and
re-verified without re-executing anything.

``SCHEMA_VERSION`` is bumped whenever the serialized layout changes;
``from_dict`` refuses versions it does not understand rather than
guessing.  Version 2 added the cache bookkeeping fields (``cache_hit``,
``saved_wall_time_s``) stamped by the :mod:`repro.cache` layer; version 3
added ``rng_scheme``, the identifier of the random-number addressing
scheme the run's draws came from (see :mod:`repro.util.rng` — the
counter-based refactor changed every randomized trial, and the scheme
field makes that change explicit and diffable).  Older payloads still
load (missing fields default to ``None``).  The rendered text
(:meth:`RunArtifact.render`) is the canonical human-readable report and
is kept byte-compatible with the historical ``ExperimentResult``
rendering — cache bookkeeping never reaches it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from repro.errors import ArtifactError
from repro.util.tables import format_kv, format_table

__all__ = ["SCHEMA_VERSION", "ResultTable", "RunArtifact"]

SCHEMA_VERSION = 3


def _jsonify(value: Any, where: str) -> Any:
    """Coerce ``value`` to plain JSON-serializable Python, or raise.

    Numpy scalars become their Python equivalents; tuples become lists
    (JSON has no tuple).  Anything else non-primitive is refused loudly:
    an artifact that cannot round-trip is not an artifact.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_jsonify(v, where) for v in value]
    if isinstance(value, Mapping):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise ArtifactError(
                    f"non-string key {k!r} in {where} cannot be serialized"
                )
            out[k] = _jsonify(v, f"{where}[{k!r}]")
        return out
    raise ArtifactError(
        f"value of type {type(value).__name__} in {where} is not "
        "JSON-serializable; artifacts carry only scalars, strings, lists, "
        "and string-keyed mappings"
    )


@dataclass(frozen=True)
class ResultTable:
    """One printed table of an experiment."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]

    def render(self, precision: int = 4) -> str:
        return format_table(self.headers, self.rows, title=self.title,
                            precision=precision)

    def to_dict(self) -> dict[str, Any]:
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": _jsonify(self.rows, f"table {self.title!r}"),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResultTable":
        try:
            return cls(
                title=payload["title"],
                headers=tuple(payload["headers"]),
                rows=tuple(tuple(row) for row in payload["rows"]),
            )
        except (KeyError, TypeError) as exc:
            raise ArtifactError(f"malformed table payload: {exc}") from None


@dataclass(frozen=True)
class RunArtifact:
    """The immutable, serializable record of one experiment run.

    ``metrics`` carries the machine-checkable scalars the test suite
    asserts on (``reproduced`` above all); ``tables`` are the printed
    reproduction evidence; ``verdict`` is the one-line judgement.
    ``wall_time_s`` and ``counters`` are filled by the runtime layer
    (``None``/empty when the artifact was finalized outside a runner);
    ``repro_version``/``git_revision`` stamp provenance.  ``cache_hit``
    and ``saved_wall_time_s`` are stamped by the cache-aware runner:
    ``None`` means the run never consulted a cache, ``True`` means this
    artifact came out of the store (``wall_time_s`` is then 0.0 and
    ``saved_wall_time_s`` the stored run's compute time).
    """

    experiment_id: str
    title: str
    claim: str
    tables: tuple[ResultTable, ...] = ()
    metrics: dict[str, Any] = field(default_factory=dict)
    verdict: str = ""
    notes: str = ""
    seed: int | None = None
    quick: bool | None = None
    wall_time_s: float | None = None
    counters: dict[str, int | float] = field(default_factory=dict)
    cache_hit: bool | None = None
    saved_wall_time_s: float | None = None
    rng_scheme: str | None = None
    repro_version: str = ""
    git_revision: str | None = None
    schema_version: int = SCHEMA_VERSION

    # -- rendering (byte-compatible with the pre-runtime text reports) --
    def render(self, precision: int = 4) -> str:
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"claim: {self.claim}",
        ]
        for table in self.tables:
            parts.append("")
            parts.append(table.render(precision=precision))
        if self.metrics:
            parts.append("")
            parts.append(format_kv(self.metrics, precision=precision))
        if self.notes:
            parts.append("")
            parts.append(self.notes)
        if self.verdict:
            parts.append("")
            parts.append(f"verdict: {self.verdict}")
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()

    @property
    def reproduced(self) -> bool:
        """The headline pass/fail: absent metric counts as reproduced,
        matching the CLI's historical failure accounting."""
        return bool(self.metrics.get("reproduced", True))

    def without_timing(self) -> "RunArtifact":
        """A copy with the non-deterministic fields (wall time, cache
        bookkeeping) cleared — the payload that must be identical across
        worker counts *and* across cached vs live execution."""
        return replace(
            self, wall_time_s=None, cache_hit=None, saved_wall_time_s=None
        )

    def without_cache_stamp(self) -> "RunArtifact":
        """A copy with only the cache bookkeeping cleared (wall time
        kept) — the canonical form the artifact store persists, so a
        stored entry remembers its compute cost but not how it was
        produced."""
        return replace(self, cache_hit=None, saved_wall_time_s=None)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "tables": [table.to_dict() for table in self.tables],
            "metrics": _jsonify(self.metrics, "metrics"),
            "verdict": self.verdict,
            "notes": self.notes,
            "seed": self.seed,
            "quick": self.quick,
            "wall_time_s": self.wall_time_s,
            "counters": _jsonify(self.counters, "counters"),
            "cache_hit": self.cache_hit,
            "saved_wall_time_s": self.saved_wall_time_s,
            "rng_scheme": self.rng_scheme,
            "repro_version": self.repro_version,
            "git_revision": self.git_revision,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunArtifact":
        version = payload.get("schema_version")
        if not isinstance(version, int) or not 1 <= version <= SCHEMA_VERSION:
            raise ArtifactError(
                f"unsupported artifact schema_version {version!r}; "
                f"this build reads versions 1..{SCHEMA_VERSION}"
            )
        try:
            return cls(
                experiment_id=payload["experiment_id"],
                title=payload["title"],
                claim=payload["claim"],
                tables=tuple(
                    ResultTable.from_dict(t) for t in payload.get("tables", [])
                ),
                metrics=dict(payload.get("metrics", {})),
                verdict=payload.get("verdict", ""),
                notes=payload.get("notes", ""),
                seed=payload.get("seed"),
                quick=payload.get("quick"),
                wall_time_s=payload.get("wall_time_s"),
                counters=dict(payload.get("counters", {})),
                cache_hit=payload.get("cache_hit"),
                saved_wall_time_s=payload.get("saved_wall_time_s"),
                rng_scheme=payload.get("rng_scheme"),
                repro_version=payload.get("repro_version", ""),
                git_revision=payload.get("git_revision"),
                schema_version=version,
            )
        except (KeyError, TypeError) as exc:
            raise ArtifactError(f"malformed artifact payload: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> "RunArtifact":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"artifact is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ArtifactError(
                f"artifact JSON must be an object, got {type(payload).__name__}"
            )
        return cls.from_dict(payload)
