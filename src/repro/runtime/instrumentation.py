"""Lightweight per-run instrumentation counters.

The runtime layer wants to report *how much work* an experiment did —
simulator runs, boxes consumed, Monte-Carlo estimates and trials — next
to its wall time, without threading an accounting object through every
call signature.  This module provides the minimal alternative: a stack
of active :class:`Counters` collectors and a module-level :func:`record`
that the measurement substrates (``simulation.symbolic``,
``simulation.montecarlo``) call at the point where a ``RunRecord`` or
``MCEstimate`` is produced.  When no collector is active, :func:`record`
is a no-op costing one truthiness check, so library users outside the
experiment runner pay nothing.

Counters are per-process: trials that an experiment itself fans out to a
nested process pool (``estimate_expected_cost(..., n_jobs>1)``) are
counted in the child processes and not surfaced here.  The experiment
runner collects inside the worker process that executes the experiment,
so the registry path always sees accurate counts for the default
in-process configuration.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["Counters", "collect", "record"]


class Counters:
    """A bag of named, monotonically accumulating counters."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: dict[str, int | float] = {}

    def add(self, name: str, amount: int | float = 1) -> None:
        self._data[name] = self._data.get(name, 0) + amount

    def get(self, name: str) -> int | float:
        return self._data.get(name, 0)

    def as_dict(self) -> dict[str, int | float]:
        """Snapshot, sorted by counter name for stable serialization."""
        return {name: self._data[name] for name in sorted(self._data)}

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self.as_dict()!r})"


# The active collectors, innermost last.  A plain module-level list (not
# a contextvar): collection is per-process and the runner collects around
# a synchronous call, so re-entrancy is the only shape that matters.
_STACK: list[Counters] = []


def record(name: str, amount: int | float = 1) -> None:
    """Add ``amount`` to counter ``name`` in every active collector.

    No-op when no :func:`collect` context is active.  Recording into all
    stacked collectors lets an outer aggregate (e.g. a whole-suite
    collector) see work counted by inner per-experiment collectors too.
    """
    if not _STACK:
        return
    for counters in _STACK:
        counters.add(name, amount)


@contextmanager
def collect() -> Iterator[Counters]:
    """Activate a fresh :class:`Counters` for the duration of the block."""
    counters = Counters()
    # Scoped push/pop of the collector stack: every append is paired
    # with the remove in the finally, so nothing leaks across blocks.
    _STACK.append(counters)  # repro-lint: disable=effect-global-mutation
    try:
        yield counters
    finally:
        _STACK.remove(counters)  # repro-lint: disable=effect-global-mutation
