"""Lightweight per-run instrumentation counters.

The runtime layer wants to report *how much work* an experiment did —
simulator runs, boxes consumed, Monte-Carlo estimates and trials — next
to its wall time, without threading an accounting object through every
call signature.  This module provides the minimal alternative: a stack
of active :class:`Counters` collectors and a module-level :func:`record`
that the measurement substrates (``simulation.symbolic``,
``simulation.montecarlo``) call at the point where a ``RunRecord`` or
``MCEstimate`` is produced.  When no collector is active, :func:`record`
is a no-op costing one truthiness check, so library users outside the
experiment runner pay nothing.

Counters are per-*thread* within a process: the active-collector stack
lives in a ``threading.local``, so concurrent ``execute()`` calls on an
executor's worker threads (the serve daemon's ``--jobs 0`` mode runs up
to ``max_inflight`` distinct keys at once) each collect only their own
work — cross-thread contamination would be written into the store and
served, breaking the byte-identity contract.  Trials that an experiment
itself fans out to a nested process pool
(``estimate_expected_cost(..., n_jobs>1)``) are counted in the child
processes and not surfaced here.  The experiment runner collects inside
the worker process/thread that executes the experiment, so the registry
path always sees accurate counts for the default configuration.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Counters", "collect", "record"]


class Counters:
    """A bag of named, monotonically accumulating counters."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: dict[str, int | float] = {}

    def add(self, name: str, amount: int | float = 1) -> None:
        self._data[name] = self._data.get(name, 0) + amount

    def get(self, name: str) -> int | float:
        return self._data.get(name, 0)

    def as_dict(self) -> dict[str, int | float]:
        """Snapshot, sorted by counter name for stable serialization."""
        return {name: self._data[name] for name in sorted(self._data)}

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self.as_dict()!r})"


# The active collectors, innermost last, held per thread.  A
# threading.local (not a plain module list): the serve daemon's jobs=0
# mode runs execute() concurrently on executor threads, and a shared
# stack would let concurrent runs record into each other's collectors —
# corrupted counters that land in the persistent store.  Each thread
# nests its own collect() blocks; record() and collect() always run on
# the same thread as the experiment, so per-thread scoping loses
# nothing.  (run_in_executor does not propagate contextvars, so a
# ContextVar would behave identically here with more machinery.)
_LOCAL = threading.local()


def _stack() -> list[Counters]:
    """This thread's active-collector stack, created on first use."""
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack  # repro-lint: disable=effect-global-mutation
    return stack


def record(name: str, amount: int | float = 1) -> None:
    """Add ``amount`` to counter ``name`` in every collector active on
    this thread.

    No-op when no :func:`collect` context is active.  Recording into all
    stacked collectors lets an outer aggregate (e.g. a whole-suite
    collector) see work counted by inner per-experiment collectors too.
    """
    stack = getattr(_LOCAL, "stack", None)
    if not stack:
        return
    for counters in stack:
        counters.add(name, amount)


@contextmanager
def collect() -> Iterator[Counters]:
    """Activate a fresh :class:`Counters` for the duration of the block.

    Scoped to the calling thread: a collector never sees work recorded
    by other threads' runs."""
    counters = Counters()
    stack = _stack()
    # Scoped push/pop of the collector stack: every append is paired
    # with the remove in the finally, so nothing leaks across blocks.
    stack.append(counters)
    try:
        yield counters
    finally:
        stack.remove(counters)
