"""The run manifest: one JSON summary of a whole registry run.

Where :class:`~repro.runtime.artifact.RunArtifact` records one
experiment, the manifest records the *run*: which experiments executed
under which configuration (seed, quick/full, worker count), how long
each took, the instrumentation counters each accumulated, and the
aggregate timing that makes parallel *and* cache speedup visible —
``experiment_wall_time_s`` is the sum of per-experiment live compute
times (a warm cache hit contributes 0.0), ``saved_wall_time_s`` is the
compute the cache hits avoided, and ``total_wall_time_s`` is the elapsed
wall time of the whole run.  ``speedup`` compares the serial-equivalent
cost (live + saved) against elapsed time; ``cache_speedup`` compares it
against live compute alone and is ``float("inf")`` when every entry was
a hit — a fully warm run does no live compute, so dividing by
``experiment_wall_time_s == 0.0`` would otherwise blow up.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import ArtifactError
from repro.runtime.artifact import SCHEMA_VERSION, RunArtifact, _jsonify

__all__ = ["ManifestEntry", "RunManifest"]


@dataclass(frozen=True)
class ManifestEntry:
    """Per-experiment line of the manifest."""

    experiment_id: str
    verdict: str
    reproduced: bool
    wall_time_s: float | None
    counters: dict[str, int | float] = field(default_factory=dict)
    artifact: str | None = None  # file name of the sibling artifact JSON
    cache_hit: bool | None = None  # None: run never consulted a cache
    saved_wall_time_s: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "verdict": self.verdict,
            "reproduced": self.reproduced,
            "wall_time_s": self.wall_time_s,
            "counters": _jsonify(self.counters, "counters"),
            "artifact": self.artifact,
            "cache_hit": self.cache_hit,
            "saved_wall_time_s": self.saved_wall_time_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ManifestEntry":
        try:
            return cls(
                experiment_id=payload["experiment_id"],
                verdict=payload.get("verdict", ""),
                reproduced=payload.get("reproduced", True),
                wall_time_s=payload.get("wall_time_s"),
                counters=dict(payload.get("counters", {})),
                artifact=payload.get("artifact"),
                cache_hit=payload.get("cache_hit"),
                saved_wall_time_s=payload.get("saved_wall_time_s"),
            )
        except (KeyError, TypeError) as exc:
            raise ArtifactError(f"malformed manifest entry: {exc}") from None


@dataclass(frozen=True)
class RunManifest:
    """Summary of one runner invocation over a set of experiments."""

    seed: int
    quick: bool
    jobs: int
    total_wall_time_s: float | None
    entries: tuple[ManifestEntry, ...] = ()
    repro_version: str = ""
    git_revision: str | None = None
    schema_version: int = SCHEMA_VERSION
    #: Counters of the auto-GC pass that followed this run (see
    #: repro.cache.gc.GCReport.to_dict), or None when no GC ran.
    gc: dict[str, Any] | None = None

    @classmethod
    def build(
        cls,
        artifacts: Sequence[RunArtifact],
        seed: int,
        quick: bool,
        jobs: int,
        total_wall_time_s: float | None = None,
        artifact_names: Mapping[str, str] | None = None,
        gc: "dict[str, Any] | None" = None,
    ) -> "RunManifest":
        names = artifact_names or {}
        entries = tuple(
            ManifestEntry(
                experiment_id=a.experiment_id,
                verdict=a.verdict,
                reproduced=a.reproduced,
                wall_time_s=a.wall_time_s,
                counters=dict(a.counters),
                artifact=names.get(a.experiment_id),
                cache_hit=a.cache_hit,
                saved_wall_time_s=a.saved_wall_time_s,
            )
            for a in artifacts
        )
        version = artifacts[0].repro_version if artifacts else ""
        revision = artifacts[0].git_revision if artifacts else None
        return cls(
            seed=seed,
            quick=quick,
            jobs=jobs,
            total_wall_time_s=total_wall_time_s,
            entries=entries,
            repro_version=version,
            git_revision=revision,
            gc=gc,
        )

    @property
    def experiment_wall_time_s(self) -> float:
        """Sum of per-experiment *live compute* wall times.  A warm cache
        hit recomputes nothing, so it contributes 0.0 here."""
        return sum(e.wall_time_s or 0.0 for e in self.entries)

    @property
    def saved_wall_time_s(self) -> float:
        """Compute time the cache hits avoided (sum of the stored runs'
        wall times over all hit entries)."""
        return sum(e.saved_wall_time_s or 0.0 for e in self.entries)

    @property
    def cache_hits(self) -> int:
        """How many entries were served from the artifact store."""
        return sum(1 for e in self.entries if e.cache_hit)

    @property
    def serial_equivalent_wall_time_s(self) -> float:
        """What the run would have cost computed serially with a cold
        cache: live compute plus the compute the hits avoided."""
        return self.experiment_wall_time_s + self.saved_wall_time_s

    @property
    def speedup(self) -> float | None:
        """Serial-equivalent time over elapsed time; >1 means the worker
        pool overlapped real work and/or the cache skipped it.  ``None``
        until timings exist."""
        if not self.total_wall_time_s or self.total_wall_time_s <= 0:
            return None
        return self.serial_equivalent_wall_time_s / self.total_wall_time_s

    @property
    def cache_speedup(self) -> float | None:
        """Serial-equivalent time over *live compute* time: how much the
        artifact store amortized, independent of parallelism.  When every
        entry is a cache hit, ``experiment_wall_time_s`` is exactly 0.0 —
        the guard returns ``float("inf")`` instead of dividing by zero.
        ``None`` when nothing was saved and nothing ran (no timings)."""
        live = self.experiment_wall_time_s
        serial = self.serial_equivalent_wall_time_s
        if live <= 0.0:
            return float("inf") if serial > 0.0 else None
        return serial / live

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "seed": self.seed,
            "quick": self.quick,
            "jobs": self.jobs,
            "total_wall_time_s": self.total_wall_time_s,
            "experiment_wall_time_s": self.experiment_wall_time_s,
            "saved_wall_time_s": self.saved_wall_time_s,
            # serial_equivalent_wall_time_s is what speedup is derived
            # from; a round-tripped manifest must not lose it.
            "serial_equivalent_wall_time_s": self.serial_equivalent_wall_time_s,
            "cache_hits": self.cache_hits,
            "speedup": self.speedup,
            "gc": self.gc,
            "repro_version": self.repro_version,
            "git_revision": self.git_revision,
            "experiments": [entry.to_dict() for entry in self.entries],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        version = payload.get("schema_version")
        if not isinstance(version, int) or not 1 <= version <= SCHEMA_VERSION:
            raise ArtifactError(
                f"unsupported manifest schema_version {version!r}; "
                f"this build reads versions 1..{SCHEMA_VERSION}"
            )
        try:
            return cls(
                seed=payload["seed"],
                quick=payload["quick"],
                jobs=payload["jobs"],
                total_wall_time_s=payload.get("total_wall_time_s"),
                entries=tuple(
                    ManifestEntry.from_dict(e)
                    for e in payload.get("experiments", [])
                ),
                repro_version=payload.get("repro_version", ""),
                git_revision=payload.get("git_revision"),
                schema_version=version,
                gc=payload.get("gc"),
            )
        except (KeyError, TypeError) as exc:
            raise ArtifactError(f"malformed manifest payload: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"manifest is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ArtifactError(
                f"manifest JSON must be an object, got {type(payload).__name__}"
            )
        return cls.from_dict(payload)
