"""Provenance stamps for run artifacts: package version and git revision.

Artifacts are only evidence if they say what produced them.  Both lookups
are cached per process: the version never changes within a run and the
``git`` subprocess call is too slow to repeat per experiment.
"""

from __future__ import annotations

import subprocess
from functools import lru_cache
from pathlib import Path

__all__ = ["repro_version", "git_revision"]


def repro_version() -> str:
    from repro import __version__

    return __version__


@lru_cache(maxsize=1)
def git_revision() -> str | None:
    """Short git revision of the source tree, or ``None`` when the
    package runs outside a git checkout (installed wheel, sdist)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    revision = proc.stdout.strip()
    return revision or None
