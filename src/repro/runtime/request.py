"""The canonical request/response pair of the execution API (wire v2).

Before this module existed, three consumers each carried their own
ad-hoc ``(experiment, quick, seed, cache, jobs)`` argument tuple: the
CLI's ``repro run``, the :class:`~repro.runtime.runner.ExperimentRunner`
pool submissions, and (new in the same redesign) the ``repro serve``
daemon's HTTP query strings.  :class:`RunRequest` replaces all three
with one typed, frozen, picklable object — the *complete* statement of
"execute this experiment under this configuration" — and
:class:`RunResponse` is the matching typed result: the finalized
artifact plus where it came from (``"store"`` or ``"computed"``).

Both ends serialize through ``to_dict``/``from_dict`` under
``WIRE_VERSION`` — the schema the daemon speaks on the wire and
``docs/API.md`` documents.  The *artifact* payload inside a response is
byte-identical to what ``repro run --json`` writes for the same key, so
a service consumer and an offline run can be diffed directly.

``RunRequest.coalesce_key`` names the pure-computation identity
``(experiment_id, quick, seed)``: two requests with equal coalesce keys
must produce bit-identical artifacts (the PR-2 determinism contract),
which is what makes in-flight deduplication in the daemon sound.  The
``cache``/``cache_dir`` fields are *transport* configuration — they say
how to consult the store, never what the result contains — and are
deliberately excluded from the coalesce key.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import ExperimentError
from repro.runtime.artifact import RunArtifact

__all__ = [
    "WIRE_VERSION",
    "CACHE_MODES",
    "SERVED_FROM",
    "RunRequest",
    "RunResponse",
]

#: Version of the request/response wire schema (``docs/API.md``).
WIRE_VERSION = 2

#: How a run may consult the artifact store.
CACHE_MODES = ("off", "auto", "refresh")

#: Where a response's artifact came from.
SERVED_FROM = ("store", "computed")


@dataclass(frozen=True)
class RunRequest:
    """One experiment execution, fully specified.

    ``experiment_id``/``quick``/``seed`` identify the pure computation;
    ``cache`` (``"off"``/``"auto"``/``"refresh"``) and ``cache_dir``
    configure how the artifact store is consulted.  Validation happens
    at construction so a malformed request can never travel — the
    registry lookup itself stays at execution time (the registry is a
    heavyweight import and unknown ids must fail *there* with the
    catalogue in hand).
    """

    experiment_id: str
    quick: bool = True
    seed: int = 0
    cache: str = "auto"
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.experiment_id, str) or not self.experiment_id:
            raise ExperimentError(
                f"experiment_id must be a non-empty string, "
                f"got {self.experiment_id!r}"
            )
        if not isinstance(self.quick, bool):
            raise ExperimentError(f"quick must be a bool, got {self.quick!r}")
        # bool is an int subclass; refuse it explicitly for seed.
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ExperimentError(f"seed must be an int, got {self.seed!r}")
        if self.cache not in CACHE_MODES:
            raise ExperimentError(
                f"cache mode must be one of {CACHE_MODES}, got {self.cache!r}"
            )
        if self.cache_dir is not None and not isinstance(self.cache_dir, str):
            raise ExperimentError(
                f"cache_dir must be a string or None, got {self.cache_dir!r}"
            )

    @property
    def coalesce_key(self) -> tuple[str, bool, int]:
        """The pure-computation identity: requests with equal coalesce
        keys are interchangeable (bit-identical artifacts), regardless
        of their cache transport configuration."""
        return (self.experiment_id, self.quick, self.seed)

    def with_cache(
        self, cache: str, cache_dir: str | None = None
    ) -> "RunRequest":
        """A copy with the transport fields replaced (identity kept)."""
        return replace(self, cache=cache, cache_dir=cache_dir)

    def to_dict(self) -> dict[str, Any]:
        """The wire form.  ``cache_dir`` is host-local configuration and
        never travels; the serving side supplies its own store."""
        return {
            "experiment_id": self.experiment_id,
            "quick": self.quick,
            "seed": self.seed,
            "cache": self.cache,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRequest":
        try:
            return cls(
                experiment_id=payload["experiment_id"],
                quick=payload.get("quick", True),
                seed=payload.get("seed", 0),
                cache=payload.get("cache", "auto"),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(
                f"malformed run request payload: {exc}"
            ) from None


@dataclass(frozen=True)
class RunResponse:
    """The typed result of executing one :class:`RunRequest`.

    ``artifact`` is the finalized run artifact in exactly the form the
    requesting path would have produced offline (a store hit carries the
    warm-read stamp: ``wall_time_s=0.0``, ``cache_hit=True``,
    ``saved_wall_time_s=<stored compute time>``).  ``served_from`` says
    which way the result materialized: ``"store"`` (a warm read) or
    ``"computed"`` (a live execution, stored afterwards unless
    ``cache="off"``).
    """

    request: RunRequest
    artifact: RunArtifact
    served_from: str = "computed"
    wire_version: int = field(default=WIRE_VERSION)

    def __post_init__(self) -> None:
        if self.served_from not in SERVED_FROM:
            raise ExperimentError(
                f"served_from must be one of {SERVED_FROM}, "
                f"got {self.served_from!r}"
            )

    @property
    def hit(self) -> bool:
        """True when the artifact was read from the store."""
        return self.served_from == "store"

    def to_dict(self) -> dict[str, Any]:
        return {
            "wire_version": self.wire_version,
            "request": self.request.to_dict(),
            "served_from": self.served_from,
            "artifact": self.artifact.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunResponse":
        version = payload.get("wire_version")
        if version != WIRE_VERSION:
            raise ExperimentError(
                f"unsupported wire_version {version!r}; "
                f"this build speaks version {WIRE_VERSION}"
            )
        try:
            return cls(
                request=RunRequest.from_dict(payload["request"]),
                artifact=RunArtifact.from_dict(payload["artifact"]),
                served_from=payload["served_from"],
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(
                f"malformed run response payload: {exc}"
            ) from None
