"""The experiment runner: one instrumented path for every execution.

All three consumers of the registry — the CLI, the test suite, and the
pytest-benchmark suite — drive experiments through this module, so
timing, instrumentation, and artifact finalization can never drift
between them.  :func:`run_one` executes a single experiment under a
``perf_counter`` timer and a :mod:`~repro.runtime.instrumentation`
collector; :class:`ExperimentRunner` fans a list of experiments over a
``ProcessPoolExecutor`` (``jobs > 1``) while preserving registration
order in the results.

Determinism across worker counts is by construction: every experiment is
a pure function of ``(quick, seed)`` with its own RNG stream derived
from the seed (the ``util.rng`` discipline), so no state is shared
between experiments and scheduling cannot influence results — only
``wall_time_s`` differs between ``jobs=1`` and ``jobs=N`` runs (compare
with :meth:`RunArtifact.without_timing`).

That same purity makes runs *cacheable*: ``cache="auto"`` consults the
content-addressed artifact store (:mod:`repro.cache`) keyed by
``(experiment id, quick, seed, code fingerprint)`` before computing — a
warm hit returns the stored artifact (stamped ``cache_hit=True``,
``wall_time_s=0.0``, ``saved_wall_time_s=<stored compute time>``), a
miss computes and stores.  ``cache="refresh"`` recomputes and overwrites
unconditionally; ``cache="off"`` (the default) is the PR-2 behavior,
byte for byte.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Iterator, Sequence

from repro.errors import ExperimentError
from repro.runtime import instrumentation
from repro.runtime.artifact import RunArtifact

__all__ = ["CACHE_MODES", "run_one", "ExperimentRunner"]

CACHE_MODES = ("off", "auto", "refresh")


def _check_cache_mode(cache: str) -> None:
    if cache not in CACHE_MODES:
        raise ExperimentError(
            f"cache mode must be one of {CACHE_MODES}, got {cache!r}"
        )


def _resolve_ids(ids: Sequence[str] | None) -> list[str]:
    """Expand ``None``/``["all"]`` to the full registry, validating early
    so a parallel run fails before any worker is spawned."""
    from repro.experiments.registry import EXPERIMENTS

    if ids is None or list(ids) == ["all"]:
        return list(EXPERIMENTS)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        raise ExperimentError(
            f"unknown experiment {unknown[0]!r}; known: {sorted(EXPERIMENTS)}"
        )
    return list(ids)


def run_one(
    experiment_id: str,
    quick: bool = True,
    seed: int = 0,
    cache: str = "off",
    cache_dir: "str | None" = None,
) -> RunArtifact:
    """Run one experiment with timing and instrumentation attached.

    This is the single execution path: it dispatches through the
    registry, measures wall time with ``perf_counter``, collects the
    box/trial counters the simulation layer records, and returns the
    finalized :class:`RunArtifact`.  Top-level (picklable) so process
    pools can call it directly.

    ``cache`` is ``"off"`` (always compute, no store I/O), ``"auto"``
    (return the stored artifact on a fingerprint-valid hit, else compute
    and store), or ``"refresh"`` (compute and overwrite the store).
    ``cache_dir`` overrides the store location (default: see
    :func:`repro.cache.default_cache_dir`).
    """
    _check_cache_mode(cache)
    from repro.experiments.registry import EXPERIMENTS

    try:
        exp = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None

    store = key = None
    if cache != "off":
        from repro.cache.store import Cache, cache_key_for

        store = Cache(cache_dir)
        key = cache_key_for(experiment_id, quick, seed)
        if cache == "auto":
            entry = store.get(key)
            if entry is not None:
                return replace(
                    entry.artifact,
                    wall_time_s=0.0,
                    cache_hit=True,
                    saved_wall_time_s=entry.stored_wall_time_s,
                )

    with instrumentation.collect() as counters:
        # Wall-time metadata: recorded on the artifact but excluded
        # from its bit-identity digest (timing fields are masked).
        start = time.perf_counter()  # repro-lint: disable=nondet-wallclock
        artifact = exp.runner(quick=quick, seed=seed)
        elapsed = time.perf_counter() - start  # repro-lint: disable=nondet-wallclock
    if not isinstance(artifact, RunArtifact):
        raise ExperimentError(
            f"experiment {experiment_id!r} returned "
            f"{type(artifact).__name__}; experiments must finalize into a "
            "RunArtifact (ExperimentResult.finalize)"
        )
    artifact = replace(artifact, wall_time_s=elapsed, counters=counters.as_dict())
    if store is not None and key is not None:
        store.put(key, artifact)
        artifact = replace(artifact, cache_hit=False)
    return artifact


@dataclass(frozen=True)
class ExperimentRunner:
    """Run registry experiments, optionally across a process pool.

    ``jobs=1`` executes in-process; ``jobs>1`` submits each experiment to
    a ``ProcessPoolExecutor`` and yields results in submission order, so
    rendered output is byte-identical at any worker count.  ``cache`` and
    ``cache_dir`` are forwarded to every :func:`run_one` call (each
    worker opens the store independently; puts are atomic so concurrent
    writers are safe).  After a cache-touching pass the store is
    garbage-collected under the environment budgets (see
    :meth:`_auto_gc` and ``docs/CACHE.md``), so it stays bounded
    without manual ``repro cache clear`` runs.
    """

    jobs: int = 1
    cache: str = "off"
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {self.jobs}")
        _check_cache_mode(self.cache)

    def run_iter(
        self,
        ids: Sequence[str] | None = None,
        quick: bool = True,
        seed: int = 0,
    ) -> Iterator[RunArtifact]:
        """Yield one finalized artifact per experiment, in request order."""
        targets = _resolve_ids(ids)
        if self.jobs == 1 or len(targets) <= 1:
            with self._sidecar_buffer():
                for eid in targets:
                    yield run_one(
                        eid, quick=quick, seed=seed,
                        cache=self.cache, cache_dir=self.cache_dir,
                    )
        else:
            workers = min(self.jobs, len(targets))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        run_one, eid, quick, seed, self.cache, self.cache_dir
                    )
                    for eid in targets
                ]
                for future in futures:
                    yield future.result()
        self._auto_gc()

    def _sidecar_buffer(self):
        """Coalesce per-access sidecar rewrites into one flush per pass.

        In-process runs buffer the ``.meta-*.json`` access records and
        write each touched entry's sidecar once when the pass ends
        (before :meth:`_auto_gc`, which reads them).  Pool workers
        (``jobs > 1``) keep the immediate per-access writes — the buffer
        is process-local and cannot see their accesses."""
        if self.cache == "off":
            return nullcontext()
        from repro.cache.gc import buffered_access_records

        return buffered_access_records()

    def _auto_gc(self) -> None:
        """Bound the artifact store after a run that touched it.

        Runs once per completed :meth:`run_iter` pass (never per
        experiment, never when ``cache="off"``) under the environment
        budgets — ``REPRO_CACHE_MAX_BYTES`` (default 1 GiB),
        ``REPRO_CACHE_MAX_ENTRIES``, ``REPRO_CACHE_MAX_AGE_DAYS`` —
        and is disabled entirely by ``REPRO_CACHE_GC=off``.  The
        report's counters persist in the store's ``.gc-state.json``
        (surfaced by ``repro cache stats`` and the run manifest)."""
        if self.cache == "off":
            return
        from repro.cache.gc import auto_collect

        auto_collect(self.cache_dir)

    def run(
        self,
        ids: Sequence[str] | None = None,
        quick: bool = True,
        seed: int = 0,
    ) -> list[RunArtifact]:
        """Like :meth:`run_iter`, collected into a list."""
        return list(self.run_iter(ids, quick=quick, seed=seed))
