"""The experiment runner: one instrumented path for every execution.

All three consumers of the registry — the CLI, the test suite, and the
pytest-benchmark suite — drive experiments through this module, so
timing, instrumentation, and artifact finalization can never drift
between them.  :func:`run_one` executes a single experiment under a
``perf_counter`` timer and a :mod:`~repro.runtime.instrumentation`
collector; :class:`ExperimentRunner` fans a list of experiments over a
``ProcessPoolExecutor`` (``jobs > 1``) while preserving registration
order in the results.

Determinism across worker counts is by construction: every experiment is
a pure function of ``(quick, seed)`` with its own RNG stream derived
from the seed (the ``util.rng`` discipline), so no state is shared
between experiments and scheduling cannot influence results — only
``wall_time_s`` differs between ``jobs=1`` and ``jobs=N`` runs (compare
with :meth:`RunArtifact.without_timing`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Iterator, Sequence

from repro.errors import ExperimentError
from repro.runtime import instrumentation
from repro.runtime.artifact import RunArtifact

__all__ = ["run_one", "ExperimentRunner"]


def _resolve_ids(ids: Sequence[str] | None) -> list[str]:
    """Expand ``None``/``["all"]`` to the full registry, validating early
    so a parallel run fails before any worker is spawned."""
    from repro.experiments.registry import EXPERIMENTS

    if ids is None or list(ids) == ["all"]:
        return list(EXPERIMENTS)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        raise ExperimentError(
            f"unknown experiment {unknown[0]!r}; known: {sorted(EXPERIMENTS)}"
        )
    return list(ids)


def run_one(experiment_id: str, quick: bool = True, seed: int = 0) -> RunArtifact:
    """Run one experiment with timing and instrumentation attached.

    This is the single execution path: it dispatches through the
    registry, measures wall time with ``perf_counter``, collects the
    box/trial counters the simulation layer records, and returns the
    finalized :class:`RunArtifact`.  Top-level (picklable) so process
    pools can call it directly.
    """
    from repro.experiments.registry import EXPERIMENTS

    try:
        exp = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    with instrumentation.collect() as counters:
        start = time.perf_counter()
        artifact = exp.runner(quick=quick, seed=seed)
        elapsed = time.perf_counter() - start
    if not isinstance(artifact, RunArtifact):
        raise ExperimentError(
            f"experiment {experiment_id!r} returned "
            f"{type(artifact).__name__}; experiments must finalize into a "
            "RunArtifact (ExperimentResult.finalize)"
        )
    return replace(artifact, wall_time_s=elapsed, counters=counters.as_dict())


@dataclass(frozen=True)
class ExperimentRunner:
    """Run registry experiments, optionally across a process pool.

    ``jobs=1`` executes in-process; ``jobs>1`` submits each experiment to
    a ``ProcessPoolExecutor`` and yields results in submission order, so
    rendered output is byte-identical at any worker count.
    """

    jobs: int = 1

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {self.jobs}")

    def run_iter(
        self,
        ids: Sequence[str] | None = None,
        quick: bool = True,
        seed: int = 0,
    ) -> Iterator[RunArtifact]:
        """Yield one finalized artifact per experiment, in request order."""
        targets = _resolve_ids(ids)
        if self.jobs == 1 or len(targets) <= 1:
            for eid in targets:
                yield run_one(eid, quick=quick, seed=seed)
            return
        workers = min(self.jobs, len(targets))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(run_one, eid, quick, seed) for eid in targets
            ]
            for future in futures:
                yield future.result()

    def run(
        self,
        ids: Sequence[str] | None = None,
        quick: bool = True,
        seed: int = 0,
    ) -> list[RunArtifact]:
        """Like :meth:`run_iter`, collected into a list."""
        return list(self.run_iter(ids, quick=quick, seed=seed))
