"""The experiment runner: one instrumented path for every execution.

All consumers of the registry — the CLI, the test suite, the
pytest-benchmark suite, and the ``repro serve`` daemon — drive
experiments through this module, so timing, instrumentation, and
artifact finalization can never drift between them.  The canonical
entry point is :func:`execute`, which takes one typed
:class:`~repro.runtime.request.RunRequest` and returns a
:class:`~repro.runtime.request.RunResponse`; :func:`run_one` is the
historical positional spelling kept as a thin wrapper.
:class:`ExperimentRunner` fans a list of experiments over a
``ProcessPoolExecutor`` (``jobs > 1``) while preserving registration
order in the results, and :class:`RunnerPool` exposes that same pool as
a persistent submit-one-request-at-a-time surface for long-running
services.

Determinism across worker counts is by construction: every experiment is
a pure function of ``(quick, seed)`` with its own RNG stream derived
from the seed (the ``util.rng`` discipline), so no state is shared
between experiments and scheduling cannot influence results — only
``wall_time_s`` differs between ``jobs=1`` and ``jobs=N`` runs (compare
with :meth:`RunArtifact.without_timing`).

That same purity makes runs *cacheable*: ``cache="auto"`` consults the
content-addressed artifact store (:mod:`repro.cache`) keyed by
``(experiment id, quick, seed, code fingerprint)`` before computing — a
warm hit returns the stored artifact (stamped ``cache_hit=True``,
``wall_time_s=0.0``, ``saved_wall_time_s=<stored compute time>``), a
miss computes and stores.  ``cache="refresh"`` recomputes and overwrites
unconditionally; ``cache="off"`` (the default) is the PR-2 behavior,
byte for byte.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Iterator, Sequence

from repro.errors import ExperimentError
from repro.runtime import instrumentation
from repro.runtime.artifact import RunArtifact
from repro.runtime.request import CACHE_MODES, RunRequest, RunResponse

__all__ = [
    "CACHE_MODES",
    "execute",
    "run_one",
    "RunnerPool",
    "ExperimentRunner",
]


def _check_cache_mode(cache: str) -> None:
    if cache not in CACHE_MODES:
        raise ExperimentError(
            f"cache mode must be one of {CACHE_MODES}, got {cache!r}"
        )


def _resolve_ids(ids: Sequence[str] | None) -> list[str]:
    """Expand ``None``/``["all"]`` to the full registry, validating early
    so a parallel run fails before any worker is spawned."""
    from repro.experiments.registry import EXPERIMENTS

    if ids is None or list(ids) == ["all"]:
        return list(EXPERIMENTS)
    unknown = [eid for eid in ids if eid not in EXPERIMENTS]
    if unknown:
        raise ExperimentError(
            f"unknown experiment {unknown[0]!r}; known: {sorted(EXPERIMENTS)}"
        )
    return list(ids)


def execute(request: RunRequest) -> RunResponse:
    """Execute one :class:`RunRequest` — the single instrumented path.

    Dispatches through the registry, measures wall time with
    ``perf_counter``, collects the box/trial counters the simulation
    layer records, consults the artifact store per ``request.cache``,
    and returns a typed :class:`RunResponse` whose ``served_from`` says
    whether the artifact was a warm store read or a live computation.
    Top-level (and ``RunRequest`` is a frozen picklable dataclass) so
    process pools can call it directly.
    """
    from repro.experiments.registry import EXPERIMENTS

    try:
        exp = EXPERIMENTS[request.experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {request.experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None

    store = key = None
    if request.cache != "off":
        from repro.cache.store import Cache, cache_key_for

        store = Cache(request.cache_dir)
        key = cache_key_for(
            request.experiment_id, request.quick, request.seed
        )
        if request.cache == "auto":
            entry = store.get(key)
            if entry is not None:
                artifact = replace(
                    entry.artifact,
                    wall_time_s=0.0,
                    cache_hit=True,
                    saved_wall_time_s=entry.stored_wall_time_s,
                )
                return RunResponse(
                    request=request, artifact=artifact, served_from="store"
                )

    with instrumentation.collect() as counters:
        # Wall-time metadata: recorded on the artifact but excluded
        # from its bit-identity digest (timing fields are masked).
        start = time.perf_counter()  # repro-lint: disable=nondet-wallclock
        artifact = exp.runner(quick=request.quick, seed=request.seed)
        elapsed = time.perf_counter() - start  # repro-lint: disable=nondet-wallclock
    if not isinstance(artifact, RunArtifact):
        raise ExperimentError(
            f"experiment {request.experiment_id!r} returned "
            f"{type(artifact).__name__}; experiments must finalize into a "
            "RunArtifact (ExperimentResult.finalize)"
        )
    artifact = replace(
        artifact, wall_time_s=elapsed, counters=counters.as_dict()
    )
    if store is not None and key is not None:
        store.put(key, artifact)
        artifact = replace(artifact, cache_hit=False)
    return RunResponse(
        request=request, artifact=artifact, served_from="computed"
    )


def run_one(
    experiment_id: str,
    quick: bool = True,
    seed: int = 0,
    cache: str = "off",
    cache_dir: "str | None" = None,
) -> RunArtifact:
    """Run one experiment with timing and instrumentation attached.

    Positional wrapper over :func:`execute` kept for the historical
    call sites; new code should build a :class:`RunRequest` (see
    ``docs/API.md``) and call :func:`execute` — the response carries the
    same artifact plus its provenance (``served_from``).
    """
    return execute(
        RunRequest(
            experiment_id=experiment_id,
            quick=quick,
            seed=seed,
            cache=cache,
            cache_dir=cache_dir,
        )
    ).artifact


class RunnerPool:
    """A persistent process pool that executes :class:`RunRequest`\\ s.

    :class:`ExperimentRunner` uses one per parallel pass; the ``repro
    serve`` daemon holds one for its whole lifetime and feeds it cache
    misses one request at a time.  ``submit`` returns a
    ``concurrent.futures.Future`` resolving to a :class:`RunResponse`
    (services wrap it with ``asyncio.wrap_future``).  Workers re-import
    the registry on first use, so only registry experiments — not
    monkeypatched test stand-ins — are reachable through a pool.

    ``context`` selects the multiprocessing start method.  The default
    (``None``) keeps the platform default — fork on Linux, which is
    what batch runs want (cheap workers, inherited warm imports).  The
    serve daemon passes ``"spawn"``: forked workers would inherit every
    open client socket, keeping those connections from ever seeing EOF
    after the daemon closes them; spawned workers inherit no
    descriptors at all.
    """

    def __init__(self, jobs: int, context: str | None = None):
        if jobs < 1:
            raise ExperimentError(f"pool jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        mp_context = None
        if context is not None:
            import multiprocessing

            mp_context = multiprocessing.get_context(context)
        self._pool = ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context)

    def submit(self, request: RunRequest) -> "Future[RunResponse]":
        """Schedule ``request`` on the pool."""
        return self._pool.submit(execute, request)

    def shutdown(self, wait: bool = True) -> None:
        """Shut the pool down; with ``wait=True`` blocks until every
        submitted request has finished (the drain path)."""
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "RunnerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True)


@dataclass(frozen=True)
class ExperimentRunner:
    """Run registry experiments, optionally across a process pool.

    ``jobs=1`` executes in-process; ``jobs>1`` submits each experiment to
    a :class:`RunnerPool` and yields results in submission order, so
    rendered output is byte-identical at any worker count.  ``cache`` and
    ``cache_dir`` are stamped into every :class:`RunRequest` (each
    worker opens the store independently; puts are atomic and
    entry-locked so concurrent writers are safe).  After a
    cache-touching pass the store is garbage-collected under the
    environment budgets (see :meth:`_auto_gc` and ``docs/CACHE.md``),
    so it stays bounded without manual ``repro cache clear`` runs.
    """

    jobs: int = 1
    cache: str = "off"
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {self.jobs}")
        _check_cache_mode(self.cache)

    def request_for(self, experiment_id: str, quick: bool, seed: int) -> RunRequest:
        """The :class:`RunRequest` this runner would issue for one id."""
        return RunRequest(
            experiment_id=experiment_id,
            quick=quick,
            seed=seed,
            cache=self.cache,
            cache_dir=self.cache_dir,
        )

    def run_iter(
        self,
        ids: Sequence[str] | None = None,
        quick: bool = True,
        seed: int = 0,
    ) -> Iterator[RunArtifact]:
        """Yield one finalized artifact per experiment, in request order."""
        for response in self.execute_iter(ids, quick=quick, seed=seed):
            yield response.artifact

    def execute_iter(
        self,
        ids: Sequence[str] | None = None,
        quick: bool = True,
        seed: int = 0,
    ) -> Iterator[RunResponse]:
        """Yield one typed :class:`RunResponse` per experiment, in
        request order — the canonical form of :meth:`run_iter`."""
        targets = _resolve_ids(ids)
        requests = [self.request_for(eid, quick, seed) for eid in targets]
        if self.jobs == 1 or len(targets) <= 1:
            with self._sidecar_buffer():
                for request in requests:
                    yield execute(request)
        else:
            workers = min(self.jobs, len(targets))
            with RunnerPool(workers) as pool:
                futures = [pool.submit(request) for request in requests]
                for future in futures:
                    yield future.result()
        self._auto_gc()

    def _sidecar_buffer(self):
        """Coalesce per-access sidecar rewrites into one flush per pass.

        In-process runs buffer the ``.meta-*.json`` access records and
        write each touched entry's sidecar once when the pass ends
        (before :meth:`_auto_gc`, which reads them).  Pool workers
        (``jobs > 1``) keep the immediate per-access writes — the buffer
        is process-local and cannot see their accesses."""
        if self.cache == "off":
            return nullcontext()
        from repro.cache.gc import buffered_access_records

        return buffered_access_records()

    def _auto_gc(self) -> None:
        """Bound the artifact store after a run that touched it.

        Runs once per completed :meth:`run_iter` pass (never per
        experiment, never when ``cache="off"``) under the environment
        budgets — ``REPRO_CACHE_MAX_BYTES`` (default 1 GiB),
        ``REPRO_CACHE_MAX_ENTRIES``, ``REPRO_CACHE_MAX_AGE_DAYS`` —
        and is disabled entirely by ``REPRO_CACHE_GC=off``.  The
        report's counters persist in the store's ``.gc-state.json``
        (surfaced by ``repro cache stats`` and the run manifest)."""
        if self.cache == "off":
            return
        from repro.cache.gc import auto_collect

        auto_collect(self.cache_dir)

    def run(
        self,
        ids: Sequence[str] | None = None,
        quick: bool = True,
        seed: int = 0,
    ) -> list[RunArtifact]:
        """Like :meth:`run_iter`, collected into a list."""
        return list(self.run_iter(ids, quick=quick, seed=seed))
