"""``repro serve`` — the asyncio artifact-serving daemon.

The daemon answers ``GET /v1/run/{experiment}?quick&seed`` straight from
the content-addressed artifact store (:mod:`repro.cache`) when the entry
is warm — zero recomputation — and on a miss coalesces identical
in-flight keys into **one** computation dispatched to the
:class:`~repro.runtime.runner.RunnerPool`.  Every response body is the
exact byte sequence ``repro run --json`` would write for a warm run of
the same store, so clients cannot tell (and need not care) whether an
artifact came from disk, a live computation, or another request's
coattails.

Package layout:

* :mod:`repro.serve.http` — a minimal stdlib-only asyncio HTTP/1.1
  layer (request parsing, response formatting);
* :mod:`repro.serve.coalesce` — the in-flight request coalescer;
* :mod:`repro.serve.stats` — hit/miss/coalesce counters and latency
  percentiles for ``/v1/stats``;
* :mod:`repro.serve.app` — the application: routing, admission
  control, the pool, graceful drain; :func:`serve_forever` is what the
  CLI's ``repro serve`` runs;
* :mod:`repro.serve.smoke` — the end-to-end smoke driver CI runs
  (``python -m repro.serve.smoke``).

Endpoints, backpressure semantics, and deployment knobs are documented
in ``docs/SERVE.md``; the wire schema in ``docs/API.md``.
"""

from repro.serve.app import ServeApp, ServeConfig, serve_forever

__all__ = ["ServeApp", "ServeConfig", "serve_forever"]
