"""``repro serve`` — the asyncio artifact-serving daemon.

The daemon answers ``GET /v1/run/{experiment}?quick&seed`` through a
three-rung tier ladder — an adaptive in-process **hot tier** of
rendered response bytes, the content-addressed disk **store**
(:mod:`repro.cache`), and live **computation** (identical in-flight
keys coalesced into one dispatch to the
:class:`~repro.runtime.runner.RunnerPool`).  Every response body is the
exact byte sequence ``repro run --json`` would write for a warm run of
the same store, so clients cannot tell (and need not care) whether an
artifact came from memory, disk, a live computation, or another
request's coattails.  Connections are keep-alive; ``/v1/run-all``
batches the whole registry through the same ladder, and ``/v1/metrics``
exposes the counters in Prometheus text format.

Package layout:

* :mod:`repro.serve.http` — a minimal stdlib-only asyncio HTTP/1.1
  layer (request parsing, keep-alive semantics, response formatting);
* :mod:`repro.serve.hotcache` — the adaptive in-memory hot tier (LRU
  main segment + ghost-list-driven byte budget);
* :mod:`repro.serve.coalesce` — the in-flight request coalescer;
* :mod:`repro.serve.stats` — hit/miss/coalesce counters, latency
  percentiles, and the Prometheus renderer for ``/v1/stats`` and
  ``/v1/metrics``;
* :mod:`repro.serve.app` — the application: routing, admission
  control, the pool, graceful drain; :func:`serve_forever` is what the
  CLI's ``repro serve`` runs;
* :mod:`repro.serve.smoke` — the end-to-end smoke driver CI runs
  (``python -m repro.serve.smoke``).

Endpoints, backpressure semantics, and deployment knobs are documented
in ``docs/SERVE.md``; the wire schema in ``docs/API.md``.
"""

from repro.serve.app import ServeApp, ServeConfig, serve_forever
from repro.serve.hotcache import HotCache

__all__ = ["ServeApp", "ServeConfig", "serve_forever", "HotCache"]
