"""The serve daemon application: routing, admission, drain.

One event loop owns everything.  A request for
``/v1/run/{experiment}`` becomes a typed
:class:`~repro.runtime.request.RunRequest`; the store is consulted
first (a warm hit is answered without touching any worker), a miss is
coalesced per :mod:`repro.serve.coalesce` and dispatched to the
:class:`~repro.runtime.runner.RunnerPool` — the same ``execute`` path
the CLI and ``ExperimentRunner`` use, so a served artifact can never
drift from an offline one.

Every ``/v1/run`` response body is the *warm-read stamped* artifact
form (``wall_time_s=0.0``, ``cache_hit=true``, ``saved_wall_time_s`` =
the stored compute time): exactly the bytes a warm ``repro run --json``
writes against the same store.  Request-level metadata that would break
that byte-identity (served-from, coalescing, the cache digest) travels
in ``X-Repro-*`` headers instead of the body.

Admission control: at most ``max_inflight`` *distinct* computations may
be in flight; a miss that would start one more is answered ``429`` with
a ``Retry-After`` hint.  A hit is always admitted — it costs one file
read.  On SIGTERM/SIGINT the daemon stops accepting connections,
finishes what is in flight, shuts the pool down, and exits 0
(``docs/SERVE.md``).
"""

from __future__ import annotations

import json
import signal
import sys
from dataclasses import dataclass, replace
from typing import Any, Awaitable, Callable

import asyncio

from repro.cache.store import Cache, cache_key_for
from repro.errors import ExperimentError, ReproError
from repro.runtime.artifact import RunArtifact
from repro.runtime.request import WIRE_VERSION, RunRequest, RunResponse
from repro.serve.coalesce import Coalescer
from repro.serve.http import (
    READ_TIMEOUT_S,
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
    render_response,
)
from repro.serve.stats import ServeStats

__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_MAX_INFLIGHT",
    "DRAIN_TIMEOUT_S",
    "ServeConfig",
    "ServeApp",
    "serve_forever",
]

DEFAULT_PORT = 8023
DEFAULT_MAX_INFLIGHT = 16

#: Upper bound on waiting for open connections to finish their writes
#: during drain.  Computations are already complete by then (drain
#: awaits the coalescer first), so this only covers response rendering
#: and socket flushes; a client too slow to take its bytes within the
#: bound is cut, not waited on forever.
DRAIN_TIMEOUT_S = 10.0

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class ServeConfig:
    """Daemon knobs, as parsed from ``repro serve``'s flags.

    ``jobs=0`` executes cache misses on the event loop's default thread
    executor instead of a process pool — in-process, so monkeypatched
    registries stay visible; the mode tests (and tiny deployments) use.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    jobs: int = 1
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ExperimentError(f"serve jobs must be >= 0, got {self.jobs}")
        if self.max_inflight < 1:
            raise ExperimentError(
                f"serve max-inflight must be >= 1, got {self.max_inflight}"
            )


def _json_body(payload: dict[str, Any]) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")


def _error_response(status: int, detail: str) -> HttpResponse:
    return HttpResponse(
        status=status,
        body=_json_body({"error": {"status": status, "detail": detail}}),
        headers={"Retry-After": "1"} if status in (429, 503) else {},
    )


def _parse_bool(raw: str, name: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise HttpError(400, f"query parameter {name!r} must be boolean, got {raw!r}")


class ServeApp:
    """Routing and request lifecycle; one instance per daemon."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.stats = ServeStats()
        self.cache = Cache(config.cache_dir)
        self.coalescer = Coalescer()
        self.draining = False
        self._pool: Any = None  # RunnerPool, created lazily on first miss
        # Open connection-handler tasks; drain awaits these (bounded)
        # after the coalescer so shutdown never truncates a response
        # that its computation already finished.
        self._connections: set[asyncio.Task[None]] = set()

    # -- dispatch ------------------------------------------------------
    def _dispatcher(self) -> Callable[[RunRequest], Awaitable[RunResponse]]:
        """How a cache miss gets computed: process pool (``jobs >= 1``)
        or the loop's default thread executor (``jobs == 0``)."""
        from repro.runtime.runner import RunnerPool, execute

        if self.config.jobs == 0:
            async def run_inline(request: RunRequest) -> RunResponse:
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, execute, request)

            return run_inline
        if self._pool is None:
            # spawn, not fork: forked workers would inherit the open
            # client sockets and keep closed connections from reaching
            # EOF (see RunnerPool).
            self._pool = RunnerPool(self.config.jobs, context="spawn")

        pool = self._pool

        async def run_pooled(request: RunRequest) -> RunResponse:
            return await asyncio.wrap_future(pool.submit(request))

        return run_pooled

    # -- routes --------------------------------------------------------
    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Route one parsed request; never raises (500 is a response)."""
        self.stats.requests += 1
        start = self.stats.start_clock()
        try:
            if request.path == "/v1/healthz":
                response = self._handle_healthz()
            elif request.path == "/v1/stats":
                response = self._handle_stats()
            elif request.path.startswith("/v1/run/"):
                response = await self._handle_run(request)
            else:
                response = _error_response(404, f"no route for {request.path}")
        except HttpError as exc:
            response = _error_response(exc.status, exc.detail)
        except ExperimentError as exc:
            response = _error_response(404, str(exc))
        except ReproError as exc:
            self.stats.errors += 1
            response = _error_response(500, str(exc))
        except Exception as exc:  # a bug, not a client error: say so
            self.stats.errors += 1
            response = _error_response(
                500, f"internal error: {type(exc).__name__}: {exc}"
            )
        self.stats.observe(start)
        return response

    def _handle_healthz(self) -> HttpResponse:
        payload = {
            "status": "draining" if self.draining else "ok",
            "wire_version": WIRE_VERSION,
        }
        return HttpResponse(status=200, body=_json_body(payload))

    def _handle_stats(self) -> HttpResponse:
        payload = self.stats.snapshot(
            inflight=len(self.coalescer),
            queue_depth=len(self.coalescer),
            draining=self.draining,
        )
        payload["wire_version"] = WIRE_VERSION
        return HttpResponse(status=200, body=_json_body(payload))

    async def _handle_run(self, request: HttpRequest) -> HttpResponse:
        if self.draining:
            return _error_response(503, "daemon is draining")
        experiment_id = request.path[len("/v1/run/"):]
        if not experiment_id or "/" in experiment_id:
            raise HttpError(400, "expected /v1/run/{experiment}")
        quick = True
        if "quick" in request.query:
            quick = _parse_bool(request.query["quick"], "quick")
        try:
            seed = int(request.query.get("seed", "0"))
        except ValueError:
            raise HttpError(
                400,
                f"query parameter 'seed' must be an integer, "
                f"got {request.query['seed']!r}",
            ) from None
        run_request = RunRequest(
            experiment_id=experiment_id,
            quick=quick,
            seed=seed,
            cache="auto",
            cache_dir=self.config.cache_dir,
        )
        # Fast path: a warm store read answers without any worker.
        # cache_key_for validates the experiment id (404 via the
        # ExperimentError handler above) and fingerprints the live code.
        # Both run on the default executor, not the event loop: a cold
        # fingerprint walks and hashes a module closure, and the store
        # probe does blocking file I/O (entry read + record_hit sidecar
        # write) — done inline they would stall every connection,
        # including /v1/healthz, behind one slow disk.
        loop = asyncio.get_running_loop()
        key = await loop.run_in_executor(
            None, cache_key_for, experiment_id, quick, seed
        )
        entry = await loop.run_in_executor(None, self.cache.get, key)
        if entry is not None:
            self.stats.hits += 1
            artifact = replace(
                entry.artifact,
                wall_time_s=0.0,
                cache_hit=True,
                saved_wall_time_s=entry.stored_wall_time_s,
            )
            return self._artifact_response(
                artifact, served_from="store", digest=key.digest
            )
        # Miss: admit (bounded by distinct in-flight computations),
        # coalesce, dispatch.
        if (
            run_request.coalesce_key not in self.coalescer
            and len(self.coalescer) >= self.config.max_inflight
        ):
            self.stats.rejected += 1
            return _error_response(
                429,
                f"{len(self.coalescer)} computations already in flight "
                f"(max {self.config.max_inflight}); retry shortly",
            )
        dispatch = self._dispatcher()
        response, coalesced = await self.coalescer.run(
            run_request.coalesce_key, lambda: dispatch(run_request)
        )
        if coalesced:
            self.stats.coalesced += 1
        elif response.served_from == "store":
            # Raced a completing computation: our probe missed, but by
            # dispatch time the store had the entry (execute probes
            # again under cache=auto).  No computation ran for us, so
            # count a hit — `misses` stays the number of computations.
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        artifact = self._warm_form(response)
        return self._artifact_response(
            artifact,
            served_from="coalesced" if coalesced else response.served_from,
            digest=key.digest,
        )

    @staticmethod
    def _warm_form(response: RunResponse) -> RunArtifact:
        """The warm-read stamped artifact for ``response`` — identical
        to what a subsequent warm read of the store would serve, so
        computed and cached answers are byte-identical."""
        if response.served_from == "store":
            return response.artifact  # execute() already stamped it
        artifact = response.artifact
        return replace(
            artifact.without_cache_stamp(),
            wall_time_s=0.0,
            cache_hit=True,
            saved_wall_time_s=artifact.wall_time_s,
        )

    @staticmethod
    def _artifact_response(
        artifact: RunArtifact, served_from: str, digest: str
    ) -> HttpResponse:
        # The body is exactly what `repro run --json` writes for a warm
        # run: metadata goes in headers, never the body.
        body = (artifact.to_json() + "\n").encode("utf-8")
        return HttpResponse(
            status=200,
            body=body,
            headers={
                "X-Repro-Served-From": served_from,
                "X-Repro-Cache-Digest": digest,
                "X-Repro-Wire-Version": str(WIRE_VERSION),
            },
        )

    # -- lifecycle -----------------------------------------------------
    async def drain(self) -> None:
        """Finish in-flight work, then shut the pool down.

        Order matters: awaiting the coalescer futures resolves every
        computation, then awaiting the open connection tasks (bounded by
        :data:`DRAIN_TIMEOUT_S`) lets their handlers finish writing the
        responses those computations produced.  The coalescer futures
        alone are not enough — they resolve *before* the leader/follower
        handlers render and flush, and on Python < 3.12
        ``server.wait_closed()`` does not wait for connection handlers
        either, so without this step ``asyncio.run`` would cancel
        handler tasks mid-write and truncate in-flight responses."""
        self.draining = True
        pending = tuple(self.coalescer.pending())
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        current = asyncio.current_task()
        connections = {t for t in self._connections if t is not current}
        if connections:
            await asyncio.wait(connections, timeout=DRAIN_TIMEOUT_S)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- connection plumbing -------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One-shot connection handler for ``asyncio.start_server``."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), timeout=READ_TIMEOUT_S
                )
            except asyncio.TimeoutError:
                # A connected-but-silent (or dribbling) client: answer
                # 408 and close rather than parking this handler — and
                # its socket — in readuntil for the daemon's lifetime.
                writer.write(
                    render_response(
                        _error_response(
                            408,
                            "timed out waiting for the request "
                            f"({READ_TIMEOUT_S:g}s)",
                        )
                    )
                )
                return
            except HttpError as exc:
                writer.write(
                    render_response(_error_response(exc.status, exc.detail))
                )
                return
            if request is None:
                return
            response = await self.handle(request)
            writer.write(render_response(response))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away mid-write: nothing to answer
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def serve_forever(config: ServeConfig) -> int:
    """Run the daemon until SIGTERM/SIGINT; the CLI's ``repro serve``.

    Prints one ``listening on http://host:port`` line to stderr once
    accepting (readiness signal for supervisors and the smoke driver),
    then serves.  On signal: stop accepting, drain, exit 0."""
    app = ServeApp(config)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix loop
            pass
    server = await asyncio.start_server(
        app.handle_connection, host=config.host, port=config.port
    )
    bound = server.sockets[0].getsockname() if server.sockets else (
        config.host,
        config.port,
    )
    print(
        f"repro serve: listening on http://{bound[0]}:{bound[1]} "
        f"(jobs={config.jobs}, max_inflight={config.max_inflight})",
        file=sys.stderr,
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        await app.drain()
    print("repro serve: drained, exiting", file=sys.stderr, flush=True)
    return 0
