"""The serve daemon application: routing, admission, hot tier, drain.

One event loop owns everything.  A request for
``/v1/run/{experiment}`` walks a three-rung tier ladder:

1. **memory** — the adaptive in-process hot tier
   (:mod:`repro.serve.hotcache`) holds the rendered response bytes of
   recently served artifacts, keyed by store digest.  A memory hit
   skips the fingerprinter, the executor, and the disk entirely.
2. **store** — the content-addressed disk store: the key is
   fingerprinted against the live code and probed on an executor
   thread (blocking I/O never runs on the event loop).
3. **computed** — a miss is coalesced per :mod:`repro.serve.coalesce`
   and dispatched to the :class:`~repro.runtime.runner.RunnerPool` —
   the same ``execute`` path the CLI and ``ExperimentRunner`` use, so a
   served artifact can never drift from an offline one.

Every ``/v1/run`` response body is the *warm-read stamped* artifact
form (``wall_time_s=0.0``, ``cache_hit=true``, ``saved_wall_time_s`` =
the stored compute time): exactly the bytes a warm ``repro run --json``
writes against the same store — whichever rung answered.  Request-level
metadata that would break that byte-identity (served-from, the cache
digest) travels in ``X-Repro-*`` headers instead of the body.

Connections are keep-alive: one handler loops requests until the client
closes, asks for ``Connection: close``, exhausts
``--max-requests-per-conn``, or sits idle past ``--idle-timeout``.
Admission control: at most ``max_inflight`` *distinct* computations may
be in flight; a miss that would start one more is answered ``429`` with
a ``Retry-After`` hint.  A hit is always admitted.  On SIGTERM/SIGINT
the daemon stops accepting connections, closes **idle** keep-alive
connections immediately, finishes what is in flight (in-request
connections get their responses), shuts the pool down, and exits 0
(``docs/SERVE.md``).
"""

from __future__ import annotations

import json
import signal
import sys
from dataclasses import dataclass, replace
from typing import Any, Awaitable, Callable

import asyncio

from repro.cache.fingerprint import fingerprint_generation
from repro.cache.store import Cache, cache_key_for
from repro.errors import ExperimentError, ReproError
from repro.runtime.artifact import RunArtifact
from repro.runtime.request import WIRE_VERSION, RunRequest, RunResponse
from repro.serve.coalesce import Coalescer
from repro.serve.hotcache import DEFAULT_HOT_BYTES, HotCache
from repro.serve.http import (
    MAX_LINE_BYTES,
    READ_TIMEOUT_S,
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
    render_response,
)
from repro.serve.stats import ServeStats

__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_MAX_REQUESTS_PER_CONN",
    "DEFAULT_IDLE_TIMEOUT_S",
    "DRAIN_TIMEOUT_S",
    "ServeConfig",
    "ServeApp",
    "serve_forever",
]

DEFAULT_PORT = 8023
DEFAULT_MAX_INFLIGHT = 16

#: Requests one keep-alive connection may carry before the daemon
#: closes it (``Connection: close`` on the last response).  Bounds how
#: long one client can monopolize a handler; generous because requests
#: are served sequentially per connection anyway.
DEFAULT_MAX_REQUESTS_PER_CONN = 1000

#: How long a keep-alive connection may sit idle between requests
#: before the daemon closes it.  Distinct from the in-request
#: :data:`~repro.serve.http.READ_TIMEOUT_S` (a client that *started*
#: talking gets 408; a quiet-between-requests client is just closed).
DEFAULT_IDLE_TIMEOUT_S = 30.0

#: Upper bound on waiting for open connections to finish their writes
#: during drain.  Computations are already complete by then (drain
#: awaits the coalescer first), so this only covers response rendering
#: and socket flushes; a client too slow to take its bytes within the
#: bound is cut, not waited on forever.
DRAIN_TIMEOUT_S = 10.0

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class ServeConfig:
    """Daemon knobs, as parsed from ``repro serve``'s flags.

    ``jobs=0`` executes cache misses on the event loop's default thread
    executor instead of a process pool — in-process, so monkeypatched
    registries stay visible; the mode tests (and tiny deployments) use.
    ``hot_bytes=0`` disables the in-memory hot tier.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    jobs: int = 1
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    cache_dir: str | None = None
    max_requests_per_conn: int = DEFAULT_MAX_REQUESTS_PER_CONN
    idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S
    hot_bytes: int = DEFAULT_HOT_BYTES

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ExperimentError(f"serve jobs must be >= 0, got {self.jobs}")
        if self.max_inflight < 1:
            raise ExperimentError(
                f"serve max-inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_requests_per_conn < 1:
            raise ExperimentError(
                "serve max-requests-per-conn must be >= 1, "
                f"got {self.max_requests_per_conn}"
            )
        if self.idle_timeout_s <= 0:
            raise ExperimentError(
                f"serve idle-timeout must be > 0, got {self.idle_timeout_s}"
            )
        if self.hot_bytes < 0:
            raise ExperimentError(
                f"serve hot-bytes must be >= 0 (0 disables), "
                f"got {self.hot_bytes}"
            )


def _json_body(payload: dict[str, Any]) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")


def _error_response(status: int, detail: str) -> HttpResponse:
    return HttpResponse(
        status=status,
        body=_json_body({"error": {"status": status, "detail": detail}}),
        headers={"Retry-After": "1"} if status in (429, 503) else {},
    )


def _parse_bool(raw: str, name: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise HttpError(400, f"query parameter {name!r} must be boolean, got {raw!r}")


def _parse_run_query(request: HttpRequest) -> tuple[bool, int]:
    """The shared ``quick``/``seed`` parameters of the run endpoints."""
    quick = True
    if "quick" in request.query:
        quick = _parse_bool(request.query["quick"], "quick")
    try:
        seed = int(request.query.get("seed", "0"))
    except ValueError:
        raise HttpError(
            400,
            f"query parameter 'seed' must be an integer, "
            f"got {request.query['seed']!r}",
        ) from None
    return quick, seed


class ServeApp:
    """Routing and request lifecycle; one instance per daemon."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.stats = ServeStats()
        self.cache = Cache(config.cache_dir)
        self.coalescer = Coalescer()
        self.hot = HotCache(config.hot_bytes)
        self.draining = False
        self._pool: Any = None  # RunnerPool, created lazily on first miss
        # Open connection-handler tasks, and the subset currently idle
        # (parked between requests on a keep-alive connection).  Drain
        # cancels the idle ones immediately — nothing is in flight on
        # them — and awaits the rest (bounded) after the coalescer so
        # shutdown never truncates a response whose computation already
        # finished.
        self._connections: set[asyncio.Task[None]] = set()
        self._idle: set[asyncio.Task[None]] = set()
        # request key -> store digest, so a repeat request reaches the
        # hot tier without re-fingerprinting.  Within one process a
        # digest only changes when the fingerprint memos are cleared;
        # watching their generation keeps the hints exactly as fresh.
        self._hot_index: dict[tuple[str, bool, int], str] = {}
        self._hint_generation = fingerprint_generation()

    # -- dispatch ------------------------------------------------------
    def _dispatcher(self) -> Callable[[RunRequest], Awaitable[RunResponse]]:
        """How a cache miss gets computed: process pool (``jobs >= 1``)
        or the loop's default thread executor (``jobs == 0``)."""
        from repro.runtime.runner import RunnerPool, execute

        if self.config.jobs == 0:
            async def run_inline(request: RunRequest) -> RunResponse:
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, execute, request)

            return run_inline
        if self._pool is None:
            # spawn, not fork: forked workers would inherit the open
            # client sockets and keep closed connections from reaching
            # EOF (see RunnerPool).
            self._pool = RunnerPool(self.config.jobs, context="spawn")

        pool = self._pool

        async def run_pooled(request: RunRequest) -> RunResponse:
            return await asyncio.wrap_future(pool.submit(request))

        return run_pooled

    # -- routes --------------------------------------------------------
    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Route one parsed request; never raises (500 is a response)."""
        self.stats.requests += 1
        start = self.stats.start_clock()
        try:
            if request.path == "/v1/healthz":
                response = self._handle_healthz()
            elif request.path == "/v1/stats":
                response = self._handle_stats()
            elif request.path == "/v1/metrics":
                response = self._handle_metrics()
            elif request.path == "/v1/run-all":
                response = await self._handle_run_all(request)
            elif request.path.startswith("/v1/run/"):
                response = await self._handle_run(request)
            else:
                response = _error_response(404, f"no route for {request.path}")
        except Exception as exc:  # noqa: BLE001 — classified below
            status, detail = self._classify_error(exc)
            response = _error_response(status, detail)
        self.stats.observe(start)
        return response

    def _classify_error(self, exc: Exception) -> tuple[int, str]:
        """Map an exception to its response status, updating counters.

        Shared by the top-level router and the per-experiment legs of
        ``/v1/run-all`` so a batched failure is accounted exactly like
        a single-run one."""
        if isinstance(exc, HttpError):
            return exc.status, exc.detail
        if isinstance(exc, ExperimentError):
            return 404, str(exc)
        if isinstance(exc, ReproError):
            self.stats.errors += 1
            return 500, str(exc)
        # a bug, not a client error: say so
        self.stats.errors += 1
        return 500, f"internal error: {type(exc).__name__}: {exc}"

    def _handle_healthz(self) -> HttpResponse:
        payload = {
            "status": "draining" if self.draining else "ok",
            "wire_version": WIRE_VERSION,
        }
        return HttpResponse(status=200, body=_json_body(payload))

    def _connection_gauges(self) -> dict[str, int]:
        idle = len(self._idle)
        return {
            "open": len(self._connections),
            "idle": idle,
            "active": len(self._connections) - idle,
        }

    def _handle_stats(self) -> HttpResponse:
        payload = self.stats.snapshot(
            inflight=len(self.coalescer),
            queue_depth=self.coalescer.waiting,
            draining=self.draining,
            connections=self._connection_gauges(),
            hot=self.hot.snapshot(),
        )
        payload["wire_version"] = WIRE_VERSION
        return HttpResponse(status=200, body=_json_body(payload))

    def _handle_metrics(self) -> HttpResponse:
        body = self.stats.render_prometheus(
            inflight=len(self.coalescer),
            queue_depth=self.coalescer.waiting,
            draining=self.draining,
            connections=self._connection_gauges(),
            hot=self.hot.snapshot(),
        ).encode("utf-8")
        return HttpResponse(
            status=200,
            body=body,
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _handle_run(self, request: HttpRequest) -> HttpResponse:
        if self.draining:
            return _error_response(503, "daemon is draining")
        experiment_id = request.path[len("/v1/run/"):]
        if not experiment_id or "/" in experiment_id:
            raise HttpError(400, "expected /v1/run/{experiment}")
        quick, seed = _parse_run_query(request)
        body, served_from, digest = await self._serve_one(
            experiment_id, quick, seed
        )
        return HttpResponse(
            status=200,
            body=body,
            headers={
                "X-Repro-Served-From": served_from,
                "X-Repro-Cache-Digest": digest,
                "X-Repro-Wire-Version": str(WIRE_VERSION),
            },
        )

    async def _handle_run_all(self, request: HttpRequest) -> HttpResponse:
        """``GET /v1/run-all?quick&seed&experiments=a,b,c``: one request
        fanned over the tier ladder per experiment, concurrently.

        Every leg shares the single-run path — hot tier, store probe,
        admission control, coalescing — so a batch can never jump the
        ``--max-inflight`` queue: legs that would exceed it surface as
        per-experiment 429 entries in ``errors``.  The response is one
        JSON map; ``artifacts`` values are exactly the per-run artifact
        payloads (the single-run body, parsed)."""
        if self.draining:
            return _error_response(503, "daemon is draining")
        quick, seed = _parse_run_query(request)
        raw = request.query.get("experiments", "").strip()
        if raw:
            ids = [part.strip() for part in raw.split(",") if part.strip()]
            if not ids:
                raise HttpError(
                    400, "query parameter 'experiments' names no experiments"
                )
        else:
            from repro.experiments.registry import EXPERIMENTS

            ids = sorted(EXPERIMENTS)
        ids = list(dict.fromkeys(ids))

        async def leg(
            experiment_id: str,
        ) -> tuple[str, dict[str, Any] | None, str, str, dict[str, Any] | None]:
            try:
                body, served_from, digest = await self._serve_one(
                    experiment_id, quick, seed
                )
            except Exception as exc:  # noqa: BLE001 — classified per leg
                status, detail = self._classify_error(exc)
                return experiment_id, None, "", "", {
                    "status": status,
                    "detail": detail,
                }
            return (
                experiment_id,
                json.loads(body.decode("utf-8")),
                served_from,
                digest,
                None,
            )

        results = await asyncio.gather(*(leg(eid) for eid in ids))
        artifacts: dict[str, Any] = {}
        served_from: dict[str, str] = {}
        digests: dict[str, str] = {}
        errors: dict[str, Any] = {}
        for experiment_id, artifact, source, digest, error in results:
            if error is not None:
                errors[experiment_id] = error
            else:
                artifacts[experiment_id] = artifact
                served_from[experiment_id] = source
                digests[experiment_id] = digest
        payload = {
            "wire_version": WIRE_VERSION,
            "quick": quick,
            "seed": seed,
            "artifacts": artifacts,
            "served_from": served_from,
            "digests": digests,
            "errors": errors,
        }
        return HttpResponse(status=200, body=_json_body(payload))

    # -- the tier ladder -----------------------------------------------
    def _check_hint_generation(self) -> None:
        generation = fingerprint_generation()
        if generation != self._hint_generation:
            # The fingerprint memos were cleared (tests, or a long
            # session refingerprinting after a code edit): every cached
            # request-key -> digest hint may now be stale.  Hot entries
            # themselves stay — they are content-addressed — but the
            # hints must be rebuilt through the fingerprinter.
            self._hint_generation = generation
            self._hot_index.clear()

    async def _serve_one(
        self, experiment_id: str, quick: bool, seed: int
    ) -> tuple[bytes, str, str]:
        """Serve one ``(experiment, quick, seed)`` through the tier
        ladder; returns ``(body, served_from, digest)``.

        ``served_from`` is ``memory`` (hot tier), ``store`` (disk),
        ``computed`` (this request ran it), or ``coalesced`` (rode
        another request's computation)."""
        request_key = (experiment_id, quick, seed)
        self._check_hint_generation()
        hint = self._hot_index.get(request_key)
        if hint is not None:
            body = self.hot.get(hint)
            if body is not None:
                self.stats.memory_hits += 1
                return body, "memory", hint
        loop = asyncio.get_running_loop()
        # cache_key_for validates the experiment id (404 via the
        # ExperimentError classification) and fingerprints the live
        # code.  Both the fingerprint and the store probe below run on
        # the default executor, not the event loop: a cold fingerprint
        # walks and hashes a module closure, and the store probe does
        # blocking file I/O (entry read + record_hit sidecar write) —
        # done inline they would stall every connection, including
        # /v1/healthz, behind one slow disk.
        key = await loop.run_in_executor(
            None, cache_key_for, experiment_id, quick, seed
        )
        if hint is not None and hint != key.digest:
            # The code changed under this key: the old digest can never
            # be requested again, so free its bytes immediately.
            self.hot.invalidate(hint)
        if hint != key.digest:
            body = self.hot.get(key.digest)
            if body is not None:
                self._hot_index[request_key] = key.digest
                self.stats.memory_hits += 1
                return body, "memory", key.digest
        entry = await loop.run_in_executor(None, self.cache.get, key)
        if entry is not None:
            self.stats.hits += 1
            artifact = replace(
                entry.artifact,
                wall_time_s=0.0,
                cache_hit=True,
                saved_wall_time_s=entry.stored_wall_time_s,
            )
            body = self._render_artifact(artifact)
            self._admit_hot(request_key, key.digest, body)
            return body, "store", key.digest
        # Miss: admit (bounded by distinct in-flight computations),
        # coalesce, dispatch.
        run_request = RunRequest(
            experiment_id=experiment_id,
            quick=quick,
            seed=seed,
            cache="auto",
            cache_dir=self.config.cache_dir,
        )
        if (
            run_request.coalesce_key not in self.coalescer
            and len(self.coalescer) >= self.config.max_inflight
        ):
            self.stats.rejected += 1
            raise HttpError(
                429,
                f"{len(self.coalescer)} computations already in flight "
                f"(max {self.config.max_inflight}); retry shortly",
            )
        dispatch = self._dispatcher()
        response, coalesced = await self.coalescer.run(
            run_request.coalesce_key, lambda: dispatch(run_request)
        )
        if coalesced:
            self.stats.coalesced += 1
        elif response.served_from == "store":
            # Raced a completing computation: our probe missed, but by
            # dispatch time the store had the entry (execute probes
            # again under cache=auto).  No computation ran for us, so
            # count a hit — `misses` stays the number of computations.
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        body = self._render_artifact(self._warm_form(response))
        if not coalesced:
            # The leader admits once; followers returning the same
            # bytes would only churn the LRU accounting.
            self._admit_hot(request_key, key.digest, body)
        return (
            body,
            "coalesced" if coalesced else response.served_from,
            key.digest,
        )

    def _admit_hot(self, request_key: tuple[str, bool, int], digest: str, body: bytes) -> None:
        self.hot.put(digest, body)
        self._hot_index[request_key] = digest

    @staticmethod
    def _warm_form(response: RunResponse) -> RunArtifact:
        """The warm-read stamped artifact for ``response`` — identical
        to what a subsequent warm read of the store would serve, so
        computed and cached answers are byte-identical."""
        if response.served_from == "store":
            return response.artifact  # execute() already stamped it
        artifact = response.artifact
        return replace(
            artifact.without_cache_stamp(),
            wall_time_s=0.0,
            cache_hit=True,
            saved_wall_time_s=artifact.wall_time_s,
        )

    @staticmethod
    def _render_artifact(artifact: RunArtifact) -> bytes:
        # Exactly what `repro run --json` writes for a warm run: the
        # byte-identity contract every tier must preserve.
        return (artifact.to_json() + "\n").encode("utf-8")

    # -- lifecycle -----------------------------------------------------
    async def start_server(self, host: str, port: int) -> "asyncio.Server":
        """The daemon's listening socket.  ``limit=MAX_LINE_BYTES`` is
        load-bearing: it makes the stream reader refuse to buffer past
        the documented request-line cap while hunting for CRLF, instead
        of accepting up to its 64 KiB default first."""
        return await asyncio.start_server(
            self.handle_connection, host=host, port=port, limit=MAX_LINE_BYTES
        )

    async def drain(self) -> None:
        """Finish in-flight work, then shut the pool down.

        Idle keep-alive connections are cancelled immediately — nothing
        is in flight on them, and waiting out their idle timeouts would
        stall shutdown for no one's benefit.  Then order matters:
        awaiting the coalescer futures resolves every computation, then
        awaiting the remaining (in-request) connection tasks (bounded by
        :data:`DRAIN_TIMEOUT_S`) lets their handlers finish writing the
        responses those computations produced.  The coalescer futures
        alone are not enough — they resolve *before* the leader/follower
        handlers render and flush, and on Python < 3.12
        ``server.wait_closed()`` does not wait for connection handlers
        either, so without this step ``asyncio.run`` would cancel
        handler tasks mid-write and truncate in-flight responses."""
        self.draining = True
        for task in tuple(self._idle):
            task.cancel()
        pending = tuple(self.coalescer.pending())
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        current = asyncio.current_task()
        connections = {t for t in self._connections if t is not current}
        if connections:
            await asyncio.wait(connections, timeout=DRAIN_TIMEOUT_S)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- connection plumbing -------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Keep-alive connection handler for ``asyncio.start_server``.

        Loops request → response until the client closes, asks for
        ``Connection: close``, exceeds the per-connection request
        budget, goes idle past the idle timeout, or the daemon drains.
        Pipelined requests are answered sequentially in arrival order.
        Every write path drains the transport before the connection can
        close — a slow reader gets its complete (error) body, never a
        truncated one."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self.stats.connections_opened += 1
        served = 0
        try:
            while not self.draining:
                # Idle phase: parked between requests (or awaiting the
                # first).  Drain cancels tasks in this phase outright.
                if task is not None:
                    self._idle.add(task)
                try:
                    timeout = (
                        READ_TIMEOUT_S
                        if served == 0
                        else self.config.idle_timeout_s
                    )
                    request = await asyncio.wait_for(
                        read_request(reader), timeout=timeout
                    )
                except asyncio.TimeoutError:
                    if served == 0:
                        # A connected-but-silent (or dribbling) client:
                        # answer 408 and close rather than parking this
                        # handler — and its socket — forever.
                        self.stats.record_parse_failure(408)
                        writer.write(
                            render_response(
                                _error_response(
                                    408,
                                    "timed out waiting for the request "
                                    f"({READ_TIMEOUT_S:g}s)",
                                ),
                                close=True,
                            )
                        )
                        await writer.drain()
                    # else: idle keep-alive expiry — close silently.
                    return
                except HttpError as exc:
                    self.stats.record_parse_failure(exc.status)
                    writer.write(
                        render_response(
                            _error_response(exc.status, exc.detail), close=True
                        )
                    )
                    await writer.drain()
                    return
                finally:
                    if task is not None:
                        self._idle.discard(task)
                if request is None:
                    return  # clean EOF: client closed between requests
                if served > 0:
                    self.stats.keepalive_reuses += 1
                response = await self.handle(request)
                served += 1
                close = (
                    not request.keep_alive
                    or served >= self.config.max_requests_per_conn
                    or self.draining
                )
                writer.write(render_response(response, close=close))
                await writer.drain()
                if close:
                    return
        except (ConnectionError, asyncio.CancelledError):
            # Client went away mid-write, or drain cancelled this
            # connection while it sat idle: nothing left to answer.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
                self._idle.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def serve_forever(config: ServeConfig) -> int:
    """Run the daemon until SIGTERM/SIGINT; the CLI's ``repro serve``.

    Prints one ``listening on http://host:port`` line to stderr once
    accepting (readiness signal for supervisors and the smoke driver),
    then serves.  On signal: stop accepting, drain, exit 0."""
    app = ServeApp(config)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix loop
            pass
    server = await app.start_server(config.host, config.port)
    bound = server.sockets[0].getsockname() if server.sockets else (
        config.host,
        config.port,
    )
    print(
        f"repro serve: listening on http://{bound[0]}:{bound[1]} "
        f"(jobs={config.jobs}, max_inflight={config.max_inflight})",
        file=sys.stderr,
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        await app.drain()
    print("repro serve: drained, exiting", file=sys.stderr, flush=True)
    return 0
