"""In-flight request coalescing for the serve daemon.

When N clients simultaneously miss on the same ``(experiment, quick,
seed)`` key, computing the artifact N times would waste N-1 workers on
bit-identical work — experiments are pure functions of their key (the
determinism contract), so one computation serves everyone.  The
:class:`Coalescer` maps each in-flight key to one ``asyncio.Future``:
the first arrival (the *leader*) runs the computation and resolves the
future; everyone else (the *followers*) awaits it.

The map doubles as the daemon's admission-control queue: its size is the
number of distinct computations in flight, which the app bounds at
``--max-inflight`` (excess misses are answered 429 — see
``docs/SERVE.md``).
"""

from __future__ import annotations

from typing import Any, Awaitable, Callable, Hashable, Iterator

import asyncio

__all__ = ["Coalescer"]


def _retrieve_exception(future: "asyncio.Future[Any]") -> None:
    # A leader whose computation failed sets the exception even when no
    # follower exists; retrieving it here keeps asyncio from logging a
    # "Future exception was never retrieved" warning at GC time.
    if not future.cancelled():
        future.exception()


class Coalescer:
    """One future per distinct in-flight key; single event loop only."""

    __slots__ = ("_inflight", "_waiting")

    def __init__(self) -> None:
        self._inflight: dict[Hashable, asyncio.Future[Any]] = {}
        self._waiting: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._inflight

    @property
    def waiting(self) -> int:
        """Followers currently parked on another request's computation
        — the daemon's true queue depth (leaders are ``len(self)``)."""
        return sum(self._waiting.values())

    def pending(self) -> Iterator["asyncio.Future[Any]"]:
        """The in-flight futures (drain awaits them before exit)."""
        return iter(tuple(self._inflight.values()))

    async def run(
        self,
        key: Hashable,
        factory: Callable[[], Awaitable[Any]],
    ) -> tuple[Any, bool]:
        """Resolve ``key`` to ``factory``'s result, computing it at most
        once across concurrent callers.

        Returns ``(result, coalesced)``: ``coalesced`` is ``True`` for a
        follower that rode an already-in-flight computation.  A failing
        computation raises in the leader *and* every follower — they all
        asked the same question and deserve the same answer.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self._waiting[key] = self._waiting.get(key, 0) + 1
            try:
                return await asyncio.shield(existing), True
            finally:
                remaining = self._waiting.get(key, 1) - 1
                if remaining > 0:
                    self._waiting[key] = remaining
                else:
                    self._waiting.pop(key, None)
        future: asyncio.Future[Any] = asyncio.get_running_loop().create_future()
        future.add_done_callback(_retrieve_exception)
        self._inflight[key] = future
        try:
            result = await factory()
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
            raise
        else:
            future.set_result(result)
            return result, False
        finally:
            self._inflight.pop(key, None)
