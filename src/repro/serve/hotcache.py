"""The serve daemon's adaptive in-memory hot tier.

The daemon's store fast path still pays a fingerprint probe, an
executor hop, and a disk read per warm request.  Under a skewed request
stream (the regime the source paper's cache-adaptive analysis is
about), a small set of hot keys dominates — so the daemon keeps the
*rendered response bytes* of recently served artifacts in process
memory and answers repeats without touching the fingerprinter, the
executor, or the disk at all.  The daemon thereby becomes a two-level
memory hierarchy in its own right: a bounded fast tier (this module)
in front of the big slow one (the content-addressed disk store).

Design (chameleon-cache style, simplified to what the daemon needs):

* **LRU main segment.**  ``digest → body bytes``, most-recently-used at
  the tail, bounded by an adaptive byte budget.
* **Ghost list.**  Keys (never bytes) of recently evicted entries.  A
  miss that hits the ghost list is a *re-reference shortly after
  eviction* — direct evidence the main segment is too small for the
  current working set — so the byte budget **grows** by the
  re-referenced entry's recorded size.
* **Adaptive decay.**  Every :data:`ADAPT_INTERVAL` accesses with no
  ghost hits, the budget decays 10% back toward its floor: capacity
  lent to a burst is returned once the working set shrinks.  The budget
  always stays within ``[capacity/8, capacity]`` — ``capacity_bytes``
  is the hard bound a misbehaving workload can never push past.

Entries are keyed by the store's **content digest**, which already
encodes the experiment id, ``quick``, ``seed``, schema/RNG versions,
environment, and the code fingerprint — so a hot entry can never be
*wrong* for its key: a code edit changes the digest, and requests
simply stop asking for the old one (stale bytes age out through the
LRU).  Invalidation therefore reduces to key selection, exactly like
the disk store.

Like :class:`~repro.serve.stats.ServeStats`, all state is touched only
from the daemon's single event loop; no locking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

__all__ = [
    "DEFAULT_HOT_BYTES",
    "MIN_TARGET_FRACTION",
    "ADAPT_INTERVAL",
    "GHOST_ENTRIES",
    "HotCache",
]

#: Default hard byte budget for the hot tier (``repro serve
#: --hot-bytes``).  Artifact bodies are a few KiB to a few hundred KiB,
#: so the default comfortably holds every experiment in the registry at
#: several seeds.
DEFAULT_HOT_BYTES = 64 * 1024 * 1024

#: The adaptive byte budget never decays below this fraction of the
#: hard capacity: a long quiet stretch must not shrink the tier so far
#: that the next burst starts from nothing.
MIN_TARGET_FRACTION = 8

#: Accesses between decay checks.  A window with at least one ghost hit
#: keeps the grown budget; a window without any returns 10% of it.
ADAPT_INTERVAL = 512

#: Most evicted keys remembered for re-reference detection.  Keys only
#: (a digest string and a size), so even the full list is ~100 KiB.
GHOST_ENTRIES = 1024


class HotCache:
    """A bounded adaptive LRU of rendered response bytes, digest-keyed.

    ``capacity_bytes=0`` disables the tier entirely (every ``get``
    misses, ``put`` is a no-op) — the ``--hot-bytes 0`` escape hatch.
    """

    __slots__ = (
        "capacity_bytes",
        "target_bytes",
        "size_bytes",
        "hits",
        "misses",
        "ghost_hits",
        "evictions",
        "resizes",
        "_main",
        "_ghost",
        "_window_accesses",
        "_window_ghost_hits",
        "_ghost_cap",
    )

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_HOT_BYTES,
        *,
        ghost_entries: int = GHOST_ENTRIES,
    ):
        if capacity_bytes < 0:
            raise ValueError(
                f"hot cache capacity must be >= 0, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        # Start mid-budget: room to grow on ghost evidence, room to
        # decay when the working set turns out tiny.
        self.target_bytes = capacity_bytes // 2
        self.size_bytes = 0
        self.hits = 0
        self.misses = 0
        self.ghost_hits = 0
        self.evictions = 0
        self.resizes = 0
        self._main: OrderedDict[str, bytes] = OrderedDict()
        self._ghost: OrderedDict[str, int] = OrderedDict()
        self._window_accesses = 0
        self._window_ghost_hits = 0
        self._ghost_cap = max(0, ghost_entries)

    def __len__(self) -> int:
        return len(self._main)

    def __contains__(self, digest: str) -> bool:
        return digest in self._main

    @property
    def min_target_bytes(self) -> int:
        return self.capacity_bytes // MIN_TARGET_FRACTION

    # -- access --------------------------------------------------------
    def get(self, digest: str) -> bytes | None:
        """The cached bytes for ``digest``, or ``None`` on miss.

        A miss whose key sits on the ghost list counts a ghost hit and
        grows the byte budget — the caller is expected to re-``put``
        the entry after serving it the slow way, completing the
        promotion."""
        body = self._main.get(digest)
        if body is not None:
            self.hits += 1
            self._main.move_to_end(digest)
            self._adapt_tick()
            return body
        self.misses += 1
        ghost_size = self._ghost.pop(digest, None)
        if ghost_size is not None:
            self.ghost_hits += 1
            self._window_ghost_hits += 1
            self._grow(ghost_size)
        self._adapt_tick()
        return None

    def put(self, digest: str, body: bytes) -> None:
        """Admit ``body`` under ``digest``, evicting LRU entries into
        the ghost list until the adaptive budget is respected."""
        if self.capacity_bytes == 0:
            return
        if len(body) > self.capacity_bytes:
            return  # larger than the whole tier: not cacheable
        previous = self._main.pop(digest, None)
        if previous is not None:
            self.size_bytes -= len(previous)
        self._ghost.pop(digest, None)  # a live entry shadows its ghost
        self._main[digest] = body
        self.size_bytes += len(body)
        budget = max(self.target_bytes, len(body))
        while self.size_bytes > budget and len(self._main) > 1:
            self._evict_lru()

    def invalidate(self, digest: str) -> None:
        """Drop ``digest`` from both segments (no ghost trace: an
        explicit invalidation is not an eviction-pressure signal)."""
        body = self._main.pop(digest, None)
        if body is not None:
            self.size_bytes -= len(body)
        self._ghost.pop(digest, None)

    def clear(self) -> None:
        self._main.clear()
        self._ghost.clear()
        self.size_bytes = 0

    # -- adaptation ----------------------------------------------------
    def _evict_lru(self) -> None:
        digest, body = self._main.popitem(last=False)
        self.size_bytes -= len(body)
        self.evictions += 1
        self._ghost[digest] = len(body)
        self._ghost.move_to_end(digest)
        while len(self._ghost) > self._ghost_cap:
            self._ghost.popitem(last=False)

    def _grow(self, ghost_size: int) -> None:
        grown = min(self.capacity_bytes, self.target_bytes + ghost_size)
        if grown != self.target_bytes:
            self.target_bytes = grown
            self.resizes += 1

    def _adapt_tick(self) -> None:
        self._window_accesses += 1
        if self._window_accesses < ADAPT_INTERVAL:
            return
        if self._window_ghost_hits == 0:
            decayed = max(
                self.min_target_bytes, (self.target_bytes * 9) // 10
            )
            if decayed != self.target_bytes:
                self.target_bytes = decayed
                self.resizes += 1
                while self.size_bytes > max(self.target_bytes, 1) and len(
                    self._main
                ) > 1:
                    self._evict_lru()
        self._window_accesses = 0
        self._window_ghost_hits = 0

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Counters and gauges for ``/v1/stats`` and ``/v1/metrics``."""
        return {
            "entries": len(self._main),
            "bytes": self.size_bytes,
            "target_bytes": self.target_bytes,
            "capacity_bytes": self.capacity_bytes,
            "ghost_entries": len(self._ghost),
            "hits": self.hits,
            "misses": self.misses,
            "ghost_hits": self.ghost_hits,
            "evictions": self.evictions,
            "resizes": self.resizes,
        }
