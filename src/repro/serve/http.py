"""A minimal stdlib-only asyncio HTTP/1.1 layer for the serve daemon.

The container image ships no async HTTP framework, and the daemon's
needs are narrow — parse ``GET`` request lines plus headers, route on
the path, write JSON responses — so this module implements exactly that
over ``asyncio.start_server`` streams.

Connections are **keep-alive by default** (HTTP/1.1 semantics): the
connection handler in :mod:`repro.serve.app` loops ``read_request`` →
``render_response`` until the client asks for ``Connection: close``,
the per-connection request budget is spent, the idle timeout expires,
or the daemon drains.  Pipelined requests — several requests written
before the first response is read — are serviced sequentially in
arrival order, which is exactly what HTTP/1.1 pipelining requires of a
server.

Limits are deliberate: request line and headers are capped at
:data:`MAX_LINE_BYTES` *at the stream layer* (the server socket is
created with ``limit=MAX_LINE_BYTES``, so ``readuntil`` refuses to
buffer more than the cap while hunting for a terminator — a client
cannot park 64 KiB per connection in the reader's default buffer),
header count is capped (:data:`MAX_HEADER_LINES`), and request bodies
are ignored entirely — every endpoint is a ``GET``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping
from urllib.parse import parse_qsl, unquote, urlsplit

import asyncio

__all__ = [
    "MAX_LINE_BYTES",
    "MAX_HEADER_LINES",
    "READ_TIMEOUT_S",
    "STATUS_REASONS",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "render_response",
]

#: Longest accepted request/header line, in bytes, *excluding* the
#: CRLF terminator.  Enforced at the stream layer: pass this as
#: ``limit=`` to ``asyncio.start_server`` so an unterminated line is
#: rejected as soon as the cap is exceeded instead of buffering up to
#: the 64 KiB ``StreamReader`` default first.
MAX_LINE_BYTES = 8192

#: Most header lines accepted before the request is rejected.
MAX_HEADER_LINES = 64

#: How long a connected client gets to deliver its complete request.
#: Without a bound, a client that connects and goes silent would park
#: its connection handler in ``readuntil`` forever — one leaked task and
#: socket per such client for the daemon's lifetime.  Generous compared
#: to the one-GET-line requests the API takes; on expiry the handler
#: answers 408 and closes.  (Between requests on a keep-alive
#: connection the separate — configurable — idle timeout applies; see
#: ``ServeConfig.idle_timeout_s``.)
READ_TIMEOUT_S = 10.0

STATUS_REASONS: Mapping[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A malformed or oversized request; carries the status to answer."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, decoded path, query, headers."""

    method: str
    path: str
    query: Mapping[str, str]
    headers: Mapping[str, str]
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        """Whether the client may reuse the connection afterwards.

        HTTP/1.1 defaults to keep-alive unless ``Connection: close``;
        HTTP/1.0 defaults to close unless ``Connection: keep-alive``.
        """
        connection = self.headers.get("connection", "").strip().lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass(frozen=True)
class HttpResponse:
    """One response to render: status, raw body, extra headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Mapping[str, str] = field(default_factory=dict)


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF before any request: client went away
        raise HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError as exc:
        # The stream refused to buffer past its limit while hunting for
        # CRLF.  The offending bytes are *left in the buffer*; consume
        # them (non-blocking — they are already buffered) so the
        # transport can flush our 400 cleanly instead of resetting the
        # connection with unread data pending.
        await reader.read(exc.consumed + 2)
        raise HttpError(400, "request line too long") from None
    if len(line) - 2 > MAX_LINE_BYTES:
        # Defense in depth for readers created with a larger stream
        # limit.  The cap is on the line *content*: the CRLF terminator
        # does not count against MAX_LINE_BYTES.
        raise HttpError(400, "request line too long")
    return line[:-2]


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request from ``reader``; ``None`` on clean EOF.

    Raises :class:`HttpError` (status 400/405) on anything malformed;
    the connection handler turns that into the matching response."""
    request_line = await _read_line(reader)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, version = parts
    if method != "GET":
        raise HttpError(405, f"method {method} not allowed; this is a GET API")
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        line = await _read_line(reader)
        if not line:
            return HttpRequest(
                method=method,
                path=unquote(split.path),
                query=query,
                headers=headers,
                version=version,
            )
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    raise HttpError(400, "too many header lines")


def render_response(response: HttpResponse, *, close: bool = True) -> bytes:
    """The full wire form of ``response`` (status line to body).

    ``close`` selects the ``Connection`` header: the keep-alive request
    loop passes ``close=False`` while the connection stays reusable."""
    reason = STATUS_REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + response.body
