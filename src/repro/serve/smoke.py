"""End-to-end smoke driver for the serve daemon (CI's ``serve-smoke``).

Run as ``python -m repro.serve.smoke``.  The script:

1. warms a fresh store offline (two ``repro run --json`` passes; the
   second, warm, pass's artifact file is the byte-identity reference);
2. boots ``repro serve`` against that store as a subprocess and waits
   for ``/v1/healthz``;
3. fires 50 concurrent requests — warm hits, one heavily-duplicated
   cold key, and a handful of distinct cold keys — and checks every
   response: status 200, and the body byte-identical to what an offline
   warm ``repro run --json`` writes for the same key;
4. asserts the daemon's ``/v1/stats``: every duplicate of the cold key
   coalesced onto **one** computation (``misses`` counts distinct
   computations only) and the hit count matches the warm requests;
5. sends SIGTERM and requires a clean drain (exit code 0).

Exit code 0 on success, 1 with a diagnostic on any failure — CI-ready.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

import asyncio

__all__ = [
    "HIT_REQUESTS",
    "DUPLICATE_REQUESTS",
    "DISTINCT_MISS_SEEDS",
    "SmokeFailure",
    "http_get",
    "run_smoke",
    "main",
]

#: Warm-hit requests against the pre-warmed (experiment, quick, seed).
HIT_REQUESTS = 20

#: Concurrent duplicates of one cold key — must coalesce to 1 computation.
DUPLICATE_REQUESTS = 25

#: Distinct additional cold seeds (each its own computation).
DISTINCT_MISS_SEEDS = (2, 3, 4, 5, 6)

_EXPERIMENT = "fig1"
_WARM_SEED = 0
_DUPLICATE_SEED = 1


class SmokeFailure(Exception):
    """One failed smoke assertion; the message is the diagnostic."""


@dataclass(frozen=True)
class _HttpReply:
    status: int
    headers: Mapping[str, str]
    body: bytes


async def http_get(host: str, port: int, target: str) -> _HttpReply:
    """One minimal HTTP/1.1 GET against the daemon (connection: close)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {target} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _sep, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    try:
        status = int(lines[0].split(" ")[1])
    except (IndexError, ValueError):
        raise SmokeFailure(f"malformed response head: {lines[0]!r}") from None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return _HttpReply(status=status, headers=headers, body=body)


def _repro(*argv: str) -> None:
    """Run one offline ``repro`` CLI command; raise on failure."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        raise SmokeFailure(
            f"offline `repro {' '.join(argv)}` failed "
            f"(rc={result.returncode}):\n{result.stderr}"
        )


def _reference_bytes(cache_dir: str, json_dir: Path, seed: int) -> bytes:
    """The bytes a warm offline ``repro run --json`` writes for
    ``(fig1, quick, seed)`` against ``cache_dir`` — the byte-identity
    oracle every served response is compared against."""
    out = json_dir / f"seed{seed}"
    _repro(
        "run",
        _EXPERIMENT,
        "--quick",
        "--seed",
        str(seed),
        "--cache-dir",
        cache_dir,
        "--json",
        str(out),
    )
    return (out / f"{_EXPERIMENT}.json").read_bytes()


async def _wait_healthy(host: str, port: int, attempts: int = 100) -> None:
    for _ in range(attempts):
        try:
            reply = await http_get(host, port, "/v1/healthz")
        except (ConnectionError, OSError):
            await asyncio.sleep(0.1)
            continue
        if reply.status == 200:
            return
        await asyncio.sleep(0.1)
    raise SmokeFailure(f"daemon never became healthy on {host}:{port}")


def _free_port(host: str) -> int:
    import socket

    with socket.socket() as sock:
        sock.bind((host, 0))
        return int(sock.getsockname()[1])


async def _drive(host: str, port: int) -> dict[str, object]:
    """Fire the concurrent request mix; return path→body and stats."""
    await _wait_healthy(host, port)
    targets = (
        [f"/v1/run/{_EXPERIMENT}?seed={_WARM_SEED}"] * HIT_REQUESTS
        + [f"/v1/run/{_EXPERIMENT}?seed={_DUPLICATE_SEED}"] * DUPLICATE_REQUESTS
        + [f"/v1/run/{_EXPERIMENT}?seed={seed}" for seed in DISTINCT_MISS_SEEDS]
    )
    replies = await asyncio.gather(
        *(http_get(host, port, target) for target in targets)
    )
    for target, reply in zip(targets, replies):
        if reply.status != 200:
            raise SmokeFailure(
                f"{target} answered {reply.status}: "
                f"{reply.body.decode('utf-8', 'replace')[:200]}"
            )
    stats_reply = await http_get(host, port, "/v1/stats")
    if stats_reply.status != 200:
        raise SmokeFailure(f"/v1/stats answered {stats_reply.status}")
    bodies: dict[int, set[bytes]] = {}
    seeds = (
        [_WARM_SEED] * HIT_REQUESTS
        + [_DUPLICATE_SEED] * DUPLICATE_REQUESTS
        + list(DISTINCT_MISS_SEEDS)
    )
    for seed, reply in zip(seeds, replies):
        bodies.setdefault(seed, set()).add(reply.body)
    return {"bodies": bodies, "stats": json.loads(stats_reply.body)}


def run_smoke(host: str = "127.0.0.1", port: int | None = None) -> int:
    """The whole smoke sequence; returns a process exit code."""
    port = _free_port(host) if port is None else port
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        cache_dir = os.path.join(tmp, "store")
        json_dir = Path(tmp) / "json"
        # 1. warm the store offline; the second pass is the warm oracle.
        _repro(
            "run", _EXPERIMENT, "--quick",
            "--seed", str(_WARM_SEED), "--cache-dir", cache_dir,
        )
        warm_reference = _reference_bytes(cache_dir, json_dir, _WARM_SEED)
        # 2. boot the daemon on the same store.
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--host", host, "--port", str(port),
                "--jobs", "1", "--cache-dir", cache_dir,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            outcome = asyncio.run(_drive(host, port))
            # 5. clean SIGTERM drain.
            daemon.send_signal(signal.SIGTERM)
            try:
                _stdout, stderr = daemon.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()
                raise SmokeFailure("daemon did not drain within 30s of SIGTERM")
            if daemon.returncode != 0:
                raise SmokeFailure(
                    f"daemon exited {daemon.returncode} after SIGTERM:\n{stderr}"
                )
            if "drained" not in stderr:
                raise SmokeFailure(
                    f"daemon exited without announcing drain:\n{stderr}"
                )
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
        bodies = outcome["bodies"]
        stats = outcome["stats"]
        assert isinstance(bodies, dict) and isinstance(stats, dict)
        # 3. byte-identity: every response equals the offline warm JSON.
        for seed, seen in sorted(bodies.items()):
            if len(seen) != 1:
                raise SmokeFailure(
                    f"seed {seed}: {len(seen)} distinct response bodies "
                    "(expected exactly one)"
                )
            reference = (
                warm_reference
                if seed == _WARM_SEED
                else _reference_bytes(cache_dir, json_dir, seed)
            )
            if next(iter(seen)) != reference:
                raise SmokeFailure(
                    f"seed {seed}: served body differs from offline "
                    "`repro run --json` bytes"
                )
        # 4. stats: one computation per distinct cold key, no extras.
        distinct_cold = 1 + len(DISTINCT_MISS_SEEDS)
        if stats["misses"] != distinct_cold:
            raise SmokeFailure(
                f"expected exactly {distinct_cold} computations (one per "
                f"distinct cold key), stats say misses={stats['misses']}"
            )
        if stats["coalesced"] + stats["misses"] + stats["hits"] != (
            HIT_REQUESTS + DUPLICATE_REQUESTS + len(DISTINCT_MISS_SEEDS)
        ):
            raise SmokeFailure(f"request accounting does not add up: {stats}")
        if stats["coalesced"] < 1:
            raise SmokeFailure(
                f"expected coalesced > 0 from {DUPLICATE_REQUESTS} duplicate "
                f"cold requests, stats say coalesced={stats['coalesced']}"
            )
        if stats["hits"] < HIT_REQUESTS:
            raise SmokeFailure(
                f"expected >= {HIT_REQUESTS} warm hits, "
                f"stats say hits={stats['hits']}"
            )
        print(
            f"serve smoke: OK — {stats['hits']} hits, {stats['misses']} "
            f"computations, {stats['coalesced']} coalesced, byte-identical "
            "to offline artifacts, clean drain"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke",
        description="end-to-end smoke test for the repro serve daemon",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None, help="default: pick a free port"
    )
    args = parser.parse_args(argv)
    try:
        return run_smoke(host=args.host, port=args.port)
    except SmokeFailure as exc:
        print(f"serve smoke: FAIL — {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
