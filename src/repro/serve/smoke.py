"""End-to-end smoke driver for the serve daemon (CI's ``serve-smoke``).

Run as ``python -m repro.serve.smoke``.  The script:

1. warms a fresh store offline (two ``repro run --json`` passes; the
   second, warm, pass's artifact file is the byte-identity reference);
2. boots ``repro serve`` against that store as a subprocess and waits
   for ``/v1/healthz``;
3. drives one **keep-alive** connection through multiple sequential
   requests, checking the repeated warm request is served with
   ``X-Repro-Served-From: memory`` and that every body is
   byte-identical to the offline warm ``repro run --json`` bytes;
4. fires 50 concurrent one-shot requests — warm hits, one
   heavily-duplicated cold key, and a handful of distinct cold keys —
   and checks every response: status 200, and the body byte-identical
   to the offline reference for its key;
5. hits ``GET /v1/run-all`` and checks the batched artifact equals the
   offline artifact object;
6. scrapes ``GET /v1/metrics``, requires it to parse as Prometheus
   text exposition format with nonzero request and hot-tier counters;
7. asserts the daemon's ``/v1/stats``: every duplicate of the cold key
   coalesced onto **one** computation (``misses`` counts distinct
   computations only) and the tier accounting sums;
8. opens an idle keep-alive connection, sends SIGTERM, and requires a
   clean drain (exit code 0) with the idle connection closed promptly.

Exit code 0 on success, 1 with a diagnostic on any failure — CI-ready.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

import asyncio

__all__ = [
    "HIT_REQUESTS",
    "DUPLICATE_REQUESTS",
    "DISTINCT_MISS_SEEDS",
    "KEEPALIVE_REQUESTS",
    "SmokeFailure",
    "http_get",
    "read_http_response",
    "parse_prometheus",
    "run_smoke",
    "main",
]

#: Warm-hit requests against the pre-warmed (experiment, quick, seed).
HIT_REQUESTS = 20

#: Concurrent duplicates of one cold key — must coalesce to 1 computation.
DUPLICATE_REQUESTS = 25

#: Distinct additional cold seeds (each its own computation).
DISTINCT_MISS_SEEDS = (2, 3, 4, 5, 6)

#: Sequential requests sent over one keep-alive connection.
KEEPALIVE_REQUESTS = 3

_EXPERIMENT = "fig1"
_WARM_SEED = 0
_DUPLICATE_SEED = 1


class SmokeFailure(Exception):
    """One failed smoke assertion; the message is the diagnostic."""


@dataclass(frozen=True)
class _HttpReply:
    status: int
    headers: Mapping[str, str]
    body: bytes


async def read_http_response(reader: asyncio.StreamReader) -> _HttpReply:
    """Parse one response frame (status line, headers, Content-Length
    body) without reading past it — the keep-alive client primitive."""
    head_lines: list[str] = []
    while True:
        line = await reader.readline()
        if not line:
            raise SmokeFailure("connection closed mid-response")
        text = line.decode("latin-1").rstrip("\r\n")
        if not text:
            break
        head_lines.append(text)
    if not head_lines:
        raise SmokeFailure("empty response head")
    try:
        status = int(head_lines[0].split(" ")[1])
    except (IndexError, ValueError):
        raise SmokeFailure(
            f"malformed response head: {head_lines[0]!r}"
        ) from None
    headers: dict[str, str] = {}
    for text in head_lines[1:]:
        name, sep, value = text.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers["content-length"])
    except (KeyError, ValueError):
        raise SmokeFailure(
            f"response without a usable Content-Length: {headers!r}"
        ) from None
    body = await reader.readexactly(length)
    return _HttpReply(status=status, headers=headers, body=body)


async def http_get(host: str, port: int, target: str) -> _HttpReply:
    """One one-shot HTTP/1.1 GET against the daemon
    (``Connection: close``)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        return await read_http_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})?\s+"
    r"(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$"
)


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse Prometheus text exposition format; raises
    :class:`SmokeFailure` on any line that is neither a comment nor a
    well-formed sample.  Returns ``{name_or_labeled_name: value}``."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        if not _PROM_SAMPLE.match(line):
            raise SmokeFailure(f"unparseable metrics line: {line!r}")
        name, _, value = line.rpartition(" ")
        try:
            samples[name] = float(value)
        except ValueError:
            raise SmokeFailure(f"non-numeric sample value: {line!r}") from None
    if not samples:
        raise SmokeFailure("metrics body contained no samples")
    return samples


def _repro(*argv: str) -> None:
    """Run one offline ``repro`` CLI command; raise on failure."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        raise SmokeFailure(
            f"offline `repro {' '.join(argv)}` failed "
            f"(rc={result.returncode}):\n{result.stderr}"
        )


def _reference_bytes(cache_dir: str, json_dir: Path, seed: int) -> bytes:
    """The bytes a warm offline ``repro run --json`` writes for
    ``(fig1, quick, seed)`` against ``cache_dir`` — the byte-identity
    oracle every served response is compared against."""
    out = json_dir / f"seed{seed}"
    _repro(
        "run",
        _EXPERIMENT,
        "--quick",
        "--seed",
        str(seed),
        "--cache-dir",
        cache_dir,
        "--json",
        str(out),
    )
    return (out / f"{_EXPERIMENT}.json").read_bytes()


async def _wait_healthy(host: str, port: int, attempts: int = 100) -> None:
    for _ in range(attempts):
        try:
            reply = await http_get(host, port, "/v1/healthz")
        except (ConnectionError, OSError):
            await asyncio.sleep(0.1)
            continue
        if reply.status == 200:
            return
        await asyncio.sleep(0.1)
    raise SmokeFailure(f"daemon never became healthy on {host}:{port}")


def _free_port(host: str) -> int:
    import socket

    with socket.socket() as sock:
        sock.bind((host, 0))
        return int(sock.getsockname()[1])


async def _drive_keepalive(
    host: str, port: int, warm_reference: bytes
) -> None:
    """Phase 3: several sequential requests on ONE connection; the
    repeated warm request must come back from the memory tier with the
    offline reference bytes."""
    target = f"/v1/run/{_EXPERIMENT}?seed={_WARM_SEED}"
    reader, writer = await asyncio.open_connection(host, port)
    served_from: list[str] = []
    try:
        for i in range(KEEPALIVE_REQUESTS):
            writer.write(
                f"GET {target} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode(
                    "latin-1"
                )
            )
            await writer.drain()
            reply = await asyncio.wait_for(read_http_response(reader), 30)
            if reply.status != 200:
                raise SmokeFailure(
                    f"keep-alive request {i} answered {reply.status}"
                )
            if reply.headers.get("connection") != "keep-alive":
                raise SmokeFailure(
                    f"keep-alive request {i} answered "
                    f"Connection: {reply.headers.get('connection')!r}"
                )
            if reply.body != warm_reference:
                raise SmokeFailure(
                    f"keep-alive request {i}: body differs from the "
                    "offline warm reference"
                )
            served_from.append(reply.headers.get("x-repro-served-from", "?"))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if "memory" not in served_from[1:]:
        raise SmokeFailure(
            f"repeated warm request never hit the memory tier: {served_from}"
        )


async def _drive_concurrent(host: str, port: int) -> dict[str, object]:
    """Phase 4: the concurrent one-shot request mix."""
    targets = (
        [f"/v1/run/{_EXPERIMENT}?seed={_WARM_SEED}"] * HIT_REQUESTS
        + [f"/v1/run/{_EXPERIMENT}?seed={_DUPLICATE_SEED}"] * DUPLICATE_REQUESTS
        + [f"/v1/run/{_EXPERIMENT}?seed={seed}" for seed in DISTINCT_MISS_SEEDS]
    )
    replies = await asyncio.gather(
        *(http_get(host, port, target) for target in targets)
    )
    for target, reply in zip(targets, replies):
        if reply.status != 200:
            raise SmokeFailure(
                f"{target} answered {reply.status}: "
                f"{reply.body.decode('utf-8', 'replace')[:200]}"
            )
    bodies: dict[int, set[bytes]] = {}
    seeds = (
        [_WARM_SEED] * HIT_REQUESTS
        + [_DUPLICATE_SEED] * DUPLICATE_REQUESTS
        + list(DISTINCT_MISS_SEEDS)
    )
    for seed, reply in zip(seeds, replies):
        bodies.setdefault(seed, set()).add(reply.body)
    return {"bodies": bodies}


async def _drive_batch(host: str, port: int, warm_reference: bytes) -> None:
    """Phase 5: the batch endpoint serves the same artifact object."""
    reply = await http_get(
        host,
        port,
        f"/v1/run-all?experiments={_EXPERIMENT}&seed={_WARM_SEED}",
    )
    if reply.status != 200:
        raise SmokeFailure(f"/v1/run-all answered {reply.status}")
    payload = json.loads(reply.body)
    if payload.get("errors"):
        raise SmokeFailure(f"/v1/run-all reported errors: {payload['errors']}")
    artifact = payload.get("artifacts", {}).get(_EXPERIMENT)
    if artifact != json.loads(warm_reference):
        raise SmokeFailure(
            "/v1/run-all artifact differs from the offline reference"
        )
    source = payload.get("served_from", {}).get(_EXPERIMENT)
    if source not in ("memory", "store"):
        raise SmokeFailure(
            f"/v1/run-all warm leg served from {source!r}, "
            "expected memory or store"
        )


async def _drive_metrics(host: str, port: int) -> None:
    """Phase 6: /v1/metrics parses as Prometheus text, counters move."""
    reply = await http_get(host, port, "/v1/metrics")
    if reply.status != 200:
        raise SmokeFailure(f"/v1/metrics answered {reply.status}")
    if not reply.headers.get("content-type", "").startswith("text/plain"):
        raise SmokeFailure(
            f"/v1/metrics content-type {reply.headers.get('content-type')!r}"
        )
    samples = parse_prometheus(reply.body.decode("utf-8"))
    for name in (
        "repro_serve_requests_total",
        "repro_serve_memory_hits_total",
        "repro_serve_hot_hits_total",
        "repro_serve_misses_total",
        "repro_serve_keepalive_reuses_total",
    ):
        if samples.get(name, 0) <= 0:
            raise SmokeFailure(
                f"expected nonzero {name} in /v1/metrics, "
                f"got {samples.get(name)!r}"
            )


async def _fetch_stats(host: str, port: int) -> dict[str, object]:
    reply = await http_get(host, port, "/v1/stats")
    if reply.status != 200:
        raise SmokeFailure(f"/v1/stats answered {reply.status}")
    return dict(json.loads(reply.body))


async def _drive(
    host: str, port: int, warm_reference: bytes
) -> dict[str, object]:
    await _wait_healthy(host, port)
    await _drive_keepalive(host, port, warm_reference)
    outcome = await _drive_concurrent(host, port)
    await _drive_batch(host, port, warm_reference)
    await _drive_metrics(host, port)
    outcome["stats"] = await _fetch_stats(host, port)
    # Leave one keep-alive connection open and idle: phase 8 checks the
    # SIGTERM drain closes it promptly instead of waiting out its idle
    # timeout.
    idle_reader, idle_writer = await asyncio.open_connection(host, port)
    idle_writer.write(
        f"GET /v1/healthz HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("latin-1")
    )
    await idle_writer.drain()
    await read_http_response(idle_reader)
    outcome["idle_connection"] = (idle_reader, idle_writer)
    return outcome


async def _expect_idle_close(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """The drained daemon must have closed the idle keep-alive
    connection (EOF), well before its 30 s idle timeout."""
    try:
        trailing = await asyncio.wait_for(reader.read(), timeout=5)
    except asyncio.TimeoutError:
        raise SmokeFailure(
            "idle keep-alive connection still open 5s after drain"
        ) from None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if trailing:
        raise SmokeFailure(
            f"idle connection received unexpected bytes at drain: "
            f"{trailing[:80]!r}"
        )


def run_smoke(host: str = "127.0.0.1", port: int | None = None) -> int:
    """The whole smoke sequence; returns a process exit code."""
    port = _free_port(host) if port is None else port
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        cache_dir = os.path.join(tmp, "store")
        json_dir = Path(tmp) / "json"
        # 1. warm the store offline; the second pass is the warm oracle.
        _repro(
            "run", _EXPERIMENT, "--quick",
            "--seed", str(_WARM_SEED), "--cache-dir", cache_dir,
        )
        warm_reference = _reference_bytes(cache_dir, json_dir, _WARM_SEED)
        # 2. boot the daemon on the same store.
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--host", host, "--port", str(port),
                "--jobs", "1", "--cache-dir", cache_dir,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            outcome = asyncio.run(_drive_and_drain(host, port, warm_reference, daemon))
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
        bodies = outcome["bodies"]
        stats = outcome["stats"]
        assert isinstance(bodies, dict) and isinstance(stats, dict)
        # Byte-identity: every response equals the offline warm JSON.
        for seed, seen in sorted(bodies.items()):
            if len(seen) != 1:
                raise SmokeFailure(
                    f"seed {seed}: {len(seen)} distinct response bodies "
                    "(expected exactly one)"
                )
            reference = (
                warm_reference
                if seed == _WARM_SEED
                else _reference_bytes(cache_dir, json_dir, seed)
            )
            if next(iter(seen)) != reference:
                raise SmokeFailure(
                    f"seed {seed}: served body differs from offline "
                    "`repro run --json` bytes"
                )
        # Stats: one computation per distinct cold key, no extras, and
        # the four serving tiers account for every run leg.
        distinct_cold = 1 + len(DISTINCT_MISS_SEEDS)
        if stats["misses"] != distinct_cold:
            raise SmokeFailure(
                f"expected exactly {distinct_cold} computations (one per "
                f"distinct cold key), stats say misses={stats['misses']}"
            )
        run_legs = (
            KEEPALIVE_REQUESTS
            + HIT_REQUESTS
            + DUPLICATE_REQUESTS
            + len(DISTINCT_MISS_SEEDS)
            + 1  # the /v1/run-all leg
        )
        served = (
            stats["hits"]
            + stats["memory_hits"]
            + stats["misses"]
            + stats["coalesced"]
        )
        if served != run_legs:
            raise SmokeFailure(
                f"tier accounting does not add up: {served} served != "
                f"{run_legs} run legs ({stats})"
            )
        if stats["coalesced"] < 1:
            raise SmokeFailure(
                f"expected coalesced > 0 from {DUPLICATE_REQUESTS} duplicate "
                f"cold requests, stats say coalesced={stats['coalesced']}"
            )
        if stats["memory_hits"] < 1:
            raise SmokeFailure(
                f"expected memory-tier hits, stats say "
                f"memory_hits={stats['memory_hits']}"
            )
        if stats["hits"] + stats["memory_hits"] < HIT_REQUESTS:
            raise SmokeFailure(
                f"expected >= {HIT_REQUESTS} warm hits across tiers, "
                f"stats say hits={stats['hits']} "
                f"memory_hits={stats['memory_hits']}"
            )
        hot = stats.get("hot")
        if not isinstance(hot, dict) or hot.get("hits", 0) < 1:
            raise SmokeFailure(f"expected hot-tier hits in stats, got {hot}")
        print(
            f"serve smoke: OK — {stats['hits']} store hits, "
            f"{stats['memory_hits']} memory hits, {stats['misses']} "
            f"computations, {stats['coalesced']} coalesced, keep-alive + "
            "run-all + metrics verified, byte-identical to offline "
            "artifacts, clean drain with an idle connection open"
        )
    return 0


async def _drive_and_drain(
    host: str,
    port: int,
    warm_reference: bytes,
    daemon: "subprocess.Popen[str]",
) -> dict[str, object]:
    """Drive every request phase, then SIGTERM with an idle keep-alive
    connection still open and verify the clean drain."""
    outcome = await _drive(host, port, warm_reference)
    idle_reader, idle_writer = outcome.pop("idle_connection")  # type: ignore[misc]
    daemon.send_signal(signal.SIGTERM)
    loop = asyncio.get_running_loop()
    try:
        _stdout, stderr = await asyncio.wait_for(
            loop.run_in_executor(None, daemon.communicate), timeout=30
        )
    except asyncio.TimeoutError:
        daemon.kill()
        raise SmokeFailure(
            "daemon did not drain within 30s of SIGTERM "
            "(an idle keep-alive connection was open)"
        ) from None
    if daemon.returncode != 0:
        raise SmokeFailure(
            f"daemon exited {daemon.returncode} after SIGTERM:\n{stderr}"
        )
    if "drained" not in stderr:
        raise SmokeFailure(
            f"daemon exited without announcing drain:\n{stderr}"
        )
    await _expect_idle_close(idle_reader, idle_writer)
    return outcome


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke",
        description="end-to-end smoke test for the repro serve daemon",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None, help="default: pick a free port"
    )
    args = parser.parse_args(argv)
    try:
        return run_smoke(host=args.host, port=args.port)
    except SmokeFailure as exc:
        print(f"serve smoke: FAIL — {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
