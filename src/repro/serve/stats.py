"""Request accounting for the serve daemon's ``/v1/stats`` endpoint.

Counters are plain in-process integers — the daemon is one event loop,
so no locking is needed — plus a bounded ring of recent request
latencies from which p50/p99 are computed on demand.  Latencies are
measured with ``perf_counter`` (monotonic, duration-only) and never
reach any cached payload, so the wallclock discipline is satisfied by
construction.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any

__all__ = ["LATENCY_WINDOW", "ServeStats"]

#: How many recent request latencies the percentile window keeps.  A
#: bounded window makes p50/p99 reflect *current* behaviour instead of
#: averaging over the daemon's whole lifetime.
LATENCY_WINDOW = 2048


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 when
    empty — a daemon that served nothing has no latency to report)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class ServeStats:
    """Mutable per-daemon counters; one instance per :class:`ServeApp`."""

    __slots__ = (
        "requests",
        "hits",
        "misses",
        "coalesced",
        "rejected",
        "errors",
        "_latencies",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.rejected = 0
        self.errors = 0
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)

    def start_clock(self) -> float:
        """An opaque start token for :meth:`observe` (monotonic)."""
        # Service latency measurement: duration-only, never cached.
        return time.perf_counter()  # repro-lint: disable=nondet-wallclock

    def observe(self, start: float) -> None:
        """Record one served request's latency."""
        # Same discipline as start_clock: a duration, not a timestamp.
        elapsed = time.perf_counter() - start  # repro-lint: disable=nondet-wallclock
        self._latencies.append(elapsed)

    def latency_percentiles(self) -> dict[str, float]:
        """``{"p50_ms": ..., "p99_ms": ...}`` over the recent window."""
        window = sorted(self._latencies)
        return {
            "p50_ms": _percentile(window, 0.50) * 1000.0,
            "p99_ms": _percentile(window, 0.99) * 1000.0,
        }

    def snapshot(
        self, inflight: int, queue_depth: int, draining: bool
    ) -> dict[str, Any]:
        """The ``/v1/stats`` payload (gauges passed in by the app)."""
        payload: dict[str, Any] = {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
            "inflight": inflight,
            "queue_depth": queue_depth,
            "draining": draining,
        }
        payload["latency"] = self.latency_percentiles()
        return payload
