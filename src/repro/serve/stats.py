"""Request accounting for ``/v1/stats`` and ``/v1/metrics``.

Counters are plain in-process integers — the daemon is one event loop,
so no locking is needed — plus a bounded ring of recent request
latencies from which quantiles are computed on demand.  Latencies are
measured with ``perf_counter`` (monotonic, duration-only) and never
reach any cached payload, so the wallclock discipline is satisfied by
construction.

Two families of failure are counted separately:

* ``errors`` — requests that *reached the router* and blew up there
  (the 500 family).
* ``malformed`` / ``timeouts`` — requests that never parsed: bad
  request lines, oversized lines, header junk (``malformed``, the
  parse-level 400/405 family) and clients that went silent before
  delivering a request (``timeouts``, the 408s).  Both are folded into
  ``requests`` so the top-line counter reflects every request the
  daemon answered, not only the well-formed ones.

:meth:`ServeStats.render_prometheus` renders the same counters (plus
gauges and the hot-tier snapshot handed in by the app) in Prometheus
text exposition format — ``# TYPE`` comments, one ``name{labels} value``
sample per line — for ``GET /v1/metrics``.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Mapping

__all__ = ["LATENCY_WINDOW", "LATENCY_QUANTILES", "ServeStats"]

#: How many recent request latencies the percentile window keeps.  A
#: bounded window makes the quantiles reflect *current* behaviour
#: instead of averaging over the daemon's whole lifetime.
LATENCY_WINDOW = 2048

#: The latency quantiles exposed on ``/v1/stats`` and ``/v1/metrics``.
LATENCY_QUANTILES = (0.50, 0.99)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 when
    empty — a daemon that served nothing has no latency to report)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class ServeStats:
    """Mutable per-daemon counters; one instance per :class:`ServeApp`."""

    __slots__ = (
        "requests",
        "hits",
        "memory_hits",
        "misses",
        "coalesced",
        "rejected",
        "errors",
        "malformed",
        "timeouts",
        "connections_opened",
        "keepalive_reuses",
        "_latencies",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.hits = 0  # served from the disk store
        self.memory_hits = 0  # served from the in-process hot tier
        self.misses = 0  # distinct computations
        self.coalesced = 0
        self.rejected = 0
        self.errors = 0
        self.malformed = 0  # parse-level 400/405: never reached a route
        self.timeouts = 0  # 408: client never delivered a request
        self.connections_opened = 0
        self.keepalive_reuses = 0  # requests after the first on one conn
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)

    def start_clock(self) -> float:
        """An opaque start token for :meth:`observe` (monotonic)."""
        # Service latency measurement: duration-only, never cached.
        return time.perf_counter()  # repro-lint: disable=nondet-wallclock

    def observe(self, start: float) -> None:
        """Record one served request's latency."""
        # Same discipline as start_clock: a duration, not a timestamp.
        elapsed = time.perf_counter() - start  # repro-lint: disable=nondet-wallclock
        self._latencies.append(elapsed)

    def record_parse_failure(self, status: int) -> None:
        """Count a request that failed before routing (``docs/SERVE.md``):
        408 under ``timeouts``, everything else under ``malformed``.
        Both count as requests — the daemon answered them."""
        self.requests += 1
        if status == 408:
            self.timeouts += 1
        else:
            self.malformed += 1

    def latency_quantiles_s(self) -> dict[float, float]:
        """``{quantile: seconds}`` over the recent window."""
        window = sorted(self._latencies)
        return {q: _percentile(window, q) for q in LATENCY_QUANTILES}

    def latency_percentiles(self) -> dict[str, float]:
        """``{"p50_ms": ..., "p99_ms": ...}`` over the recent window."""
        return {
            f"p{int(q * 100)}_ms": seconds * 1000.0
            for q, seconds in self.latency_quantiles_s().items()
        }

    def snapshot(
        self,
        inflight: int,
        queue_depth: int,
        draining: bool,
        connections: Mapping[str, int] | None = None,
        hot: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """The ``/v1/stats`` payload (gauges passed in by the app).

        ``inflight`` is the number of distinct computations running;
        ``queue_depth`` the number of follower requests waiting on one
        of them (not a duplicate of ``inflight``)."""
        payload: dict[str, Any] = {
            "requests": self.requests,
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
            "malformed": self.malformed,
            "timeouts": self.timeouts,
            "inflight": inflight,
            "queue_depth": queue_depth,
            "draining": draining,
        }
        if connections is not None:
            payload["connections"] = dict(connections)
        if hot is not None:
            payload["hot"] = dict(hot)
        payload["latency"] = self.latency_percentiles()
        return payload

    def render_prometheus(
        self,
        inflight: int,
        queue_depth: int,
        draining: bool,
        connections: Mapping[str, int] | None = None,
        hot: Mapping[str, Any] | None = None,
    ) -> str:
        """The ``/v1/metrics`` body: Prometheus text exposition format."""
        lines: list[str] = []

        def sample(
            name: str, kind: str, help_text: str, value: float | int
        ) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {value}")

        sample(
            "repro_serve_requests_total",
            "counter",
            "Requests answered, including parse failures.",
            self.requests,
        )
        for field, help_text in (
            ("hits", "Requests served from the disk store."),
            ("memory_hits", "Requests served from the in-memory hot tier."),
            ("misses", "Distinct computations dispatched."),
            ("coalesced", "Requests that rode another request's computation."),
            ("rejected", "Requests answered 429 by admission control."),
            ("errors", "Requests that failed with a 500-family error."),
            ("malformed", "Requests rejected before routing (400/405)."),
            ("timeouts", "Connections that never delivered a request (408)."),
        ):
            sample(
                f"repro_serve_{field}_total",
                "counter",
                help_text,
                getattr(self, field),
            )
        sample(
            "repro_serve_connections_opened_total",
            "counter",
            "TCP connections accepted.",
            self.connections_opened,
        )
        sample(
            "repro_serve_keepalive_reuses_total",
            "counter",
            "Requests served on an already-used keep-alive connection.",
            self.keepalive_reuses,
        )
        sample(
            "repro_serve_inflight",
            "gauge",
            "Distinct computations currently running.",
            inflight,
        )
        sample(
            "repro_serve_queue_depth",
            "gauge",
            "Follower requests waiting on an in-flight computation.",
            queue_depth,
        )
        sample(
            "repro_serve_draining",
            "gauge",
            "1 while the daemon is draining, else 0.",
            int(draining),
        )
        if connections is not None:
            for state, value in sorted(connections.items()):
                name = f"repro_serve_connections_{state}"
                sample(
                    name,
                    "gauge",
                    f"Connections currently {state}.",
                    value,
                )
        if hot is not None:
            for field in ("hits", "misses", "ghost_hits", "evictions", "resizes"):
                if field in hot:
                    sample(
                        f"repro_serve_hot_{field}_total",
                        "counter",
                        f"Hot-tier {field.replace('_', ' ')}.",
                        hot[field],
                    )
            for field in (
                "entries",
                "bytes",
                "target_bytes",
                "capacity_bytes",
                "ghost_entries",
            ):
                if field in hot:
                    sample(
                        f"repro_serve_hot_{field}",
                        "gauge",
                        f"Hot-tier {field.replace('_', ' ')}.",
                        hot[field],
                    )
        quantiles = self.latency_quantiles_s()
        name = "repro_serve_latency_seconds"
        lines.append(
            f"# HELP {name} Recent request latency quantiles "
            f"(window of {LATENCY_WINDOW})."
        )
        lines.append(f"# TYPE {name} summary")
        for q, seconds in quantiles.items():
            lines.append(f'{name}{{quantile="{q:g}"}} {seconds:.6f}')
        lines.append(f"{name}_sum {sum(self._latencies):.6f}")
        lines.append(f"{name}_count {len(self._latencies)}")
        return "\n".join(lines) + "\n"
