"""Simulation drivers: the symbolic simulator (simplified caching model),
run modes (single, repeated), and Monte-Carlo expectation estimation."""

from repro.simulation.adaptive import (
    AdaptiveExecutor,
    AdaptiveRunRecord,
    run_adaptive,
)
from repro.simulation.fastpath import (
    is_chunkable,
    run_chunked,
    run_repeated_chunked,
    run_sampled,
)
from repro.simulation.montecarlo import (
    MCEstimate,
    estimate,
    estimate_expected_cost,
    sample_boxes_to_complete,
)
from repro.simulation.runner import RepeatedRunRecord, run_boxes, run_repeated
from repro.simulation.symbolic import RunRecord, SymbolicSimulator

__all__ = [
    "AdaptiveExecutor",
    "AdaptiveRunRecord",
    "run_adaptive",
    "is_chunkable",
    "run_chunked",
    "run_repeated_chunked",
    "run_sampled",
    "MCEstimate",
    "estimate",
    "estimate_expected_cost",
    "sample_boxes_to_complete",
    "RepeatedRunRecord",
    "run_boxes",
    "run_repeated",
    "RunRecord",
    "SymbolicSimulator",
]
