"""An explicitly memory-adaptive executor — the Barve–Vitter counterpoint.

Barve and Vitter's line of work (Related Work, [2, 3]) designs algorithms
that *know* the memory profile and explicitly reorganize their computation
to fit it.  At this library's abstraction level, the scheduling freedom an
``(a,b,c)``-regular computation legitimately has is: sibling subproblems
commute, and any not-yet-started subtree may be deferred; only a node's
scan is ordered after its children (canonical END form).

:class:`AdaptiveExecutor` exploits exactly that freedom, box by box: given
a box of size ``s`` it greedily completes the *largest* pending subtree
that the box can hold (splitting larger subtrees to expose the right
granularity), streams unblocked scans, and defers everything else —
instead of marching through the fixed depth-first order the oblivious
algorithm uses.  On the canonical adversary this achieves an O(1)
adaptivity ratio: each level-``m`` box completes a whole pending size-``m``
subtree (potential-optimal progress) rather than being burned on a scan.

This is the "explicit adaptation" baseline the paper positions itself
against: it matches the smoothed cache-oblivious result, but only by
paying attention to the cache size at every step — precisely the burden
cache-obliviousness is meant to remove.

The executor enforces the same box semantics as the symbolic simulator
(completion divisor κ, distinct-block budgets as in the ``recursive``
model) so comparisons are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import SimulationError
from repro.algorithms.spec import RegularSpec, ScanPlacement
from repro.profiles.square import SquareProfile, as_box_iter

__all__ = ["AdaptiveRunRecord", "AdaptiveExecutor", "run_adaptive"]


class _OpenNode:
    """A started-but-incomplete node: counts of child subtrees not yet
    started / not yet finished, its scan remainder, and its parent."""

    __slots__ = ("size", "unstarted", "unfinished", "scan_left", "parent")

    def __init__(
        self, size: int, spec: RegularSpec, parent: "Optional[_OpenNode]"
    ) -> None:
        self.size = size
        self.unstarted = spec.a
        self.unfinished = spec.a
        self.scan_left = spec.scan_length(size)
        self.parent = parent


@dataclass(frozen=True)
class AdaptiveRunRecord:
    """Accounting of an adaptive run (same fields as the oblivious
    :class:`~repro.simulation.symbolic.RunRecord` where they overlap).
    Frozen like every measurement record: built once, after the run."""

    spec: RegularSpec
    n: int
    boxes_used: int = 0
    leaves_done: int = 0
    scan_accesses: int = 0
    time_used: int = 0
    bounded_potential: float = 0.0
    completed: bool = False

    @property
    def adaptivity_ratio(self) -> float:
        return self.bounded_potential / float(self.n) ** self.spec.exponent


class AdaptiveExecutor:
    """Explicitly adaptive execution of one size-``n`` problem.

    Requires canonical END scan placement (the form in which "children
    commute, scan last" is exactly the dependency structure).
    """

    def __init__(self, spec: RegularSpec, n: int, completion_divisor: int = 1):
        if spec.scan_placement != ScanPlacement.END:
            raise SimulationError(
                "the adaptive executor models trailing-scan dependencies; "
                f"got placement {spec.scan_placement!r}"
            )
        if completion_divisor < 1:
            raise SimulationError(
                f"completion_divisor must be >= 1, got {completion_divisor}"
            )
        spec.validate_problem_size(n)
        self.spec = spec
        self.n = n
        self.kappa = completion_divisor
        # Unstarted whole subtrees, grouped by their (open) parent; the
        # root starts as a single unstarted subtree with no parent.
        self._root_done = False
        self._root_pending = True  # the root subtree, unstarted
        self._open: list[_OpenNode] = []  # all open nodes, any order

    # -- state inspection -------------------------------------------------
    @property
    def is_done(self) -> bool:
        return self._root_done

    def _subtree_cost(self, size: int) -> int:
        """Distinct-block budget to complete a whole size-`size` subtree."""
        return size

    def _child_size(self, node: _OpenNode) -> int:
        return node.size // self.spec.b

    # -- bookkeeping -------------------------------------------------------
    def _finish_child(self, parent: Optional[_OpenNode]) -> None:
        """Record that one child subtree of ``parent`` fully completed."""
        if parent is None:
            self._root_done = True
            return
        parent.unfinished -= 1

    def _complete_node(self, node: _OpenNode) -> None:
        """An open node's scan just finished: the node is complete."""
        self._open.remove(node)
        self._finish_child(node.parent)

    def _split(self, parent: Optional[_OpenNode]) -> _OpenNode:
        """Start an unstarted subtree (of ``parent``; or the root),
        exposing its children as new unstarted subtrees."""
        if parent is None:
            if not self._root_pending:
                raise SimulationError("root already started")
            self._root_pending = False
            node = _OpenNode(self.n, self.spec, None)
        else:
            if parent.unstarted <= 0:
                raise SimulationError("no unstarted children to split")
            parent.unstarted -= 1
            node = _OpenNode(self._child_size(parent), self.spec, parent)
        self._open.append(node)
        return node

    # -- scheduling -----------------------------------------------------------
    def _pick_subtree(
        self, max_size: int
    ) -> tuple[int, Optional[_OpenNode]] | None:
        """Find (size, parent) of the largest unstarted subtree with size
        <= max_size, or None.  A ``None`` parent means the root subtree."""
        best: tuple[int, Optional[_OpenNode]] | None = None
        if self._root_pending and self.n <= max_size:
            best = (self.n, None)
        child_best: tuple[int, _OpenNode] | None = None
        for node in self._open:
            if node.unstarted > 0:
                size = self._child_size(node)
                if size <= max_size and (child_best is None or size > child_best[0]):
                    child_best = (size, node)
        if child_best is not None and (best is None or child_best[0] > best[0]):
            best = child_best
        return best

    def _runnable_scan(self) -> Optional[_OpenNode]:
        """An open node whose children are all finished but whose scan has
        work left (prefer the smallest to free dependencies early)."""
        best: Optional[_OpenNode] = None
        for node in self._open:
            if node.unfinished == 0 and node.scan_left > 0:
                if best is None or node.size < best.size:
                    best = node
        return best

    def _zero_scan_cleanup(self) -> None:
        """Close any open nodes that are finished (children done, scan
        empty) — relevant for c = 0 specs."""
        changed = True
        while changed:
            changed = False
            for node in list(self._open):
                if node.unfinished == 0 and node.scan_left == 0:
                    self._complete_node(node)
                    changed = True

    # -- the box step ------------------------------------------------------
    def feed(self, s: int) -> None:
        """Spend one box of size ``s`` as profitably as possible."""
        if self.is_done:
            raise SimulationError("execution already complete")
        if s < 1:
            raise SimulationError(f"box size must be >= 1, got {s}")
        budget = s
        s_eff = s // self.kappa
        while budget > 0 and not self.is_done:
            self._zero_scan_cleanup()
            if self.is_done:
                break
            # 1. complete the largest affordable pending subtree
            pick = self._pick_subtree(min(s_eff, budget))
            if pick is not None:
                size, parent = pick
                budget -= self._subtree_cost(size)
                self.record_subtree(size)
                if parent is None:
                    self._root_pending = False
                    self._root_done = True
                else:
                    parent.unstarted -= 1
                    self._finish_child(parent)
                continue
            # 2. stream an unblocked scan
            scan_node = self._runnable_scan()
            if scan_node is not None:
                step = min(budget, scan_node.scan_left)
                scan_node.scan_left -= step
                budget -= step
                self.record_scan(step)
                if scan_node.scan_left == 0:
                    self._complete_node(scan_node)
                continue
            # 3. split something to expose smaller granularity.  Never
            # start a base-case subtree (leaves are atomic, completed only
            # via step 1), and don't bother splitting when even a base
            # case would not fit this box.
            if s_eff < self.spec.base_size or budget < self.spec.base_size:
                break  # this box can never complete anything
            if self._root_pending and self.n > self.spec.base_size:
                self._split(None)
                continue
            splittable = [
                nd
                for nd in self._open
                if nd.unstarted > 0 and self._child_size(nd) > self.spec.base_size
            ]
            if splittable:
                # split the smallest (closest to affordable granularity)
                self._split(min(splittable, key=lambda nd: nd.size))
                continue
            break  # only blocked scans remain and budget can't help

    # -- accounting hooks (overridden by the runner) -----------------------
    def record_subtree(self, size: int) -> None:  # pragma: no cover - hook
        pass

    def record_scan(self, accesses: int) -> None:  # pragma: no cover - hook
        pass


def run_adaptive(
    spec: RegularSpec,
    n: int,
    boxes: "SquareProfile | Iterable[int]",
    completion_divisor: int = 1,
    max_boxes: Optional[int] = None,
) -> AdaptiveRunRecord:
    """Run the explicitly adaptive executor over a box source."""
    executor = AdaptiveExecutor(spec, n, completion_divisor=completion_divisor)
    boxes_used = 0
    leaves_done = 0
    scan_accesses = 0
    time_used = 0
    bounded_potential = 0.0

    def record_subtree(size: int) -> None:
        nonlocal leaves_done, scan_accesses
        leaves_done += spec.leaves(size)
        scan_accesses += spec.subtree_scan_total(size)

    def record_scan(accesses: int) -> None:
        nonlocal scan_accesses
        scan_accesses += accesses

    executor.record_subtree = record_subtree  # type: ignore[method-assign]
    executor.record_scan = record_scan  # type: ignore[method-assign]

    exponent = spec.exponent
    it = as_box_iter(boxes)
    while not executor.is_done:
        if max_boxes is not None and boxes_used >= max_boxes:
            break
        try:
            s = next(it)
        except StopIteration:
            break
        executor.feed(s)
        boxes_used += 1
        time_used += s
        bounded_potential += float(min(s, n)) ** exponent
    return AdaptiveRunRecord(
        spec=spec,
        n=n,
        boxes_used=boxes_used,
        leaves_done=leaves_done,
        scan_accesses=scan_accesses,
        time_used=time_used,
        bounded_potential=bounded_potential,
        completed=executor.is_done,
    )
