"""Scalar-vs-chunked simulator benchmark: the ``BENCH_sim.json`` producer.

``repro bench --suite sim`` measures what the chunked fast path
(:mod:`repro.simulation.fastpath`) buys on the workload shapes that
dominate the registry, and proves the speedup legitimate by asserting
bit-identical results in the same breath:

* **adversarial** — the Figure-1 worst-case profile ``M_{8,4}(n)``
  simulated to completion, scalar loop vs run-length stream.  This is
  the fig1/gap/mmcount shape: Θ(a^D) identical boxes the fast path
  consumes in Θ(D·a) run operations.
* **adversarial-recursive** — the same profile under the ``recursive``
  (budgeted-continuation) model, chunkable since the replayable-RNG
  refactor taught the cursor ``feed_recursive_run``.
* **randomized-placement** — the adversarial profile against an
  addressable random-slot scan placement
  (:func:`~repro.algorithms.randomized.random_slot_placement` with a
  seed): placements are drawn by node index, so the chunked engine can
  skip whole sibling subtrees without desynchronizing the randomness.
* **mc-iid** — :func:`~repro.simulation.montecarlo.estimate_expected_cost`
  over i.i.d. uniform boxes, per-box sampler loop vs batched
  :func:`~repro.simulation.fastpath.run_sampled`.  Trial draws are
  counter-addressed, so the estimates are identical by construction.

The payload mirrors ``BENCH_cache.json`` (schema-versioned, environment
tagged) and feeds the same history machinery
(:mod:`repro.cache.history`), so ``--history`` gives the simulator a
longitudinal trend line and a regression check.  The top-level
``speedup`` is the *minimum* across workloads: the trend tracks the
weakest link, not the flattering one.
"""

# repro-lint: disable-file=nondet-wallclock -- a benchmark measures wall
# time by design; timings are reported as evidence, never cached or
# digested.

from __future__ import annotations

import time
from typing import Any

__all__ = ["SIM_BENCH_SCHEMA_VERSION", "SIM_BENCHMARK_NAME", "run_sim_bench"]

SIM_BENCH_SCHEMA_VERSION = 2
SIM_BENCHMARK_NAME = "sim-scalar-vs-chunked"


def _bench_adversarial(quick: bool, spec, n: int) -> dict[str, Any]:
    """One completed worst-case run, scalar loop vs run-length stream."""
    from repro.profiles import worst_case_profile
    from repro.simulation.symbolic import SymbolicSimulator

    profile = worst_case_profile(spec.a, spec.b, n)
    runs = profile.runs()
    start = time.perf_counter()
    scalar = SymbolicSimulator(spec, n).run(profile, fastpath=False)
    scalar_wall = time.perf_counter() - start
    start = time.perf_counter()
    chunked = SymbolicSimulator(spec, n).run(runs)
    chunked_wall = time.perf_counter() - start
    return {
        "name": "adversarial-worst-case",
        "spec": repr(spec),
        "n": n,
        "boxes": scalar.boxes_used,
        "scalar_wall_time_s": scalar_wall,
        "chunked_wall_time_s": chunked_wall,
        "speedup": (scalar_wall / chunked_wall) if chunked_wall > 0 else None,
        "bit_identical": scalar == chunked,
    }


def _bench_recursive(quick: bool, spec, n: int) -> dict[str, Any]:
    """Worst-case run under the recursive (budgeted) model."""
    from repro.profiles import worst_case_profile
    from repro.simulation.symbolic import SymbolicSimulator

    profile = worst_case_profile(spec.a, spec.b, n)
    runs = profile.runs()
    start = time.perf_counter()
    scalar = SymbolicSimulator(spec, n, model="recursive").run(
        profile, fastpath=False
    )
    scalar_wall = time.perf_counter() - start
    start = time.perf_counter()
    chunked = SymbolicSimulator(spec, n, model="recursive").run(runs)
    chunked_wall = time.perf_counter() - start
    return {
        "name": "adversarial-recursive",
        "spec": repr(spec),
        "n": n,
        "boxes": scalar.boxes_used,
        "scalar_wall_time_s": scalar_wall,
        "chunked_wall_time_s": chunked_wall,
        "speedup": (scalar_wall / chunked_wall) if chunked_wall > 0 else None,
        "bit_identical": scalar == chunked,
    }


def _bench_randomized(quick: bool, spec, n: int, seed: int) -> dict[str, Any]:
    """Worst-case profile against an addressable random-slot placement.

    Each side builds its own placement from the same seed: addressable
    draws are a pure function of ``(seed, node index)``, so the two
    randomized executions — and hence the two records — must coincide.
    """
    from repro.algorithms.randomized import random_slot_placement
    from repro.profiles import worst_case_profile
    from repro.simulation.symbolic import SymbolicSimulator

    profile = worst_case_profile(spec.a, spec.b, n)
    runs = profile.runs()
    start = time.perf_counter()
    scalar = SymbolicSimulator(
        spec, n, scan_randomizer=random_slot_placement(spec, seed)
    ).run(profile, fastpath=False)
    scalar_wall = time.perf_counter() - start
    start = time.perf_counter()
    chunked = SymbolicSimulator(
        spec, n, scan_randomizer=random_slot_placement(spec, seed)
    ).run(runs)
    chunked_wall = time.perf_counter() - start
    return {
        "name": "randomized-placement",
        "spec": repr(spec),
        "n": n,
        "placement_seed": seed,
        "boxes": scalar.boxes_used,
        "scalar_wall_time_s": scalar_wall,
        "chunked_wall_time_s": chunked_wall,
        "speedup": (scalar_wall / chunked_wall) if chunked_wall > 0 else None,
        "bit_identical": scalar == chunked,
    }


def _bench_mc(quick: bool, spec, n: int, trials: int) -> dict[str, Any]:
    """Expected-cost estimation, per-box sampler vs batched sampling."""
    from repro.profiles.distributions import UniformRange
    from repro.simulation.montecarlo import estimate_expected_cost

    dist = UniformRange(1, 256)
    start = time.perf_counter()
    scalar = estimate_expected_cost(
        spec, n, dist, trials=trials, rng=0, fastpath=False
    )
    scalar_wall = time.perf_counter() - start
    start = time.perf_counter()
    chunked = estimate_expected_cost(
        spec, n, dist, trials=trials, rng=0, fastpath=True
    )
    chunked_wall = time.perf_counter() - start
    return {
        "name": "mc-iid-uniform",
        "spec": repr(spec),
        "n": n,
        "trials": trials,
        "dist": repr(dist),
        "scalar_wall_time_s": scalar_wall,
        "chunked_wall_time_s": chunked_wall,
        "speedup": (scalar_wall / chunked_wall) if chunked_wall > 0 else None,
        "bit_identical": scalar == chunked,
    }


def run_sim_bench(quick: bool = True, seed: int = 0) -> dict[str, Any]:
    """Run both workloads and return the BENCH_sim payload.

    ``quick`` picks CI-sized problems (a few seconds of scalar time);
    ``--full`` is the acceptance configuration the speedup claims in
    ``docs/PERF.md`` are quoted from.  ``seed`` keys the
    randomized-placement workload (both sides build the same addressable
    placement from it) and is otherwise recorded for provenance; the
    bit-identity verdicts never depend on it.
    """
    from repro.algorithms.spec import RegularSpec
    from repro.cache.store import environment_tag
    from repro.runtime.provenance import git_revision, repro_version

    spec = RegularSpec(8, 4, 1.0)
    adversarial = _bench_adversarial(quick, spec, 4**5 if quick else 4**7)
    recursive = _bench_recursive(quick, spec, 4**5 if quick else 4**7)
    randomized = _bench_randomized(quick, spec, 4**5 if quick else 4**6, seed)
    mc = _bench_mc(quick, spec, 4**6 if quick else 4**7, 40)
    workloads = [adversarial, recursive, randomized, mc]
    speedups = [
        w["speedup"] for w in workloads if isinstance(w["speedup"], float)
    ]
    return {
        "bench_schema_version": SIM_BENCH_SCHEMA_VERSION,
        "benchmark": SIM_BENCHMARK_NAME,
        "quick": quick,
        "seed": seed,
        "workloads": workloads,
        "scalar_wall_time_s": sum(w["scalar_wall_time_s"] for w in workloads),
        "chunked_wall_time_s": sum(
            w["chunked_wall_time_s"] for w in workloads
        ),
        "speedup": min(speedups) if speedups else None,
        "bit_identical": all(w["bit_identical"] for w in workloads),
        "environment": environment_tag(),
        "repro_version": repro_version(),
        "git_revision": git_revision(),
    }
