"""Chunked simulation fast path: consume box streams in closed form.

The scalar driver in :class:`~repro.simulation.symbolic.SymbolicSimulator`
pays one Python iteration per box, and the paper's canonical inputs make
that the bottleneck: the worst-case profile ``M_{8,4}(4**8)`` has ~1.9e7
boxes, and a Monte-Carlo estimate runs thousands of i.i.d. boxes per
trial.  Those inputs are massively repetitive — ``M_{a,b}`` emits long
runs of identical boxes, and a size-``n`` scan absorbs thousands of
boxes in a row — so this module consumes them *chunked*:

* run-length sources (:class:`~repro.profiles.runs.BoxRuns`, or a
  :class:`~repro.profiles.square.SquareProfile` whose RLE is short)
  are fed run by run through the closed-form cursor methods
  :meth:`~repro.algorithms.cursor.ExecutionCursor.feed_simplified_run` /
  :meth:`~repro.algorithms.cursor.ExecutionCursor.feed_greedy_run`;
* array sources (sampled boxes, low-repetition profiles) stream scans
  vectorized: one ``cumsum`` + ``searchsorted`` decides how many of the
  next boxes the current scan piece absorbs, instead of one Python
  ``feed`` per box.

The fast path is *bit-identical* to the scalar loop — same
:class:`~repro.simulation.symbolic.RunRecord` field by field, including
``bounded_potential``, which is re-accumulated box-sequentially with
``np.add.accumulate`` (a strict left fold, same float rounding as the
scalar ``+=``; ``np.sum``'s pairwise reduction would differ in the last
ulps).  Equivalence is enforced differentially across specs, models, κ,
and sources in ``tests/simulation/test_fastpath.py`` and — for the
randomized/recursive coverage — ``tests/simulation/test_replay.py``.

Exactness requires box semantics that depend only on the current cursor
state plus randomness that is *addressable* rather than positional, so
eligibility (:func:`is_chunkable`) is: any of the three models (the
``recursive`` model batches via
:meth:`~repro.algorithms.cursor.ExecutionCursor.feed_recursive_run`,
whose exact-fit sibling regime covers the canonical worst-case profile),
a static or addressable scan placement (closed forms skip whole sibling
subtrees without entering them — a legacy positional randomizer would
desynchronize, while an addressable placement draws by node index and
cannot), and an indexable box source (generators may be stateful and
must be pulled one box at a time).  Everything else falls back to the
scalar path; see ``docs/PERF.md`` for the selection rules and measured
speedups.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.profiles.distributions import BoxDistribution
from repro.profiles.runs import BoxRuns
from repro.profiles.square import SquareProfile
from repro.runtime.instrumentation import record as _record
from repro.simulation.symbolic import MODELS, RunRecord, SymbolicSimulator
from repro.util.rng import ReplayableStream

__all__ = [
    "CHUNK",
    "is_chunkable",
    "run_chunked",
    "run_repeated_chunked",
    "run_sampled",
]

# Window for vectorized scan streaming; with a positional Generator,
# run_sampled draws in the same batches as BoxDistribution.sampler so
# the RNG stream is identical (an addressed ReplayableStream makes the
# batch size irrelevant by construction).
CHUNK = 4096

_FAST_MODELS = MODELS


def _static_or_addressable(sim: SymbolicSimulator) -> bool:
    r = sim.scan_randomizer
    return r is None or bool(getattr(r, "addressable", False))


def is_chunkable(sim: SymbolicSimulator, boxes: object = None) -> bool:
    """True iff the chunked engine reproduces ``sim.run(boxes)`` exactly.

    With ``boxes=None`` only the simulator is checked (the source is the
    caller's problem, e.g. :func:`run_sampled` draws its own arrays).
    """
    if sim.model not in _FAST_MODELS or not _static_or_addressable(sim):
        return False
    if boxes is None or isinstance(boxes, (SquareProfile, BoxRuns)):
        return True
    if isinstance(boxes, np.ndarray):
        return boxes.ndim == 1 and bool(np.issubdtype(boxes.dtype, np.integer))
    return False


def _as_box_array(boxes: object) -> np.ndarray:
    arr = np.asarray(boxes)
    if arr.ndim != 1:
        raise SimulationError("box array must be one-dimensional")
    if not np.issubdtype(arr.dtype, np.integer):
        raise SimulationError("box array must have an integer dtype")
    return arr.astype(np.int64, copy=False)


def _prefers_runs(arr: np.ndarray) -> bool:
    """Run path when the RLE is at least 2x shorter than the flat array
    (below that, the vectorized scan streaming of the array path wins)."""
    if arr.size < 2:
        return True
    nruns = 1 + int(np.count_nonzero(arr[1:] != arr[:-1]))
    return 2 * nruns <= int(arr.size)


class _ChunkEngine:
    """Shared accumulator behind the chunked drivers.

    Mirrors the aggregate accounting of the scalar loop in
    ``SymbolicSimulator.run`` exactly; ``bounded_potential`` is
    reconstructed from the consumed boxes in :meth:`finish` with the same
    box-sequential float accumulation the scalar loop performs.
    """

    __slots__ = (
        "sim",
        "greedy",
        "recursive",
        "kappa",
        "max_boxes",
        "need_potential",
        "boxes_used",
        "leaves",
        "scans",
        "time_used",
        "_run_sizes",
        "_run_counts",
        "_chunks",
    )

    def __init__(
        self,
        sim: SymbolicSimulator,
        max_boxes: Optional[int] = None,
        need_potential: bool = True,
    ):
        self.sim = sim
        self.greedy = sim.model == "greedy"
        self.recursive = sim.model == "recursive"
        self.kappa = sim.completion_divisor
        self.max_boxes = max_boxes
        self.need_potential = need_potential
        self.boxes_used = 0
        self.leaves = 0
        self.scans = 0
        self.time_used = 0
        self._run_sizes: list[int] = []
        self._run_counts: list[int] = []
        self._chunks: list[np.ndarray] = []

    # -- feeding -------------------------------------------------------
    def feed_run(self, s: int, count: int) -> int:
        """Feed up to ``count`` boxes of size ``s``; returns the number
        consumed (less than ``count`` only when the execution completed
        or the box budget ran out)."""
        cursor = self.sim.cursor
        if cursor.is_done:
            return 0
        if self.max_boxes is not None:
            count = min(count, self.max_boxes - self.boxes_used)
        if count <= 0:
            return 0
        consumed = 0
        if self.greedy:
            while consumed < count and not cursor.is_done:
                got, lv, sc = cursor.feed_greedy_run(s, count - consumed)
                consumed += got
                self.leaves += lv
                self.scans += sc
        elif self.recursive:
            kappa = self.kappa
            while consumed < count and not cursor.is_done:
                got, lv, sc = cursor.feed_recursive_run(
                    s, count - consumed, kappa
                )
                consumed += got
                self.leaves += lv
                self.scans += sc
        else:
            kappa = self.kappa
            while consumed < count and not cursor.is_done:
                got, lv, sc = cursor.feed_simplified_run(
                    s, count - consumed, kappa
                )
                consumed += got
                self.leaves += lv
                self.scans += sc
        self.boxes_used += consumed
        self.time_used += s * consumed
        if self.need_potential and consumed:
            self._run_sizes.append(s)
            self._run_counts.append(consumed)
        return consumed

    def feed_array(self, arr: np.ndarray) -> int:
        """Feed boxes from an int64 array; returns how many were consumed
        (always a prefix — stops at completion or the box budget).

        While the cursor stands in a scan it cannot complete, whole
        windows of boxes are absorbed with one ``cumsum`` +
        ``searchsorted``; any other box goes through the scalar ``feed``.
        """
        sim = self.sim
        cursor = sim.cursor
        greedy = self.greedy
        kappa = self.kappa
        max_boxes = self.max_boxes
        size = int(arr.size)
        i = 0
        while not cursor.is_done and i < size:
            if max_boxes is not None and self.boxes_used >= max_boxes:
                break
            if cursor.at_scan():
                rem = cursor.scan_remaining()
                # boxes are >= 1 block, so a scan with rem left absorbs at
                # most rem boxes — keep windows tight for short scans
                window = arr[i : i + (CHUNK if rem >= CHUNK else rem)]
                if max_boxes is not None:
                    window = window[: max_boxes - self.boxes_used]
                if greedy:
                    # greedy: a box of size s <= (scan left) is absorbed
                    # entirely; consume the longest such prefix at once
                    csum = np.cumsum(window)
                    k = int(np.searchsorted(csum, rem, side="right"))
                    if k:
                        total = int(csum[k - 1])
                        self.scans += cursor.advance_scan(total)
                        self.boxes_used += k
                        self.time_used += total
                        i += k
                        continue
                elif self.recursive:
                    # recursive: same streaming condition as simplified
                    # (the box cannot complete the scanning node), but a
                    # box is only fully absorbed when its whole budget
                    # fits the piece; the boundary box spills its
                    # leftover deeper and goes through the scalar step
                    limit = cursor.current_node_size() * kappa
                    big = np.flatnonzero(window >= limit)
                    stop = int(big[0]) if big.size else int(window.size)
                    if stop:
                        csum = np.cumsum(window[:stop])
                        k = int(np.searchsorted(csum, rem, side="right"))
                        if k:
                            total = int(csum[k - 1])
                            self.scans += cursor.advance_scan(total)
                            self.boxes_used += k
                            self.time_used += total
                            i += k
                            continue
                else:
                    # simplified: a box streams this scan iff it cannot
                    # complete the scanning node: s // kappa < F, i.e.
                    # s < F * kappa
                    limit = cursor.current_node_size() * kappa
                    big = np.flatnonzero(window >= limit)
                    stop = int(big[0]) if big.size else int(window.size)
                    if stop:
                        csum = np.cumsum(window[:stop])
                        total = int(csum[-1])
                        if total < rem:
                            self.scans += cursor.advance_scan(total)
                            self.boxes_used += stop
                            self.time_used += total
                            i += stop
                            continue
                        # the scan completes within the prefix: boxes
                        # 0..j-1 advance fully, box j its remainder
                        j = int(np.searchsorted(csum, rem, side="left"))
                        self.scans += cursor.advance_scan(rem)
                        self.boxes_used += j + 1
                        self.time_used += int(csum[j])
                        i += j + 1
                        continue
            # single box through the closed-form methods: same semantics
            # as sim.feed, but fresh-subtree completions hit the cursor's
            # cached subtree totals instead of walking the stack
            s = int(arr[i])
            if greedy:
                _, lv, sc = cursor.feed_greedy_run(s, 1)
            elif self.recursive:
                _, lv, sc = cursor.feed_recursive_run(s, 1, kappa)
            else:
                _, lv, sc = cursor.feed_simplified_run(s, 1, kappa)
            self.leaves += lv
            self.scans += sc
            self.boxes_used += 1
            self.time_used += s
            i += 1
        if self.need_potential and i:
            self._chunks.append(arr[:i])
        return i

    # -- accounting ----------------------------------------------------
    def _bounded_potential(self) -> float:
        if self._run_sizes and self._chunks:
            raise SimulationError(
                "engine consumed both run and array sources; potential "
                "order is ambiguous"
            )
        n = self.sim.n
        exponent = self.sim.spec.exponent
        if self._run_sizes:
            run_sizes = np.asarray(self._run_sizes, dtype=np.int64)
            run_counts = np.asarray(self._run_counts, dtype=np.int64)
            uniq, inv = np.unique(run_sizes, return_inverse=True)
            pows = np.asarray(
                [float(min(u, n)) ** exponent for u in uniq.tolist()],
                dtype=np.float64,
            )
            per_box = np.repeat(pows[inv], run_counts)
        elif self._chunks:
            consumed = (
                self._chunks[0]
                if len(self._chunks) == 1
                else np.concatenate(self._chunks)
            )
            clipped = np.minimum(consumed, n)
            uniq, inv = np.unique(clipped, return_inverse=True)
            pows = np.asarray(
                [float(u) ** exponent for u in uniq.tolist()],
                dtype=np.float64,
            )
            per_box = pows[inv]
        else:
            return 0.0
        if per_box.size == 0:
            return 0.0
        # np.add.accumulate folds strictly left to right, reproducing the
        # scalar loop's per-box `bp += float(min(s, n)) ** exponent`
        # rounding; np.sum's pairwise reduction would not.
        return float(np.add.accumulate(per_box)[-1])

    def finish(self) -> RunRecord:
        """Close the run: record the same instrumentation counters as the
        scalar loop (logical boxes, not chunks) and build the record."""
        if not self.need_potential:
            raise SimulationError(
                "engine was created without potential tracking"
            )
        sim = self.sim
        _record("sim.runs")
        _record("sim.boxes", self.boxes_used)
        return RunRecord(
            spec=sim.spec,
            n=sim.n,
            model=sim.model,
            boxes_used=self.boxes_used,
            leaves_done=self.leaves,
            scan_accesses=self.scans,
            time_used=self.time_used,
            bounded_potential=self._bounded_potential(),
            completed=sim.cursor.is_done,
        )


def _drive_runs(eng: _ChunkEngine, runs: Iterable[tuple[int, int]]) -> None:
    for s, count in runs:
        if eng.feed_run(s, count) < count:
            break


def run_chunked(
    sim: SymbolicSimulator,
    boxes: "SquareProfile | BoxRuns | np.ndarray",
    max_boxes: Optional[int] = None,
) -> RunRecord:
    """Chunked equivalent of ``sim.run(boxes, max_boxes=...)``.

    Selects the run path (closed-form ``feed_*_run``) for
    :class:`BoxRuns` and highly repetitive profiles, the array path
    (vectorized scan streaming) otherwise.  Raises
    :class:`SimulationError` when the combination is not eligible
    (:func:`is_chunkable`); :meth:`SymbolicSimulator.run` only routes
    here when it is, so the scalar fallback stays transparent.
    """
    if not is_chunkable(sim, boxes):
        raise SimulationError(
            "chunked fast path requires a static or addressable scan "
            "placement and an indexable box source (SquareProfile, "
            "BoxRuns, or 1-d integer ndarray); got "
            f"model={sim.model!r}, source={type(boxes).__name__}"
        )
    eng = _ChunkEngine(sim, max_boxes=max_boxes)
    if isinstance(boxes, BoxRuns):
        _drive_runs(eng, boxes.iter_runs())
    elif isinstance(boxes, SquareProfile):
        arr = boxes.boxes
        if _prefers_runs(arr):
            _drive_runs(eng, boxes.runs().iter_runs())
        else:
            eng.feed_array(arr)
    else:
        eng.feed_array(_as_box_array(boxes))
    return eng.finish()


def run_sampled(
    sim: SymbolicSimulator,
    dist: BoxDistribution,
    rng: "np.random.Generator | ReplayableStream",
    max_boxes: Optional[int] = None,
    chunk: int = CHUNK,
) -> RunRecord:
    """Batched equivalent of running ``sim`` on i.i.d. boxes from ``dist``.

    With an addressed :class:`~repro.util.rng.ReplayableStream`, box
    ``i`` of the trial is ``dist.sample_at(i, i+1, rng)`` — a pure
    function of the stream and the index — so this is bit-identical to
    ``sim.run(dist.sampler_at(rng))`` whatever batch sizes either side
    uses.  With a positional ``Generator`` (legacy), it draws
    ``chunk``-sized sample arrays — the same batches, in the same order,
    as :meth:`BoxDistribution.sampler` draws internally — so the RNG
    stream and every consumed box are bit-identical to the scalar path;
    the unread tail of the final batch is discarded exactly as an
    abandoned sampler generator would discard it.
    """
    if not is_chunkable(sim):
        raise SimulationError(
            "sampled fast path requires a static or addressable scan "
            f"placement; got model={sim.model!r}"
        )
    eng = _ChunkEngine(sim, max_boxes=max_boxes)
    cursor = sim.cursor
    if isinstance(rng, ReplayableStream):
        pos = 0
        while not cursor.is_done:
            if max_boxes is not None and eng.boxes_used >= max_boxes:
                break
            eng.feed_array(dist.sample_at(pos, pos + chunk, rng))
            pos += chunk
        return eng.finish()
    while not cursor.is_done:
        if max_boxes is not None and eng.boxes_used >= max_boxes:
            break
        eng.feed_array(dist.sample(chunk, rng))
    return eng.finish()


def run_repeated_chunked(
    spec,
    n: int,
    boxes: "SquareProfile | BoxRuns | np.ndarray",
    model: str = "simplified",
    max_completions: Optional[int] = None,
):
    """Chunked equivalent of :func:`repro.simulation.runner.run_repeated`.

    Same back-to-back semantics: a box is consumed entirely by the
    execution it is fed to, and a fresh execution starts on the next box.
    The closed forms stop exactly at a completion boundary, so the batch
    driver resets and resumes mid-run without splitting any box.
    """
    from repro.simulation.runner import RepeatedRunRecord

    sim = SymbolicSimulator(spec, n, model=model)
    if not is_chunkable(sim, boxes):
        raise SimulationError(
            "chunked repeated runs require an indexable box source; got "
            f"model={model!r}, source={type(boxes).__name__}"
        )
    completions = 0
    partial_leaves = 0
    boxes_used = 0
    time_used = 0
    stopped = False

    use_runs = isinstance(boxes, BoxRuns) or (
        isinstance(boxes, SquareProfile) and _prefers_runs(boxes.boxes)
    )
    if use_runs:
        runs = (
            boxes.iter_runs()
            if isinstance(boxes, BoxRuns)
            else boxes.runs().iter_runs()
        )
        greedy = model == "greedy"
        recursive = model == "recursive"
        for s, count in runs:
            remaining = count
            while remaining:
                if greedy:
                    got, lv, _ = sim.cursor.feed_greedy_run(s, remaining)
                elif recursive:
                    got, lv, _ = sim.cursor.feed_recursive_run(
                        s, remaining, sim.completion_divisor
                    )
                else:
                    got, lv, _ = sim.cursor.feed_simplified_run(
                        s, remaining, sim.completion_divisor
                    )
                remaining -= got
                boxes_used += got
                time_used += s * got
                partial_leaves += lv
                if sim.is_done:
                    completions += 1
                    partial_leaves = 0
                    if (
                        max_completions is not None
                        and completions >= max_completions
                    ):
                        stopped = True
                        break
                    sim.reset()
            if stopped:
                break
    else:
        arr = (
            boxes.boxes
            if isinstance(boxes, SquareProfile)
            else _as_box_array(boxes)
        )
        size = int(arr.size)
        i = 0
        while i < size:
            eng = _ChunkEngine(sim, need_potential=False)
            got = eng.feed_array(arr[i:])
            i += got
            boxes_used += got
            time_used += eng.time_used
            partial_leaves += eng.leaves
            if sim.is_done:
                completions += 1
                partial_leaves = 0
                if (
                    max_completions is not None
                    and completions >= max_completions
                ):
                    break
                sim.reset()
            elif got == 0:
                break  # defensive: empty tail cannot make progress
    return RepeatedRunRecord(
        spec=spec,
        n=n,
        model=model,
        completions=completions,
        partial_leaves=partial_leaves,
        boxes_used=boxes_used,
        time_used=time_used,
    )
