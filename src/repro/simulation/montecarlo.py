"""Monte-Carlo estimation for cache-adaptivity in expectation.

Definition 3 of the paper defines adaptivity over a *distribution* of
profiles through an expectation; this module estimates those expectations
by simulation with proper confidence intervals, and is cross-validated in
the experiments against the exact recurrence solver
(:mod:`repro.analysis.recurrence`).

Trials are embarrassingly parallel: :func:`estimate_expected_cost` accepts
``n_jobs`` to fan independent trials out over a process pool.  Trial ``t``
draws its boxes from the addressed plane ``(root_seed, "mc", t)`` of a
:class:`~repro.util.rng.ReplayableStream` — a pure function of the seed
and the trial index — so estimates are bit-identical at *any* worker
count, including ``n_jobs=1`` (pinned in
``tests/simulation/test_replay.py``).  Simulators are memoized per
process and reset between trials, which amortizes the cursor's
closed-form table warm-up across all trials of one spec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats

from concurrent.futures import ProcessPoolExecutor

from repro.errors import SimulationError
from repro.algorithms.spec import RegularSpec
from repro.profiles.distributions import BoxDistribution
from repro.runtime.instrumentation import record as _record
from repro.simulation.fastpath import is_chunkable, run_sampled
from repro.simulation.symbolic import SymbolicSimulator
from repro.util.rng import ReplayableStream, as_generator, spawn

__all__ = ["MCEstimate", "estimate", "sample_boxes_to_complete", "estimate_expected_cost"]


@dataclass(frozen=True)
class MCEstimate:
    """Sample mean with a t-based confidence interval."""

    mean: float
    std: float
    trials: int
    confidence: float

    @property
    def stderr(self) -> float:
        return self.std / math.sqrt(self.trials) if self.trials else float("nan")

    @property
    def ci_halfwidth(self) -> float:
        if self.trials < 2:
            return float("inf")
        t = stats.t.ppf(0.5 + self.confidence / 2.0, df=self.trials - 1)
        return float(t) * self.stderr

    @property
    def ci(self) -> tuple[float, float]:
        h = self.ci_halfwidth
        return (self.mean - h, self.mean + h)

    def __str__(self) -> str:
        return f"{self.mean:.6g} ± {self.ci_halfwidth:.3g} ({self.trials} trials)"


def estimate(
    sample_fn: Callable[[np.random.Generator], float],
    trials: int,
    rng: object = None,
    confidence: float = 0.95,
) -> MCEstimate:
    """Estimate ``E[sample_fn]`` from independent trials.

    Each trial gets an independently spawned generator, so results are
    reproducible from a single seed and independent across trials.
    """
    if trials < 1:
        raise SimulationError(f"trials must be >= 1, got {trials}")
    if not 0.0 < confidence < 1.0:
        raise SimulationError(f"confidence must be in (0,1), got {confidence}")
    gens = spawn(rng, trials)
    values = np.asarray([float(sample_fn(g)) for g in gens], dtype=np.float64)
    _record("mc.estimates")
    _record("mc.trials", trials)
    return MCEstimate(
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if trials > 1 else 0.0,
        trials=trials,
        confidence=confidence,
    )


# One simulator per (spec, n, model), reset between trials: resets share
# the cursor's closed-form lookup tables, so only the first trial in a
# process pays the warm-up.  Bounded — estimation sweeps touch a handful
# of combinations per process.
_SIM_MEMO: "dict[tuple[RegularSpec, int, str], SymbolicSimulator]" = {}
_SIM_MEMO_MAX = 32


def _sim_for(spec: RegularSpec, n: int, model: str) -> SymbolicSimulator:
    key = (spec, n, model)
    sim = _SIM_MEMO.get(key)
    if sim is None:
        if len(_SIM_MEMO) >= _SIM_MEMO_MAX:
            _SIM_MEMO.clear()  # repro-lint: disable=effect-global-mutation
        sim = SymbolicSimulator(spec, n, model=model)
        _SIM_MEMO[key] = sim  # repro-lint: disable=effect-global-mutation
    else:
        sim.reset()
    return sim


def _trial_record(
    spec: RegularSpec,
    n: int,
    dist: BoxDistribution,
    model: str,
    rng: object,
    fastpath: bool | None,
):
    """One completed run on i.i.d. boxes from ``dist``.

    With a :class:`ReplayableStream`, box ``i`` of the trial is addressed
    at index ``i`` of the stream's plane — the scalar sampler and the
    chunked :func:`repro.simulation.fastpath.run_sampled` consume
    *provably* identical boxes, whatever their batching.  With a
    positional generator (legacy), the fast path draws the same sample
    batches in the same order as the scalar sampler, which is equivalent
    only because the batching matches exactly.  ``fastpath=False``
    forces the scalar loop, ``True`` requires the batched one.
    """
    sim = _sim_for(spec, n, model)
    if fastpath is None:
        fastpath = is_chunkable(sim)
    if isinstance(rng, ReplayableStream):
        if fastpath:
            rec = run_sampled(sim, dist, rng)
            if not rec.completed:
                raise SimulationError("sampled run did not complete")
            return rec
        return sim.run_to_completion(dist.sampler_at(rng))
    if fastpath:
        rec = run_sampled(sim, dist, as_generator(rng))
        if not rec.completed:
            raise SimulationError("sampled run did not complete")
        return rec
    return sim.run_to_completion(dist.sampler(rng))


def sample_boxes_to_complete(
    spec: RegularSpec,
    n: int,
    dist: BoxDistribution,
    gen: np.random.Generator,
    model: str = "simplified",
    fastpath: bool | None = None,
) -> int:
    """One sample of ``S_n``: the number of i.i.d. boxes from ``dist``
    needed to complete a size-``n`` execution."""
    rec = _trial_record(spec, n, dist, model, gen, fastpath)
    return rec.boxes_used


def _one_cost_trial(args) -> tuple[float, float]:
    """Top-level worker (picklable) for one expected-cost trial."""
    spec, n, dist, model, seed, fastpath = args
    rec = _trial_record(spec, n, dist, model, seed, fastpath)
    return float(rec.boxes_used), float(rec.adaptivity_ratio)


def estimate_expected_cost(
    spec: RegularSpec,
    n: int,
    dist: BoxDistribution,
    trials: int,
    rng: object = None,
    model: str = "simplified",
    confidence: float = 0.95,
    n_jobs: int = 1,
    fastpath: bool | None = None,
) -> tuple[MCEstimate, MCEstimate]:
    """Estimate Definition 3's expectation by simulation.

    Returns ``(boxes, cost_ratio)`` where ``boxes`` estimates ``E[S_n]``
    (the expected number of boxes to complete, the paper's ``f(n)``) and
    ``cost_ratio`` estimates
    ``E[sum_{i<=S_n} min(n, |box_i|)**e] / n**e`` —
    the quantity that must stay ``O(1)`` for adaptivity in expectation.

    Trial ``t`` draws box ``i`` at index ``i`` of the addressed plane
    ``(root_seed, "mc", t)`` — a pure function of the seed, the trial,
    and the box index — so the estimates are **bit-identical at any
    ``n_jobs``**, serial included (``rng`` as an int seed, a
    :class:`~repro.util.rng.ReplayableStream`, or None, which means
    seed 0).  Passing a raw ``numpy`` Generator keeps the legacy
    positional consumption (serial only).

    Trials consume sampled boxes through the chunked fast path whenever
    it is bit-identical to the per-box sampler loop (see
    :func:`repro.simulation.fastpath.run_sampled`); ``fastpath=False``
    forces the scalar loop.  Estimates are identical either way.
    """
    if trials < 1:
        raise SimulationError(f"trials must be >= 1, got {trials}")
    if n_jobs < 1:
        raise SimulationError(f"n_jobs must be >= 1, got {n_jobs}")
    boxes = np.empty(trials, dtype=np.float64)
    ratios = np.empty(trials, dtype=np.float64)
    if isinstance(rng, ReplayableStream):
        root = rng
    elif rng is None or isinstance(rng, (int, np.integer)):
        root = ReplayableStream(0 if rng is None else int(rng), "mc")
    else:
        root = None  # legacy positional generator
    if root is not None:
        streams = [root.for_trial(t) for t in range(trials)]
        if n_jobs > 1:
            work = [(spec, n, dist, model, ts, fastpath) for ts in streams]
            with ProcessPoolExecutor(max_workers=n_jobs) as pool:
                for i, (b, r) in enumerate(
                    pool.map(_one_cost_trial, work, chunksize=8)
                ):
                    boxes[i] = b
                    ratios[i] = r
        else:
            for i, ts in enumerate(streams):
                rec = _trial_record(spec, n, dist, model, ts, fastpath)
                boxes[i] = rec.boxes_used
                ratios[i] = rec.adaptivity_ratio
    else:
        if n_jobs > 1:
            raise SimulationError(
                "parallel estimation needs an int seed, a ReplayableStream, "
                "or None for rng (positional generators cannot be "
                "partitioned deterministically)"
            )
        gens = spawn(rng, trials)
        for i, gen in enumerate(gens):
            rec = _trial_record(spec, n, dist, model, gen, fastpath)
            boxes[i] = rec.boxes_used
            ratios[i] = rec.adaptivity_ratio

    def mk(values: np.ndarray) -> MCEstimate:
        return MCEstimate(
            mean=float(values.mean()),
            std=float(values.std(ddof=1)) if trials > 1 else 0.0,
            trials=trials,
            confidence=confidence,
        )

    # One estimation = one counter tick, matching estimate(); the two
    # MCEstimates come from the same trial set.
    _record("mc.estimates")
    _record("mc.trials", trials)
    return mk(boxes), mk(ratios)
