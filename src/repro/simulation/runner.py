"""Higher-level run modes over the symbolic simulator.

* :func:`run_boxes` — one-shot convenience wrapper.
* :func:`run_repeated` — the Section-3 experiment shape: run the algorithm
  back-to-back on a *finite* profile and count how many complete
  executions fit.  On the worst-case profile ``M_{8,4}(n)``, MM-SCAN fits
  exactly once while MM-INPLACE fits ``Ω(log n)`` times — the concrete
  separation the paper uses to prove MM-SCAN non-adaptive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.algorithms.spec import RegularSpec
from repro.profiles.square import SquareProfile, as_box_iter
from repro.simulation.symbolic import RunRecord, SymbolicSimulator

__all__ = ["RepeatedRunRecord", "run_boxes", "run_repeated"]


def run_boxes(
    spec: RegularSpec,
    n: int,
    boxes: "SquareProfile | Iterable[int]",
    model: str = "simplified",
    max_boxes: int | None = None,
    record_boxes: bool = False,
) -> RunRecord:
    """Run one size-``n`` execution of ``spec`` on the given boxes."""
    sim = SymbolicSimulator(spec, n, model=model)
    return sim.run(boxes, max_boxes=max_boxes, record_boxes=record_boxes)


@dataclass(frozen=True)
class RepeatedRunRecord:
    """Result of running executions back-to-back over a finite profile.

    ``completions`` — full executions finished; ``partial_leaves`` —
    leaves completed in the final unfinished execution; ``boxes_used`` —
    boxes consumed in total (== profile length when it was exhausted).
    """

    spec: RegularSpec
    n: int
    model: str
    completions: int
    partial_leaves: int
    boxes_used: int
    time_used: int

    @property
    def total_leaves(self) -> int:
        return self.completions * self.spec.leaves(self.n) + self.partial_leaves


def run_repeated(
    spec: RegularSpec,
    n: int,
    boxes: "SquareProfile | Iterable[int]",
    model: str = "simplified",
    max_completions: int | None = None,
    fastpath: bool | None = None,
) -> RepeatedRunRecord:
    """Run fresh size-``n`` executions back-to-back until the box source
    is exhausted (or ``max_completions`` is reached).

    A box is consumed entirely by the execution it is fed to; the next
    execution starts with the next box.  (Under the simplified model a
    box never crosses the end of the root problem, so no box splitting is
    needed for faithfulness.)

    ``fastpath`` selects the chunked engine exactly as in
    :meth:`SymbolicSimulator.run`: automatic when ``None`` and the
    combination is bit-identical, forced scalar with ``False``.
    """
    if fastpath is None or fastpath:
        from repro.simulation.fastpath import is_chunkable, run_repeated_chunked

        probe = SymbolicSimulator(spec, n, model=model)
        if fastpath or is_chunkable(probe, boxes):
            return run_repeated_chunked(
                spec, n, boxes, model=model, max_completions=max_completions
            )
    it = as_box_iter(boxes)
    completions = 0
    boxes_used = 0
    time_used = 0
    sim = SymbolicSimulator(spec, n, model=model)
    partial_leaves = 0
    for s in it:
        out = sim.feed(s)
        boxes_used += 1
        time_used += s
        partial_leaves += out.leaves
        if sim.is_done:
            completions += 1
            partial_leaves = 0
            if max_completions is not None and completions >= max_completions:
                break
            sim.reset()
    return RepeatedRunRecord(
        spec=spec,
        n=n,
        model=model,
        completions=completions,
        partial_leaves=partial_leaves,
        boxes_used=boxes_used,
        time_used=time_used,
    )
