"""Symbolic simulator: the paper's simplified caching model, executable.

Section 4 of the paper analyses ``(a,b,c)``-regular executions under a
simplified model of caching (proved w.l.o.g. in the full version):

* a box of size ``s`` that begins in a subproblem of size ``s`` or smaller
  completes to the end of the problem of size ``s`` containing it, and
  goes no further;
* a box of size ``s`` that begins in the scan of a problem larger than
  ``s`` advances ``min(s, rest of the scan)`` and ends.

:class:`SymbolicSimulator` drives an
:class:`~repro.algorithms.cursor.ExecutionCursor` with exactly these
rules (or the greedy access-budget variant for sensitivity analysis),
accumulating the potential accounting that defines cache-adaptive
efficiency.  Because the cursor is lazy, problems of size ``4**15`` and
beyond simulate in memory proportional to the recursion depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.algorithms.cursor import BoxOutcome, ExecutionCursor
from repro.algorithms.spec import RegularSpec
from repro.profiles.square import SquareProfile, as_box_iter
from repro.runtime.instrumentation import record as _record

__all__ = ["RunRecord", "SymbolicSimulator"]

MODELS = ("simplified", "recursive", "greedy")


@dataclass(frozen=True)
class RunRecord:
    """Accounting of one symbolic run.

    ``bounded_potential`` is ``sum_i min(n, |box_i|)**e`` over the consumed
    boxes (Inequality 2's left side, final box not rounded down);
    ``adaptivity_ratio`` divides by ``n**e``.  ``box_sizes`` and
    ``progress_per_box`` are populated only when the run recorded them.
    Frozen: a record is evidence for a measurement and never changes
    after the run that produced it.
    """

    spec: RegularSpec
    n: int
    model: str
    boxes_used: int = 0
    leaves_done: int = 0
    scan_accesses: int = 0
    time_used: int = 0
    bounded_potential: float = 0.0
    completed: bool = False
    box_sizes: Optional[np.ndarray] = None
    progress_per_box: Optional[np.ndarray] = None

    @property
    def adaptivity_ratio(self) -> float:
        """``sum min(n, |box|)**e / n**e`` — O(1) iff the run was
        efficiently cache-adaptive, ``Θ(log_b n)`` on the worst case."""
        return self.bounded_potential / float(self.n) ** self.spec.exponent

    @property
    def normalized_progress(self) -> float:
        """Fraction of the problem's base cases completed."""
        return self.leaves_done / self.spec.leaves(self.n)

    @property
    def access_progress(self) -> int:
        """Footnote 4's alternative progress measure: memory accesses
        completed (leaves at ``base_size`` each, plus scan accesses).
        For scan-dominated shapes (``a <= b``) this — not the base-case
        count — is the right notion of work."""
        return self.leaves_done * self.spec.base_size + self.scan_accesses

    def summary(self) -> dict:
        return {
            "spec": self.spec.name,
            "n": self.n,
            "model": self.model,
            "boxes_used": self.boxes_used,
            "leaves_done": self.leaves_done,
            "scan_accesses": self.scan_accesses,
            "time_used": self.time_used,
            "completed": self.completed,
            "adaptivity_ratio": self.adaptivity_ratio,
        }


class SymbolicSimulator:
    """Feed boxes to an ``(a,b,c)``-regular execution of size ``n``.

    ``model`` selects the box semantics: ``"simplified"`` (the paper's,
    default, exact for the Lemma-3 recurrence), ``"recursive"`` (budgeted
    continuation — the right semantics when comparing across ``c``
    regimes), or ``"greedy"`` (naive access budget, for sensitivity).
    One simulator instance runs one execution; use :meth:`reset` or a
    fresh instance to rerun.
    """

    def __init__(
        self,
        spec: RegularSpec,
        n: int,
        model: str = "simplified",
        completion_divisor: int = 1,
        scan_randomizer=None,
    ):
        if model not in MODELS:
            raise SimulationError(f"model must be one of {MODELS}, got {model!r}")
        if completion_divisor < 1:
            raise SimulationError(
                f"completion_divisor must be >= 1, got {completion_divisor}"
            )
        spec.validate_problem_size(n)
        self.spec = spec
        self.n = n
        self.model = model
        self.completion_divisor = completion_divisor
        self.scan_randomizer = scan_randomizer
        self.cursor = ExecutionCursor(spec, n, scan_randomizer=scan_randomizer)
        self._exponent = spec.exponent

    def reset(self) -> None:
        """Rewind to the start of the execution.

        Addressable placements draw by node index, so a reset run replays
        the *same* randomized execution; legacy positional randomizers
        keep consuming their stream and re-draw fresh placements.  The
        cursor's closed-form lookup tables are carried over (they depend
        only on ``(spec, n, placement)``), so repeated runs skip the
        warm-up — this is what amortizes Monte-Carlo trials of one spec.
        """
        self.cursor = ExecutionCursor(
            self.spec,
            self.n,
            scan_randomizer=self.scan_randomizer,
            warm_from=self.cursor,
        )

    @property
    def is_done(self) -> bool:
        return self.cursor.is_done

    def feed(self, box_size: int) -> BoxOutcome:
        """Apply a single box and return its outcome."""
        if self.model == "simplified":
            return self.cursor.feed_simplified(
                box_size, completion_divisor=self.completion_divisor
            )
        if self.model == "recursive":
            return self.cursor.feed_recursive(
                box_size, completion_divisor=self.completion_divisor
            )
        return self.cursor.feed_greedy(box_size)

    def run(
        self,
        boxes: "SquareProfile | Iterable[int]",
        max_boxes: Optional[int] = None,
        record_boxes: bool = False,
        fastpath: Optional[bool] = None,
    ) -> RunRecord:
        """Consume boxes until the execution completes (or the source or
        ``max_boxes`` runs out) and return the accounting record.

        ``fastpath`` selects the chunked engine of
        :mod:`repro.simulation.fastpath`: ``None`` (default) uses it
        automatically whenever it is bit-identical to the scalar loop
        (any model, static or addressable scan placement, indexable box
        source, no per-box recording), ``False`` forces the scalar loop,
        and ``True`` requires the fast path (raising if ineligible).
        Either way the returned record is the same field for field.
        """
        if fastpath is None or fastpath:
            from repro.simulation.fastpath import is_chunkable, run_chunked

            if fastpath or (not record_boxes and is_chunkable(self, boxes)):
                if record_boxes:
                    raise SimulationError(
                        "record_boxes is incompatible with the chunked "
                        "fast path (it needs per-box outcomes)"
                    )
                return run_chunked(self, boxes, max_boxes=max_boxes)
        exponent = self._exponent
        n = self.n
        boxes_used = 0
        leaves_done = 0
        scan_accesses = 0
        time_used = 0
        bounded_potential = 0.0
        sizes: list[int] = []
        progress: list[int] = []
        it = as_box_iter(boxes)
        while not self.cursor.is_done:
            if max_boxes is not None and boxes_used >= max_boxes:
                break
            try:
                s = next(it)
            except StopIteration:
                break
            out = self.feed(s)
            boxes_used += 1
            leaves_done += out.leaves
            scan_accesses += out.scan_accesses
            time_used += s
            bounded_potential += float(min(s, n)) ** exponent
            if record_boxes:
                sizes.append(s)
                progress.append(out.leaves)
        _record("sim.runs")
        _record("sim.boxes", boxes_used)
        return RunRecord(
            spec=self.spec,
            n=n,
            model=self.model,
            boxes_used=boxes_used,
            leaves_done=leaves_done,
            scan_accesses=scan_accesses,
            time_used=time_used,
            bounded_potential=bounded_potential,
            completed=self.cursor.is_done,
            box_sizes=np.asarray(sizes, dtype=np.int64) if record_boxes else None,
            progress_per_box=(
                np.asarray(progress, dtype=np.int64) if record_boxes else None
            ),
        )

    def run_to_completion(
        self,
        boxes: "SquareProfile | Iterable[int]",
        max_boxes: Optional[int] = None,
        record_boxes: bool = False,
        fastpath: Optional[bool] = None,
    ) -> RunRecord:
        """Like :meth:`run` but raises if the execution did not finish."""
        rec = self.run(
            boxes,
            max_boxes=max_boxes,
            record_boxes=record_boxes,
            fastpath=fastpath,
        )
        if not rec.completed:
            raise SimulationError(
                f"boxes exhausted after {rec.boxes_used} boxes with "
                f"{rec.leaves_done}/{self.spec.leaves(self.n)} leaves done"
            )
        return rec
