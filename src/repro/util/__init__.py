"""Shared utilities: exact integer math, RNG plumbing, table rendering,
and growth-law fitting."""

from repro.util.intmath import (
    ceil_power,
    critical_exponent,
    critical_exponent_fraction,
    floor_power,
    ilog,
    ilog_floor,
    iroot,
    is_power_of,
    powers_between,
)
from repro.util.fitting import (
    LogLawFit,
    PowerLawFit,
    fit_log_law,
    fit_power_law,
    growth_verdict,
)
from repro.util.rng import as_generator, fixed_seeds, spawn
from repro.util.tables import format_kv, format_number, format_table, sparkline

__all__ = [
    "ceil_power",
    "critical_exponent",
    "critical_exponent_fraction",
    "floor_power",
    "ilog",
    "ilog_floor",
    "iroot",
    "is_power_of",
    "powers_between",
    "LogLawFit",
    "PowerLawFit",
    "fit_log_law",
    "fit_power_law",
    "growth_verdict",
    "as_generator",
    "fixed_seeds",
    "spawn",
    "format_kv",
    "format_number",
    "format_table",
    "sparkline",
]
