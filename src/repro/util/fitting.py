"""Growth-law fitting helpers for adaptivity experiments.

The paper's claims are asymptotic ("the ratio is ``Θ(log_b n)``", "the
ratio is ``O(1)``", "potential is ``Θ(s^e)``").  Experiments verify the
*shape*: these helpers fit measured series against logarithmic, constant,
and power-law growth and report which law explains the data, so each
benchmark can print a verdict instead of raw eyeballing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PowerLawFit", "LogLawFit", "fit_power_law", "fit_log_law", "growth_verdict"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y ~ coeff * x**exponent`` (log-log linear)."""

    exponent: float
    coeff: float
    r2: float

    def predict(self, x: float) -> float:
        return self.coeff * x**self.exponent


@dataclass(frozen=True)
class LogLawFit:
    """Least-squares fit of ``y ~ slope * log_base(x) + intercept``."""

    slope: float
    intercept: float
    base: float
    r2: float

    def predict(self, x: float) -> float:
        return self.slope * math.log(x, self.base) + self.intercept


def _r2(y: np.ndarray, yhat: np.ndarray) -> float:
    ss_res = float(np.sum((y - yhat) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = C * x**e`` by linear regression in log-log space.

    All ``xs`` and ``ys`` must be positive.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.ndim != 1 or x.shape != y.shape or x.size < 2:
        raise ValueError("need >= 2 paired samples")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive data")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    fit = PowerLawFit(exponent=float(slope), coeff=float(math.exp(intercept)), r2=0.0)
    yhat = fit.coeff * x**fit.exponent
    return PowerLawFit(fit.exponent, fit.coeff, _r2(ly, np.log(yhat)))


def fit_log_law(xs: Sequence[float], ys: Sequence[float], base: float = 2.0) -> LogLawFit:
    """Fit ``y = s * log_base(x) + c`` by linear regression."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.ndim != 1 or x.shape != y.shape or x.size < 2:
        raise ValueError("need >= 2 paired samples")
    if np.any(x <= 0):
        raise ValueError("log-law fit requires positive x")
    if base <= 1:
        raise ValueError("base must exceed 1")
    lx = np.log(x) / math.log(base)
    slope, intercept = np.polyfit(lx, y, 1)
    yhat = slope * lx + intercept
    return LogLawFit(float(slope), float(intercept), float(base), _r2(y, yhat))


def growth_verdict(
    ns: Sequence[float],
    ratios: Sequence[float],
    base: float = 2.0,
    flat_slope_tol: float = 0.08,
) -> str:
    """Classify a ratio series as ``"constant"`` or ``"logarithmic"``.

    A genuinely logarithmic series rises by a fixed amount per
    factor-``base`` of ``n`` all the way out; an O(1) series either stays
    flat or rises with *decaying* increments (transient convergence to its
    constant).  So the classifier fits the log-law slope on the **tail**
    of the series (the last ``max(3, len/2 + 1)`` points, where transients
    have died down) and calls the growth logarithmic when that tail slope
    exceeds ``flat_slope_tol`` times the series' tail level per
    factor-``base`` step.
    """
    if len(ns) != len(ratios) or len(ns) < 2:
        raise ValueError("need >= 2 paired samples")
    mean = float(np.mean(np.asarray(ratios, dtype=float)))
    if mean <= 0:
        raise ValueError("ratios must be positive")
    k = max(3, len(ns) // 2 + 1)
    tail_ns = list(ns)[-k:]
    tail_rs = list(ratios)[-k:]
    if len(tail_ns) < 2:
        tail_ns, tail_rs = list(ns), list(ratios)
    fit = fit_log_law(tail_ns, tail_rs, base=base)
    tail_mean = float(np.mean(np.asarray(tail_rs, dtype=float)))
    return "logarithmic" if fit.slope > flat_slope_tol * tail_mean else "constant"
