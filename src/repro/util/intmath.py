"""Exact integer math helpers used throughout the cache-adaptive toolkit.

The analysis of ``(a, b, c)``-regular algorithms constantly manipulates
powers of the branching factor ``b`` and the critical exponent
``e = log_b a``.  Floating-point ``math.log`` is not exact for these, and
the library frequently needs *exact* predicates ("is ``n`` a power of
``b``?", "what is the largest power of ``b`` at most ``s``?") on values up
to ``4**30`` and beyond, so everything here works on Python ints.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator

__all__ = [
    "is_power_of",
    "ilog",
    "ilog_floor",
    "floor_power",
    "ceil_power",
    "powers_between",
    "critical_exponent",
    "critical_exponent_fraction",
    "iroot",
]


def _check_base(b: int) -> None:
    if not isinstance(b, int) or b < 2:
        raise ValueError(f"base must be an integer >= 2, got {b!r}")


def is_power_of(n: int, b: int) -> bool:
    """Return ``True`` iff ``n == b**k`` for some integer ``k >= 0``."""
    _check_base(b)
    if n < 1:
        return False
    while n % b == 0:
        n //= b
    return n == 1


def ilog(n: int, b: int) -> int:
    """Exact integer logarithm: the ``k`` with ``b**k == n``.

    Raises ``ValueError`` if ``n`` is not an exact power of ``b``.
    """
    _check_base(b)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    k = 0
    m = n
    while m % b == 0:
        m //= b
        k += 1
    if m != 1:
        raise ValueError(f"{n} is not a power of {b}")
    return k


def ilog_floor(n: int, b: int) -> int:
    """Largest ``k`` with ``b**k <= n`` (``n >= 1``)."""
    _check_base(b)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    k = 0
    p = b
    while p <= n:
        p *= b
        k += 1
    return k


def floor_power(n: int, b: int) -> int:
    """Largest power of ``b`` that is ``<= n`` (``n >= 1``)."""
    return b ** ilog_floor(n, b)


def ceil_power(n: int, b: int) -> int:
    """Smallest power of ``b`` that is ``>= n`` (``n >= 1``)."""
    p = floor_power(n, b)
    return p if p == n else p * b


def powers_between(lo: int, hi: int, b: int) -> Iterator[int]:
    """Yield all powers of ``b`` in the closed interval ``[lo, hi]``."""
    _check_base(b)
    if lo < 1:
        lo = 1
    p = ceil_power(lo, b) if lo > 1 else 1
    while p <= hi:
        yield p
        p *= b


def iroot(n: int, k: int) -> int:
    """Exact floor of the ``k``-th root of ``n`` using integer Newton."""
    if n < 0 or k < 1:
        raise ValueError("iroot requires n >= 0, k >= 1")
    if n in (0, 1) or k == 1:
        return n
    x = 1 << (-(-n.bit_length() // k))  # upper-bound seed
    while True:
        y = ((k - 1) * x + n // x ** (k - 1)) // k
        if y >= x:
            return x
        x = y


def critical_exponent(a: int, b: int) -> float:
    """The critical exponent ``e = log_b a`` as a float.

    This is the Master-theorem exponent of the recursion
    ``T(n) = a T(n/b) + ...``; the potential of a box of size ``s`` is
    ``Θ(s**e)`` (Lemma 1 of the paper).
    """
    import math

    if a < 1:
        raise ValueError(f"a must be >= 1, got {a}")
    _check_base(b)
    frac = critical_exponent_fraction(a, b)
    if frac is not None:
        return float(frac)
    return math.log(a) / math.log(b)


def critical_exponent_fraction(a: int, b: int) -> Fraction | None:
    """Return ``log_b a`` as an exact :class:`~fractions.Fraction` when it
    is rational, else ``None``.

    ``log_b a`` is rational iff ``a`` and ``b`` are both integer powers of
    a common integer base ``g``: ``a = g**p``, ``b = g**q`` gives
    ``log_b a = p/q``.  For example ``a=8, b=4`` yields ``3/2`` exactly.
    """
    if a < 1:
        raise ValueError(f"a must be >= 1, got {a}")
    _check_base(b)
    if a == 1:
        return Fraction(0)
    # Search for the smallest common base g: g must satisfy g**p == a and
    # g**q == b. Any common base is a power of the smallest one, so it
    # suffices to try g = b**(1/q) for each q | exponent structure of b.
    # A simple complete search: try every g from 2 up to min(a, b) that is
    # an exact root of b, i.e. g = iroot(b, q) with g**q == b.
    max_q = b.bit_length()
    for q in range(max_q, 0, -1):
        g = iroot(b, q)
        if g < 2 or g ** q != b:
            continue
        # Is a a power of this g?
        if is_power_of(a, g):
            p = ilog(a, g)
            return Fraction(p, q)
    return None
