"""Deterministic random-number utilities.

Every randomized component in the library accepts either a seed or a
:class:`numpy.random.Generator`; this module centralizes the coercion so
experiments are reproducible bit-for-bit from a single integer seed, and
independent sub-streams can be spawned for parallel Monte-Carlo trials
without correlation (via ``SeedSequence.spawn``).

Two consumption disciplines coexist:

* **Positional** (``as_generator`` / ``spawn``): draws come off a shared
  stream in call order, so two code paths see the same randomness only
  if they make byte-identical draw sequences.  This is the legacy
  discipline; it forces chunked and scalar simulation paths to mirror
  each other's batching exactly.
* **Addressed** (:class:`ReplayableStream`): every draw has a logical
  *index* on a counter-based (Philox) stream keyed by ``(root_seed,
  purpose, trial)``.  Draw ``i`` is the same value whether it is read
  alone, inside any batch, in any order, or from any process — which is
  what lets the chunked simulator, the scalar cursor, and parallel
  Monte-Carlo workers consume provably identical randomness.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Sequence

import numpy as np

__all__ = [
    "RNG_SCHEME",
    "ReplayableStream",
    "as_generator",
    "spawn",
    "fixed_seeds",
]

#: Identifier of the randomness-consumption scheme, recorded in run
#: artifacts and cache keys.  Bump whenever the mapping from
#: ``(seed, purpose, trial, index)`` to drawn values changes — stale
#: cache entries from an older scheme must miss, and artifact diffs
#: must be attributable to the scheme change rather than silent drift.
RNG_SCHEME = "philox-addressed-v2"

# Philox-4x64 emits one float64 per 64-bit word, four words per counter
# block: word index i lives in counter block i // 4, offset i % 4.
_WORDS_PER_BLOCK = 4


@lru_cache(maxsize=4096)
def _philox_key(*parts: "int | str") -> int:
    """128-bit Philox key for one addressing plane.

    Derived by hashing so that nearby seeds / trials give statistically
    unrelated streams (raw small-integer keys are a known Philox
    weak spot) and so string components cannot collide with integer
    fields (each component is length-prefixed and type-tagged).
    """
    h = hashlib.sha256()
    for part in parts:
        tag = b"s" if isinstance(part, str) else b"i"
        data = str(part).encode("utf-8")
        h.update(tag)
        h.update(len(data).to_bytes(4, "little"))
        h.update(data)
    return int.from_bytes(h.digest()[:16], "little")


@dataclass(frozen=True)
class ReplayableStream:
    """A counter-based random plane addressed by logical draw index.

    ``uniforms_at(lo, hi)`` returns draws ``lo .. hi-1`` of the float64
    stream keyed by ``(root_seed, purpose, trial)``.  The addressing
    contract (pinned in ``tests/util/test_rng_streams.py``):

    * draw ``i`` is a pure function of ``(root_seed, purpose, trial, i)``;
    * any batching of a range gives bit-identical values to per-index
      draws (``uniforms_at(0, 8) == [uniform_at(i) for i in range(8)]``);
    * consumption order is irrelevant — there is no stream position.

    Instances are frozen, tiny, and picklable, so they can be shipped to
    pool workers directly; ``for_trial`` / ``substream`` derive disjoint
    planes for parallel trials and independent consumers.
    """

    root_seed: int
    purpose: str = ""
    trial: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.root_seed, (int, np.integer)):
            raise TypeError(
                f"root_seed must be an int, got {type(self.root_seed).__name__}"
            )
        if not isinstance(self.trial, (int, np.integer)):
            raise TypeError(
                f"trial must be an int, got {type(self.trial).__name__}"
            )
        # normalize numpy integers so pickling/equality are type-stable
        object.__setattr__(self, "root_seed", int(self.root_seed))
        object.__setattr__(self, "trial", int(self.trial))

    # -- derivation ----------------------------------------------------
    def substream(self, purpose: str) -> "ReplayableStream":
        """A disjoint plane for an independent consumer ("placement",
        "boxes", ...).  Nested purposes chain with ``/``."""
        if not purpose:
            raise ValueError("substream purpose must be non-empty")
        joined = f"{self.purpose}/{purpose}" if self.purpose else purpose
        return replace(self, purpose=joined)

    def for_trial(self, trial: int) -> "ReplayableStream":
        """The same plane re-keyed for Monte-Carlo trial ``trial``."""
        if trial < 0:
            raise ValueError(f"trial must be >= 0, got {trial}")
        return replace(self, trial=int(trial))

    # -- addressed draws -----------------------------------------------
    @property
    def _key(self) -> int:
        return _philox_key(self.root_seed, self.purpose, self.trial)

    def uniforms_at(self, lo: int, hi: int) -> np.ndarray:
        """Float64 draws at indices ``[lo, hi)`` — uniform on ``[0, 1)``.

        Bit-identical to concatenating any finer-grained reads of the
        same index range (one Philox word per draw; the block counter
        starts at ``lo // 4`` and the first ``lo % 4`` words of that
        block are discarded).
        """
        if lo < 0 or hi < lo:
            raise ValueError(f"need 0 <= lo <= hi, got lo={lo}, hi={hi}")
        if hi == lo:
            return np.empty(0, dtype=np.float64)
        pad = lo % _WORDS_PER_BLOCK
        gen = np.random.Generator(
            np.random.Philox(key=self._key, counter=lo // _WORDS_PER_BLOCK)
        )
        return gen.random(pad + (hi - lo))[pad:]

    def uniform_at(self, index: int) -> float:
        """The single float64 draw at ``index``."""
        return float(self.uniforms_at(index, index + 1)[0])

    def integers_at(self, index: int, low: int, high: int) -> int:
        """A uniform integer in ``[low, high)`` addressed at ``index``.

        Mapped as ``low + floor(u * (high - low))`` from the float64 draw
        at ``index`` — a fixed, scheme-versioned mapping (deliberately
        *not* ``Generator.integers``, whose rejection sampling consumes a
        data-dependent number of words and would break addressing).
        """
        if high <= low:
            raise ValueError(f"need low < high, got low={low}, high={high}")
        span = high - low
        v = low + int(self.uniform_at(index) * span)
        return min(v, high - 1)  # guard the u -> 1.0 closure under float

    def generator_at(self, index: int) -> np.random.Generator:
        """A full :class:`numpy.random.Generator` addressed at ``index``.

        For structured draws (multinomial, permutations) that need more
        than one word: the generator is keyed by ``(root_seed, purpose,
        trial, index)``, so however many words the draw consumes, it
        cannot disturb any other index.
        """
        if index < 0:
            raise ValueError(f"index must be >= 0, got {index}")
        key = _philox_key(self.root_seed, self.purpose, self.trial, index)
        return np.random.Generator(np.random.Philox(key=key))


def as_generator(rng: object = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an int seed, a ``SeedSequence``, or
    an existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    raise TypeError(
        f"cannot interpret {type(rng).__name__} as a random generator; "
        "pass an int seed, numpy Generator, SeedSequence, or None"
    )


def spawn(rng: object, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from ``rng``.

    When ``rng`` is an int or ``SeedSequence``, the children derive from
    ``SeedSequence.spawn`` and are reproducible; when ``rng`` is already a
    ``Generator``, children are spawned from its internal bit generator.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(rng, np.random.Generator):
        return rng.spawn(n)
    if rng is None:
        seq = np.random.SeedSequence()
    elif isinstance(rng, (int, np.integer)):
        seq = np.random.SeedSequence(int(rng))
    elif isinstance(rng, np.random.SeedSequence):
        seq = rng
    else:
        raise TypeError(f"cannot spawn from {type(rng).__name__}")
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def fixed_seeds(base_seed: int, n: int) -> Sequence[int]:
    """Derive ``n`` distinct deterministic integer seeds from one seed."""
    seq = np.random.SeedSequence(base_seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(n)]
