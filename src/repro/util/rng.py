"""Deterministic random-number utilities.

Every randomized component in the library accepts either a seed or a
:class:`numpy.random.Generator`; this module centralizes the coercion so
experiments are reproducible bit-for-bit from a single integer seed, and
independent sub-streams can be spawned for parallel Monte-Carlo trials
without correlation (via ``SeedSequence.spawn``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_generator", "spawn", "fixed_seeds"]


def as_generator(rng: object = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an int seed, a ``SeedSequence``, or
    an existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    raise TypeError(
        f"cannot interpret {type(rng).__name__} as a random generator; "
        "pass an int seed, numpy Generator, SeedSequence, or None"
    )


def spawn(rng: object, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from ``rng``.

    When ``rng`` is an int or ``SeedSequence``, the children derive from
    ``SeedSequence.spawn`` and are reproducible; when ``rng`` is already a
    ``Generator``, children are spawned from its internal bit generator.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(rng, np.random.Generator):
        return rng.spawn(n)
    if rng is None:
        seq = np.random.SeedSequence()
    elif isinstance(rng, (int, np.integer)):
        seq = np.random.SeedSequence(int(rng))
    elif isinstance(rng, np.random.SeedSequence):
        seq = rng
    else:
        raise TypeError(f"cannot spawn from {type(rng).__name__}")
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def fixed_seeds(base_seed: int, n: int) -> Sequence[int]:
    """Derive ``n`` distinct deterministic integer seeds from one seed."""
    seq = np.random.SeedSequence(base_seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(n)]
