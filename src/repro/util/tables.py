"""Plain-text table and series rendering for experiment reports.

The benchmark harness reproduces the paper's results as printed tables
(the paper itself has no numeric tables, so these are the canonical output
format of each experiment).  Rendering is dependency-free ASCII so results
display identically in CI logs and terminals.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_kv", "format_number", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def format_number(x: Any, precision: int = 4) -> str:
    """Format a scalar compactly: ints verbatim, floats to ``precision``
    significant digits, with scientific notation for extreme magnitudes."""
    if isinstance(x, bool):
        return str(x)
    if isinstance(x, int):
        return str(x)
    if isinstance(x, float):
        if x != x:  # NaN
            return "nan"
        if x == 0:
            return "0"
        ax = abs(x)
        if ax >= 1e7 or ax < 1e-4:
            return f"{x:.{precision - 1}e}"
        return f"{x:.{precision}g}"
    return str(x)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned ASCII table.

    Numbers are right-aligned; strings left-aligned.  Returns the table as
    a single string (no trailing newline).
    """
    str_rows: list[list[str]] = []
    numeric_cols: list[bool] = [True] * len(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        cells = []
        for j, cell in enumerate(row):
            if not isinstance(cell, (int, float, bool)):
                numeric_cols[j] = False
            cells.append(format_number(cell, precision))
        str_rows.append(cells)

    widths = [len(h) for h in headers]
    for cells in str_rows:
        for j, cell in enumerate(cells):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for j, cell in enumerate(cells):
            if numeric_cols[j]:
                parts.append(cell.rjust(widths[j]))
            else:
                parts.append(cell.ljust(widths[j]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(cells) for cells in str_rows)
    return "\n".join(lines)


def format_kv(pairs: dict[str, Any], precision: int = 4) -> str:
    """Render a mapping as aligned ``key: value`` lines."""
    if not pairs:
        return ""
    width = max(len(k) for k in pairs)
    return "\n".join(
        f"{k.ljust(width)} : {format_number(v, precision)}" for k, v in pairs.items()
    )


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Render a sequence of non-negative values as a unicode sparkline.

    Used to give a one-line visual of memory profiles (Figure 1) in
    terminal output.  ``width`` downsamples by taking bucket maxima so
    large profiles still render on one line.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None and width > 0 and len(vals) > width:
        bucketed = []
        n = len(vals)
        for i in range(width):
            lo = i * n // width
            hi = max(lo + 1, (i + 1) * n // width)
            bucketed.append(max(vals[lo:hi]))
        vals = bucketed
    top = max(vals)
    if top <= 0:
        return _BLOCKS[0] * len(vals)
    out = []
    for v in vals:
        idx = int(round((len(_BLOCKS) - 1) * max(v, 0.0) / top))
        out.append(_BLOCKS[idx])
    return "".join(out)
