"""Unit tests for the execution cursor — the semantic core of the model."""

import pytest

from repro.errors import SimulationError
from repro.algorithms.cursor import ExecutionCursor
from repro.algorithms.library import MM_INPLACE, MM_SCAN
from repro.algorithms.spec import RegularSpec, ScanPlacement


class TestBasics:
    def test_fresh_cursor_not_done(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        assert not cur.is_done
        assert cur.access_index() == 0

    def test_fresh_cursor_at_first_leaf(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        assert cur.current_node_size() == 1
        assert not cur.at_scan()

    def test_remaining_leaves_full(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        assert cur.remaining_leaves() == 64

    def test_invalid_size(self):
        with pytest.raises(Exception):
            ExecutionCursor(MM_SCAN, 10)


class TestLeafByLeaf:
    def test_complete_all_leaves_and_scans(self):
        spec = RegularSpec(2, 2, 1.0)
        cur = ExecutionCursor(spec, 4)
        # execution: leaf, leaf, scan(2), leaf, leaf, scan(2), scan(4)
        seen = []
        while not cur.is_done:
            if cur.at_scan():
                k = cur.advance_scan(10**9)
                seen.append(("scan", k))
            else:
                cur.complete_leaf()
                seen.append(("leaf", 1))
        assert seen == [
            ("leaf", 1),
            ("leaf", 1),
            ("scan", 2),
            ("leaf", 1),
            ("leaf", 1),
            ("scan", 2),
            ("scan", 4),
        ]

    def test_access_index_monotone(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        prev = cur.access_index()
        while not cur.is_done:
            if cur.at_scan():
                cur.advance_scan(3)
            else:
                cur.complete_leaf()
            now = cur.access_index()
            assert now > prev
            prev = now
        assert prev == MM_SCAN.subtree_accesses(16)

    def test_partial_scan_advance(self):
        spec = RegularSpec(2, 2, 1.0)
        cur = ExecutionCursor(spec, 4)
        cur.complete_leaf()
        cur.complete_leaf()
        assert cur.at_scan()
        assert cur.scan_remaining() == 2
        assert cur.advance_scan(1) == 1
        assert cur.scan_remaining() == 1

    def test_advance_scan_requires_scan(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        with pytest.raises(SimulationError):
            cur.advance_scan(1)

    def test_complete_leaf_requires_leaf(self):
        spec = RegularSpec(2, 2, 1.0)
        cur = ExecutionCursor(spec, 4)
        cur.complete_leaf()
        cur.complete_leaf()
        with pytest.raises(SimulationError):
            cur.complete_leaf()


class TestCompleteThrough:
    def test_complete_root(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        leaves, scans = cur.complete_through(0)
        assert cur.is_done
        assert leaves == 64
        assert scans == MM_SCAN.subtree_scan_total(16)

    def test_complete_child_subtree(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        # stack is [16, 4, 1]; completing frame 1 finishes the first
        # size-4 child (8 leaves + its scan of 4)
        leaves, scans = cur.complete_through(1)
        assert (leaves, scans) == (8, 4)
        assert cur.access_index() == MM_SCAN.subtree_accesses(4)

    def test_done_cursor_rejects(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        cur.complete_through(0)
        with pytest.raises(SimulationError):
            cur.complete_through(0)


class TestSeek:
    @pytest.mark.parametrize("pos", [0, 1, 7, 12, 13, 95, 100])
    def test_seek_roundtrip(self, pos):
        cur = ExecutionCursor(MM_SCAN, 16)
        cur.seek(pos)
        assert cur.access_index() == pos

    def test_seek_to_end(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        cur.seek(MM_SCAN.subtree_accesses(16))
        assert cur.is_done

    def test_seek_out_of_range(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        with pytest.raises(SimulationError):
            cur.seek(-1)
        with pytest.raises(SimulationError):
            cur.seek(MM_SCAN.subtree_accesses(16) + 1)

    def test_seek_matches_stepping(self):
        spec = RegularSpec(3, 2, 1.0)
        total = spec.subtree_accesses(8)
        stepped = ExecutionCursor(spec, 8)
        for pos in range(total):
            other = ExecutionCursor(spec, 8)
            other.seek(pos)
            assert other.access_index() == stepped.access_index() == pos
            if stepped.at_scan():
                stepped.advance_scan(1)
            else:
                stepped.complete_leaf()


class TestSnapshot:
    def test_snapshot_is_independent(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        snap = cur.snapshot()
        cur.complete_through(0)
        assert cur.is_done and not snap.is_done
        assert snap.access_index() == 0


class TestFeedSimplified:
    def test_box_equal_to_problem_completes_it(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        out = cur.feed_simplified(16)
        assert out.done and out.leaves == 64
        assert out.completed_size == 16

    def test_base_box_completes_one_leaf(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        out = cur.feed_simplified(1)
        assert out.leaves == 1 and not out.done

    def test_intermediate_box_completes_child(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        out = cur.feed_simplified(4)
        assert out.leaves == 8 and out.completed_size == 4
        assert out.scan_accesses == 4  # child's trailing scan

    def test_oversized_box_completes_root(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        out = cur.feed_simplified(10**6)
        assert out.done

    def test_scan_rule_partial_progress(self):
        spec = RegularSpec(2, 2, 1.0)
        cur = ExecutionCursor(spec, 8)
        cur.seek(spec.subtree_accesses(8) - spec.scan_length(8))  # at root scan
        assert cur.at_scan()
        out = cur.feed_simplified(2)  # box smaller than node (8)
        assert out.leaves == 0 and out.scan_accesses == 2
        assert not cur.is_done

    def test_scan_of_small_node_completed_via_ancestor_rule(self):
        spec = RegularSpec(2, 2, 1.0)
        cur = ExecutionCursor(spec, 8)
        cur.complete_leaf()
        cur.complete_leaf()  # now at scan of a size-2 node
        assert cur.at_scan() and cur.current_node_size() == 2
        out = cur.feed_simplified(4)
        # completes the size-4 ancestor: its remaining subtree (2 leaves of
        # the second size-2 child) plus scans (2 + 4)
        assert out.completed_size == 4
        assert out.leaves == 2
        assert out.scan_accesses == 2 + 2 + 4

    def test_completion_divisor_blocks_large_completion(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        out = cur.feed_simplified(4, completion_divisor=4)
        # s_eff = 1: only the pending leaf ancestor qualifies
        assert out.completed_size == 1 and out.leaves == 1

    def test_completion_divisor_leaf_fallback(self):
        spec = RegularSpec(8, 4, 1.0, base_size=4)
        cur = ExecutionCursor(spec, 64)
        out = cur.feed_simplified(4, completion_divisor=4)
        # s_eff = 1 < base, but a box >= base still completes the leaf
        assert out.leaves == 1

    def test_tiny_box_makes_no_progress(self):
        spec = RegularSpec(8, 4, 1.0, base_size=4)
        cur = ExecutionCursor(spec, 64)
        out = cur.feed_simplified(2)
        assert out.leaves == 0 and out.scan_accesses == 0

    def test_rejects_done(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        cur.feed_simplified(16)
        with pytest.raises(SimulationError):
            cur.feed_simplified(1)

    def test_rejects_bad_size(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        with pytest.raises(SimulationError):
            cur.feed_simplified(0)
        with pytest.raises(SimulationError):
            cur.feed_simplified(4, completion_divisor=0)


class TestFeedRecursive:
    def test_budget_spans_siblings(self):
        spec = RegularSpec(2, 2, 0.0)  # no scans: pure leaf tree
        cur = ExecutionCursor(spec, 8)
        out = cur.feed_recursive(6)
        # budget 6: completes the first size-4 child (cost 4) then the
        # first size-2 node of the second child (cost 2)
        assert out.leaves == 6
        assert cur.access_index() == 6

    def test_matches_simplified_on_worst_case(self):
        from repro.profiles.worst_case import worst_case_profile

        prof = worst_case_profile(8, 4, 64)
        a = ExecutionCursor(MM_SCAN, 64)
        b = ExecutionCursor(MM_SCAN, 64)
        for s in prof:
            out_a = a.feed_simplified(s)
            out_b = b.feed_recursive(s)
            assert (out_a.leaves, out_a.scan_accesses) == (
                out_b.leaves,
                out_b.scan_accesses,
            )
        assert a.is_done and b.is_done

    def test_scan_streaming_with_leftover(self):
        spec = RegularSpec(2, 2, 1.0)
        cur = ExecutionCursor(spec, 8)
        cur.seek(spec.subtree_accesses(8) - spec.scan_length(8))
        out = cur.feed_recursive(100)
        assert out.done and out.scan_accesses == 8

    def test_completion_divisor(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        out = cur.feed_recursive(16, completion_divisor=4)
        # can only complete subproblems of size <= 4, but budget 16 lets it
        # chain several size-4 children
        assert out.completed_size == 4
        assert out.leaves > 8

    def test_rejects_done(self):
        cur = ExecutionCursor(MM_SCAN, 16)
        cur.feed_recursive(16)
        with pytest.raises(SimulationError):
            cur.feed_recursive(1)


class TestFeedGreedy:
    def test_budget_accounting(self):
        spec = RegularSpec(2, 2, 1.0)
        cur = ExecutionCursor(spec, 8)
        out = cur.feed_greedy(5)
        # leaves cost 1 each, scans 1 per access; 5 accesses total
        assert out.leaves + out.scan_accesses == 5
        assert cur.access_index() == 5

    def test_greedy_completes(self):
        spec = RegularSpec(2, 2, 1.0)
        total = spec.subtree_accesses(8)
        cur = ExecutionCursor(spec, 8)
        out = cur.feed_greedy(total)
        assert out.done


class TestScanPlacements:
    @pytest.mark.parametrize(
        "placement", [ScanPlacement.END, ScanPlacement.FRONT, ScanPlacement.SPLIT]
    )
    def test_total_accesses_placement_invariant(self, placement):
        spec = RegularSpec(8, 4, 1.0, scan_placement=placement)
        cur = ExecutionCursor(spec, 16)
        leaves = scans = 0
        while not cur.is_done:
            out = cur.feed_simplified(16)
            leaves += out.leaves
            scans += out.scan_accesses
        assert leaves == 64
        assert scans == spec.subtree_scan_total(16)

    def test_front_placement_starts_at_scan(self):
        spec = RegularSpec(8, 4, 1.0, scan_placement=ScanPlacement.FRONT)
        cur = ExecutionCursor(spec, 16)
        assert cur.at_scan()
        assert cur.current_node_size() == 16


class TestMMInplaceShape:
    def test_no_scans_anywhere(self):
        cur = ExecutionCursor(MM_INPLACE, 16)
        total_scans = 0
        while not cur.is_done:
            out = cur.feed_simplified(4)
            total_scans += out.scan_accesses
        assert total_scans == 0
