"""Unit tests for the GEP / Floyd–Warshall kernel."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.algorithms.gep import (
    floyd_warshall,
    floyd_warshall_reference,
    gep_inplace,
    gep_scan,
)


@pytest.fixture
def dist_matrix(rng):
    n = 16
    d = rng.uniform(1.0, 10.0, (n, n))
    np.fill_diagonal(d, 0.0)
    # sprinkle missing edges
    mask = rng.random((n, n)) < 0.3
    d[mask & ~np.eye(n, dtype=bool)] = np.inf
    np.fill_diagonal(d, 0.0)
    return d


class TestFloydWarshall:
    def test_matches_reference(self, dist_matrix):
        run = floyd_warshall(dist_matrix, record=False)
        assert np.allclose(run.table, floyd_warshall_reference(dist_matrix))

    def test_scan_variant_same_answer(self, dist_matrix):
        a = floyd_warshall(dist_matrix, record=False).table
        b = floyd_warshall(dist_matrix, scan=True, record=False).table
        assert np.allclose(a, b)

    def test_base_case_sizes_agree(self, dist_matrix):
        full = floyd_warshall(dist_matrix, base_n=16, record=False).table
        fine = floyd_warshall(dist_matrix, base_n=2, record=False).table
        assert np.allclose(full, fine)

    def test_matches_networkx(self, rng):
        nx = pytest.importorskip("networkx")
        n = 8
        d = rng.uniform(1.0, 5.0, (n, n))
        np.fill_diagonal(d, 0.0)
        g = nx.from_numpy_array(d, create_using=nx.DiGraph)
        want = np.zeros((n, n))
        lengths = dict(nx.all_pairs_dijkstra_path_length(g))
        for i in range(n):
            for j in range(n):
                want[i, j] = lengths[i][j]
        got = floyd_warshall(d, record=False).table
        assert np.allclose(got, want)

    def test_triangle_inequality_holds(self, dist_matrix):
        t = floyd_warshall(dist_matrix, record=False).table
        n = t.shape[0]
        finite = np.where(np.isinf(t), 1e18, t)
        for k in range(n):
            assert np.all(finite <= finite[:, k : k + 1] + finite[k : k + 1, :] + 1e-9)


class TestTraces:
    def test_leaf_count(self, dist_matrix):
        run = gep_inplace(dist_matrix, base_n=2)
        # 8 subcalls per halving, depth log2(16/2) = 3
        assert run.trace.n_leaves == 8**3

    def test_scan_trace_longer(self, dist_matrix):
        t_in = gep_inplace(dist_matrix, base_n=4).trace
        t_scan = gep_scan(dist_matrix, base_n=4).trace
        assert len(t_scan) > len(t_in)

    def test_no_record(self, dist_matrix):
        assert gep_inplace(dist_matrix, record=False).trace is None


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(TraceError):
            gep_inplace(np.ones((2, 3)))

    def test_rejects_non_power(self):
        with pytest.raises(TraceError):
            gep_inplace(np.ones((6, 6)))

    def test_rejects_bad_base(self):
        with pytest.raises(TraceError):
            gep_inplace(np.ones((8, 8)), base_n=16)
