"""Unit tests for memory layouts."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.algorithms.layouts import Morton, RowMajor, get_layout


class TestRowMajor:
    def test_addresses(self):
        lay = RowMajor(4)
        assert lay.address(0, 0) == 0
        assert lay.address(1, 0) == 4
        assert lay.address(2, 3) == 11

    def test_vectorized_matches_scalar(self):
        lay = RowMajor(8)
        rows = np.array([0, 3, 7])
        cols = np.array([1, 2, 7])
        got = lay.addresses(rows, cols)
        want = [lay.address(int(r), int(c)) for r, c in zip(rows, cols)]
        assert got.tolist() == want

    def test_bijective(self):
        lay = RowMajor(8)
        rows, cols = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        addrs = lay.addresses(rows.ravel(), cols.ravel())
        assert sorted(addrs.tolist()) == list(range(64))


class TestMorton:
    def test_bijective(self):
        lay = Morton(8)
        rows, cols = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        addrs = lay.addresses(rows.ravel(), cols.ravel())
        assert sorted(addrs.tolist()) == list(range(64))

    def test_quadrants_contiguous(self):
        n = 8
        lay = Morton(n)
        h = n // 2
        for qi in (0, 1):
            for qj in (0, 1):
                rows, cols = np.meshgrid(
                    np.arange(qi * h, (qi + 1) * h),
                    np.arange(qj * h, (qj + 1) * h),
                    indexing="ij",
                )
                addrs = np.sort(lay.addresses(rows.ravel(), cols.ravel()))
                assert addrs[-1] - addrs[0] == h * h - 1  # contiguous range

    def test_origin(self):
        assert Morton(4).address(0, 0) == 0

    def test_interleaving(self):
        lay = Morton(4)
        # row bits at odd positions: (r, c) = (1, 0) -> 0b10 = 2
        assert lay.address(1, 0) == 2
        assert lay.address(0, 1) == 1
        assert lay.address(1, 1) == 3

    def test_requires_power_of_two(self):
        with pytest.raises(TraceError):
            Morton(6)

    def test_vectorized_matches_scalar(self):
        lay = Morton(16)
        rows = np.array([0, 5, 15])
        cols = np.array([7, 2, 15])
        got = lay.addresses(rows, cols)
        want = [lay.address(int(r), int(c)) for r, c in zip(rows, cols)]
        assert got.tolist() == want


class TestGetLayout:
    def test_by_name(self):
        assert isinstance(get_layout("morton", 4), Morton)
        assert isinstance(get_layout("row-major", 4), RowMajor)

    def test_unknown(self):
        with pytest.raises(TraceError):
            get_layout("hilbert", 4)

    def test_rejects_bad_dim(self):
        with pytest.raises(TraceError):
            RowMajor(0)
