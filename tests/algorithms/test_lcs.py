"""Unit tests for the cache-oblivious LCS kernel."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.algorithms.lcs import lcs_length, lcs_reference


class TestCorrectness:
    def test_identical_strings(self):
        s = "abcdefgh"
        assert lcs_length(s, s, record=False).length == 8

    def test_disjoint_alphabets(self):
        assert lcs_length("aaaaaaaa", "bbbbbbbb", record=False).length == 0

    def test_known_example(self):
        x, y = "abcbdabXYZWVUTS", "bdcaba0123456789"
        x, y = x[:16].ljust(16, "#"), y[:16].ljust(16, "$")
        assert (
            lcs_length(x, y, record=False).length
            == lcs_reference(x, y)
        )

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_random_sequences(self, n, rng):
        x = rng.integers(0, 4, n)
        y = rng.integers(0, 4, n)
        assert lcs_length(x, y, record=False).length == lcs_reference(x, y)

    @pytest.mark.parametrize("base_n", [1, 2, 4, 8])
    def test_base_size_invariance(self, base_n, rng):
        x = rng.integers(0, 3, 16)
        y = rng.integers(0, 3, 16)
        assert (
            lcs_length(x, y, base_n=base_n, record=False).length
            == lcs_reference(x, y)
        )

    def test_reference_textbook_case(self):
        assert lcs_reference("ABCBDAB", "BDCABA") == 4


class TestTraces:
    def test_leaf_count(self, rng):
        x = rng.integers(0, 3, 16)
        run = lcs_length(x, x, base_n=4)
        assert run.trace.n_leaves == (16 // 4) ** 2

    def test_block_size_divides_addresses(self, rng):
        x = rng.integers(0, 3, 8)
        run = lcs_length(x, x, base_n=4, block_size=4)
        assert run.trace.blocks.max() < 8 * 4  # 4n words / B=4


class TestValidation:
    def test_rejects_unequal_lengths(self):
        with pytest.raises(TraceError):
            lcs_length("abcd", "abc")

    def test_rejects_non_power_length(self):
        with pytest.raises(TraceError):
            lcs_length("abcde", "abcde")

    def test_rejects_bad_base(self):
        with pytest.raises(TraceError):
            lcs_length("abcd", "abcd", base_n=8)
