"""Unit tests for the named spec library."""

import pytest

from repro.errors import SpecError
from repro.algorithms.library import (
    BINARY_ADAPTIVE,
    LCS,
    MERGE_SORT,
    MM_INPLACE,
    MM_SCAN,
    NAMED_SPECS,
    SQRT_SCAN,
    STRASSEN,
    get_spec,
)


class TestNamedSpecs:
    def test_mm_scan_shape(self):
        assert (MM_SCAN.a, MM_SCAN.b, MM_SCAN.c) == (8, 4, 1.0)
        assert MM_SCAN.regime == "gap"

    def test_mm_inplace_shape(self):
        assert (MM_INPLACE.a, MM_INPLACE.b, MM_INPLACE.c) == (8, 4, 0.0)
        assert MM_INPLACE.regime == "adaptive"

    def test_strassen_shape(self):
        assert (STRASSEN.a, STRASSEN.b, STRASSEN.c) == (7, 4, 1.0)
        assert STRASSEN.regime == "gap"

    def test_degenerate_specs(self):
        assert LCS.regime == "degenerate"
        assert MERGE_SORT.regime == "degenerate"

    def test_adaptive_specs(self):
        assert BINARY_ADAPTIVE.regime == "adaptive"
        assert SQRT_SCAN.regime == "adaptive"

    def test_registry_complete(self):
        assert len(NAMED_SPECS) == 9
        assert all(name == spec.name for name, spec in NAMED_SPECS.items())


class TestGetSpec:
    def test_lookup(self):
        assert get_spec("MM-SCAN") is MM_SCAN

    def test_case_insensitive(self):
        assert get_spec("mm-scan") is MM_SCAN

    def test_unknown(self):
        with pytest.raises(SpecError):
            get_spec("NOPE")
