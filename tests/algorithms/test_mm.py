"""Unit tests for the instrumented matrix-multiply kernels."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.algorithms.mm import mm_inplace, mm_scan, strassen

KERNELS = [mm_scan, mm_inplace, strassen]


@pytest.fixture
def mats(rng):
    a = rng.standard_normal((16, 16))
    b = rng.standard_normal((16, 16))
    return a, b


class TestCorrectness:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_product_matches_numpy(self, kernel, mats):
        a, b = mats
        run = kernel(a, b, record=False)
        assert np.allclose(run.product, a @ b)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_various_sizes(self, kernel, rng):
        for n in (2, 4, 8):
            a = rng.standard_normal((n, n))
            b = rng.standard_normal((n, n))
            assert np.allclose(kernel(a, b, base_n=2, record=False).product, a @ b)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_base_case_equals_full(self, kernel, mats):
        a, b = mats
        full = kernel(a, b, base_n=16, record=False).product
        fine = kernel(a, b, base_n=2, record=False).product
        assert np.allclose(full, fine)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_identity(self, kernel):
        eye = np.eye(8)
        m = np.arange(64, dtype=float).reshape(8, 8)
        assert np.allclose(kernel(eye, m, record=False).product, m)

    @pytest.mark.parametrize("layout", ["morton", "row-major"])
    def test_layout_does_not_change_result(self, layout, mats):
        a, b = mats
        assert np.allclose(
            mm_scan(a, b, layout=layout, record=False).product, a @ b
        )


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(TraceError):
            mm_scan(np.ones((2, 3)), np.ones((2, 3)))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(TraceError):
            mm_scan(np.ones((6, 6)), np.ones((6, 6)))

    def test_rejects_bad_base(self):
        with pytest.raises(TraceError):
            mm_scan(np.ones((4, 4)), np.ones((4, 4)), base_n=3)
        with pytest.raises(TraceError):
            mm_scan(np.ones((4, 4)), np.ones((4, 4)), base_n=8)


class TestTraces:
    def test_no_record_no_trace(self, mats):
        a, b = mats
        assert mm_scan(a, b, record=False).trace is None

    def test_leaf_count(self, mats):
        a, b = mats
        # n=16, base 2: 8 levels^... recursion halves dimension: depth 3,
        # 8^3 base multiplies
        t = mm_scan(a, b, base_n=2).trace
        assert t.n_leaves == 8**3

    def test_inplace_leaf_count_matches(self, mats):
        a, b = mats
        assert mm_inplace(a, b, base_n=2).trace.n_leaves == 8**3

    def test_strassen_leaf_count(self, mats):
        a, b = mats
        assert strassen(a, b, base_n=2).trace.n_leaves == 7**3

    def test_scan_variant_longer_than_inplace(self, mats):
        a, b = mats
        scan_len = len(mm_scan(a, b).trace)
        inplace_len = len(mm_inplace(a, b).trace)
        assert scan_len > inplace_len

    def test_distinct_blocks_scaling(self, mats):
        a, b = mats
        t = mm_inplace(a, b).trace
        # three 16x16 matrices = 768 words touched (B = 1)
        assert t.distinct_blocks() == 3 * 16 * 16

    def test_mm_scan_touches_scratch(self, mats):
        a, b = mats
        t = mm_scan(a, b).trace
        assert t.distinct_blocks() > 3 * 16 * 16  # temporaries beyond A,B,C

    def test_morton_locality_beats_row_major_in_dam(self, rng):
        # The cache-oblivious layout should not lose to row-major under a
        # small cache (and typically wins).
        from repro.machine.dam import simulate_dam

        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        t_morton = mm_scan(a, b, layout="morton", block_size=8).trace
        t_row = mm_scan(a, b, layout="row-major", block_size=8).trace
        m = 12
        io_morton = simulate_dam(t_morton, m, policy="lru").io_count
        io_row = simulate_dam(t_row, m, policy="lru").io_count
        assert io_morton <= io_row


class TestTraceAdversary:
    def test_exactly_consumes_real_trace(self, rng):
        from repro.algorithms.mm import mm_scan_trace_adversary
        from repro.machine.square_machine import run_trace_on_boxes

        dim = 16
        a = rng.standard_normal((dim, dim))
        b = rng.standard_normal((dim, dim))
        trace = mm_scan(a, b, base_n=2).trace
        adversary = mm_scan_trace_adversary(dim, base_n=2)
        rec = run_trace_on_boxes(trace, adversary)
        # every box is used and the trace finishes exactly at the last one
        assert rec.completed
        assert rec.boxes_used == len(adversary)

    def test_box_census(self):
        from repro.algorithms.mm import mm_scan_trace_adversary

        adv = mm_scan_trace_adversary(8, base_n=2)
        census = adv.size_census()
        # 8^2 leaves of 3*4 words; 8 scans of 2*16; 1 scan of 2*64
        assert census == {12: 64, 32: 8, 128: 1}

    def test_block_size_scaling(self):
        from repro.algorithms.mm import mm_scan_trace_adversary

        adv1 = mm_scan_trace_adversary(8, base_n=2, block_size=1)
        adv4 = mm_scan_trace_adversary(8, base_n=2, block_size=4)
        assert adv4.total_time * 4 == adv1.total_time

    def test_validation(self):
        import pytest as _pytest

        from repro.errors import TraceError
        from repro.algorithms.mm import mm_scan_trace_adversary

        with _pytest.raises(TraceError):
            mm_scan_trace_adversary(6)
        with _pytest.raises(TraceError):
            mm_scan_trace_adversary(4, base_n=8)
